"""k-truss decompositions in all the flavours the literature confused.

Section 3.2 of the paper traces four inequivalent definitions; this module
implements each one so the differences (paper Figure 3) are executable:

* **k-dense / triangle k-core** (Saito et al.; Zhang & Parthasarathy): the
  maximal subgraph in which every edge is in >= k-2 triangles.  *No*
  connectivity requirement — one possibly-disconnected subgraph.
* **k-truss / k-community** (Cohen; Verma & Butenko): same degree condition
  but each output is a connected component (vertex connectivity).
* **k-truss community** (Huang et al.) = the (k-2)-(2,3) nucleus: edges must
  additionally be *triangle-connected* — adjacent communities sharing only a
  vertex are split apart.

Parameter convention: these functions take the literature's ``k``
(each edge in >= k-2 triangles).  The paper's λ₃ values count raw triangles;
``trussness = λ₃ + 2``.  Both are available from :func:`truss_numbers`.
"""

from __future__ import annotations

from collections import deque

from repro.backends import decompose, resolve_backend, truss_peel
from repro.core.decomposition import Decomposition
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

__all__ = [
    "truss_numbers",
    "max_trussness",
    "k_dense_edges",
    "k_dense",
    "k_truss",
    "truss_communities",
    "truss_hierarchy",
]


def truss_numbers(graph: Graph | CSRGraph, convention: str = "nucleus",
                  backend: str | None = None,
                  workers: int | None = None) -> list[int]:
    """Per-edge truss values, indexed by edge id.

    ``convention="nucleus"`` returns λ₃ (max triangles-per-edge level, the
    paper's numbers); ``convention="truss"`` returns λ₃ + 2 (Cohen/Huang's
    trussness, where a single triangle is a 3-truss).  Edge ids are
    lexicographic on both backends, so the array is backend-independent;
    ``backend=None`` picks the engine matching the representation passed in;
    ``workers`` applies to the ``csr-parallel`` backend only.
    """
    lam = truss_peel(graph, backend=resolve_backend(graph, backend),
                     workers=workers).lam
    if convention == "nucleus":
        return lam
    if convention == "truss":
        return [value + 2 for value in lam]
    raise InvalidParameterError(
        f"convention must be 'nucleus' or 'truss', got {convention!r}")


def max_trussness(graph: Graph | CSRGraph,
                  backend: str | None = None,
                  workers: int | None = None) -> int:
    """Largest trussness in the graph (truss convention; 2 if triangle-free)."""
    return max(truss_numbers(graph, convention="truss", backend=backend,
                             workers=workers),
               default=2)


def k_dense_edges(graph: Graph, k: int, lam: list[int] | None = None) -> list[int]:
    """Edge ids of the k-dense subgraph (every edge in >= k-2 triangles).

    The maximal subgraph satisfying the condition is exactly the set of
    edges with λ₃ >= k-2, so a single peeling answers all k.
    """
    if lam is None:
        lam = truss_numbers(graph)
    threshold = k - 2
    if threshold <= 0:
        return list(range(len(lam)))  # every edge is in >= 0 triangles
    return [e for e, value in enumerate(lam) if value >= threshold]


def k_dense(graph: Graph, k: int, lam: list[int] | None = None) -> Graph:
    """The k-dense subgraph as one (possibly disconnected) graph.

    Vertex ids are preserved.  This is Saito's k-dense / Zhang's triangle
    (k-2)-core: the union of all k-trusses, connectivity ignored.
    """
    return graph.edge_subgraph(k_dense_edges(graph, k, lam))


def k_truss(graph: Graph, k: int, lam: list[int] | None = None) -> list[list[int]]:
    """Cohen-style k-trusses: *vertex-connected* components of the k-dense
    subgraph, each returned as a sorted list of edge ids."""
    edge_ids = k_dense_edges(graph, k, lam)
    index = graph.edge_index
    incident: dict[int, list[int]] = {}
    for e in edge_ids:
        u, v = index.endpoints(e)
        incident.setdefault(u, []).append(e)
        incident.setdefault(v, []).append(e)
    seen: set[int] = set()
    out: list[list[int]] = []
    for e0 in edge_ids:
        if e0 in seen:
            continue
        comp = [e0]
        seen.add(e0)
        queue = deque([e0])
        while queue:
            e = queue.popleft()
            for vertex in index.endpoints(e):
                for other in incident[vertex]:
                    if other not in seen:
                        seen.add(other)
                        comp.append(other)
                        queue.append(other)
        out.append(sorted(comp))
    return out


def truss_communities(graph: Graph, k: int,
                      decomposition: Decomposition | None = None) -> list[list[int]]:
    """Huang-style k-truss communities: the maximal (k-2)-(2,3) nuclei.

    Edges must be triangle-connected through triangles whose three edges all
    meet the trussness threshold.  Each community is a sorted edge-id list.
    Reuses a previous :func:`truss_hierarchy` result when provided.
    """
    if decomposition is None:
        decomposition = truss_hierarchy(graph)
    hierarchy = decomposition.hierarchy
    assert hierarchy is not None
    tree = hierarchy.condense()
    level = k - 2
    out: list[list[int]] = []
    for node in tree.nodes:
        if node.k >= level and node.k >= 1:
            parent = node.parent
            parent_k = tree[parent].k if parent is not None else -1
            if parent_k < level:  # maximal at this threshold
                out.append(sorted(tree.subtree_cells(node.id)))
    return out


def truss_hierarchy(graph: Graph | CSRGraph, algorithm: str = "fnd",
                    backend: str | None = None,
                    workers: int | None = None) -> Decomposition:
    """Full (2,3) nucleus hierarchy (k-truss community hierarchy).

    Routes through :func:`repro.backends.decompose`, so ``backend=`` and
    ``workers=`` behave exactly as on every other entry point.
    """
    return decompose(graph, 2, 3, algorithm=algorithm,
                     backend=backend, workers=workers)
