"""TCP index: Triangle Connectivity Preserving index of Huang et al.
(SIGMOD 2014), the paper's (2,3) comparison point.

For every vertex ``x`` consider its *ego network* ``G_x``: vertices are the
neighbours of ``x`` and edges are the pairs ``(y, z)`` that close a triangle
with ``x``, weighted ``w(y, z) = min(τ(x,y), τ(x,z), τ(y,z))`` where τ is
trussness.  The TCP index ``T_x`` is the **maximum spanning forest** of
``G_x``: it preserves, for every k, which neighbours of ``x`` are reachable
through triangles of trussness >= k, while storing only O(deg x) edges.

The paper benchmarks *peeling + index construction* only (Table 5 column
TCP*), noting that answering "all communities" queries still requires
traversing the graph through the index; :meth:`TcpIndex.communities_of`
implements that query for completeness, and the library's own decomposition
algorithms are what Table 5 compares it against.
"""

from __future__ import annotations

from collections import deque

from repro.core.disjoint_set import DisjointSetForest
from repro.core.peeling import peel
from repro.core.views import EdgeView
from repro.graph.adjacency import Graph

__all__ = ["TcpIndex", "build_tcp_index"]


class TcpIndex:
    """Per-vertex maximum spanning forests over triangle weights."""

    def __init__(self, graph: Graph, trussness: list[int]):
        self.graph = graph
        self.trussness = trussness  # per edge id, truss convention (>= 2)
        # forest[x] maps neighbour y -> list of (z, weight) tree edges in T_x
        self.forest: list[dict[int, list[tuple[int, int]]]] = [
            {} for _ in range(graph.n)
        ]
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        index = graph.edge_index
        tau = self.trussness
        for x in graph.vertices():
            neighbors = graph.neighbors(x)
            if len(neighbors) < 2:
                continue
            # ego edges: neighbour pairs closing a triangle with x
            ego_edges: list[tuple[int, int, int]] = []  # (weight, y, z)
            for i, y in enumerate(neighbors):
                y_adj = graph.neighbor_set(y)
                t_xy = tau[index.id_of(x, y)]
                for z in neighbors[i + 1:]:
                    if z in y_adj:
                        weight = min(t_xy, tau[index.id_of(x, z)],
                                     tau[index.id_of(y, z)])
                        ego_edges.append((weight, y, z))
            if not ego_edges:
                continue
            # Kruskal, maximum weight first
            ego_edges.sort(key=lambda e: -e[0])
            local = {y: i for i, y in enumerate(neighbors)}
            dsu = DisjointSetForest(len(neighbors))
            tree = self.forest[x]
            for weight, y, z in ego_edges:
                if dsu.find(local[y]) != dsu.find(local[z]):
                    dsu.union(local[y], local[z])
                    tree.setdefault(y, []).append((z, weight))
                    tree.setdefault(z, []).append((y, weight))

    # ------------------------------------------------------------------
    def reachable(self, x: int, y: int, k: int) -> list[int]:
        """Neighbours of ``x`` reachable from ``y`` in T_x via weight >= k."""
        tree = self.forest[x]
        if y not in tree and not self.graph.has_edge(x, y):
            return []
        seen = {y}
        order = [y]
        queue = deque([y])
        while queue:
            cur = queue.popleft()
            for nxt, weight in tree.get(cur, ()):
                if weight >= k and nxt not in seen:
                    seen.add(nxt)
                    order.append(nxt)
                    queue.append(nxt)
        return order

    def communities_of(self, vertex: int, k: int) -> list[set[tuple[int, int]]]:
        """All k-truss communities containing ``vertex`` (edge sets).

        Huang et al.'s query algorithm: grow each community by alternating
        between per-vertex spanning forests, marking (vertex, neighbour)
        pairs as processed so each edge is visited O(1) times.
        """
        graph = self.graph
        index = graph.edge_index
        tau = self.trussness
        visited: set[tuple[int, int]] = set()  # directed (x, y) pairs
        out: list[set[tuple[int, int]]] = []
        for u in graph.neighbors(vertex):
            if tau[index.id_of(vertex, u)] < k or (vertex, u) in visited:
                continue
            community: set[tuple[int, int]] = set()
            queue = deque([(vertex, u)])
            while queue:
                x, y = queue.popleft()
                if (x, y) in visited:
                    continue
                for z in self.reachable(x, y, k):
                    visited.add((x, z))
                    community.add((x, z) if x < z else (z, x))
                    if (z, x) not in visited:
                        queue.append((z, x))
            if community:
                out.append(community)
        return out

    def tree_edge_count(self) -> int:
        """Total number of spanning-forest edges across all vertices."""
        return sum(len(edges) for tree in self.forest
                   for edges in tree.values()) // 2


def build_tcp_index(graph: Graph, trussness: list[int] | None = None) -> TcpIndex:
    """Peel (if needed) and build the TCP index — the cost Table 5 charges.

    ``trussness`` may be passed in the *truss* convention (λ₃ + 2); when
    omitted it is computed here.
    """
    if trussness is None:
        trussness = [value + 2 for value in peel(EdgeView(graph)).lam]
    return TcpIndex(graph, trussness)
