"""k-truss decompositions and the TCP index (the (2,3) nucleus case)."""

from repro.ktruss.tcp import TcpIndex, build_tcp_index
from repro.ktruss.truss import (
    k_dense,
    k_dense_edges,
    k_truss,
    max_trussness,
    truss_communities,
    truss_hierarchy,
    truss_numbers,
)

__all__ = [
    "truss_numbers",
    "max_trussness",
    "k_dense",
    "k_dense_edges",
    "k_truss",
    "truss_communities",
    "truss_hierarchy",
    "TcpIndex",
    "build_tcp_index",
]
