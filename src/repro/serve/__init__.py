"""Async serving tier: long-lived query processes over mmap'd flat indexes.

The ``.npz`` build-once/serve-many path (:mod:`repro.flatindex`) ends at a
one-shot CLI call; this package turns it into a long-lived server:

* :class:`IndexRegistry` — loads one or many persisted indexes with
  memory-mapped arrays (:func:`repro.flatindex.mmap_npz`), so N worker
  processes share a **single page-cache copy** per index — the serving
  analogue of the zero-copy worker attach in :mod:`repro.parallel.shm`;
* :class:`NucleusServer` — an asyncio front end speaking newline-delimited
  JSON over TCP plus a minimal HTTP/1.1 surface (stdlib only), exposing
  ``max_nucleus`` / ``nucleus_at`` / ``communities_of_vertex`` /
  ``profile`` with multi-index routing and per-route request, latency and
  batch-size counters on ``/stats``;
* :class:`BatchCoalescer` — gathers concurrent scalar requests for up to a
  configurable window and answers them through the existing vectorised
  ``*_batch`` kernels, serialising each distinct answer once per batch;
* :func:`run_server` / ``repro-nucleus serve`` — the process entry point:
  one listening socket, ``--workers N`` forked accept loops;
* :class:`ServerThread` / :class:`ServeClient` — embed a server in-process
  (tests, notebooks) and talk to any server from blocking code.

See ``docs/SERVING.md`` for the build → persist → serve walkthrough.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.coalesce import BatchCoalescer
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import IndexRegistry
from repro.serve.server import (
    NucleusServer,
    ServerConfig,
    ServerThread,
    run_server,
)

__all__ = [
    "BatchCoalescer",
    "IndexRegistry",
    "NucleusServer",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerMetrics",
    "ServerThread",
    "run_server",
]
