"""Per-route serving counters: requests, latency quantiles, batch sizes.

Pure bookkeeping — no locks, because every mutation happens on the event
loop thread of one worker process.  ``/stats`` snapshots are therefore
per-worker; the benchmark aggregates client-side across workers instead.
"""

from __future__ import annotations

import time

__all__ = ["RouteStats", "ServerMetrics"]

#: ring-buffer size for latency quantiles; big enough for stable p99 on a
#: smoke run, small enough to be free
_RESERVOIR = 8192


def _percentile(sample: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``sample`` by nearest-rank."""
    if not sample:
        return 0.0
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class RouteStats:
    """Counters for one request route (op name)."""

    __slots__ = ("requests", "errors", "seconds_total", "_window", "_next")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.seconds_total = 0.0
        self._window: list[float] = []
        self._next = 0

    def record(self, seconds: float, error: bool = False) -> None:
        self.requests += 1
        self.errors += int(error)
        self.seconds_total += seconds
        if len(self._window) < _RESERVOIR:
            self._window.append(seconds)
        else:  # overwrite round-robin: a sliding window of recent requests
            self._window[self._next] = seconds
            self._next = (self._next + 1) % _RESERVOIR
        return None

    def snapshot(self) -> dict:
        mean = self.seconds_total / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_ms": round(mean * 1000, 4),
            "p50_ms": round(_percentile(self._window, 0.50) * 1000, 4),
            "p99_ms": round(_percentile(self._window, 0.99) * 1000, 4),
        }


class ServerMetrics:
    """All counters one worker process exports on ``/stats``."""

    def __init__(self) -> None:
        self.started = time.time()
        self.connections_total = 0
        self.connections_open = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.batch_failures = 0
        self.last_batch_error = ""
        self._routes: dict[str, RouteStats] = {}

    def route(self, name: str) -> RouteStats:
        stats = self._routes.get(name)
        if stats is None:
            stats = self._routes[name] = RouteStats()
        return stats

    def record_request(self, route: str, seconds: float,
                       error: bool = False) -> None:
        self.route(route).record(seconds, error=error)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        if size > self.max_batch:
            self.max_batch = size

    def record_batch_failure(self, error: BaseException) -> None:
        """Count a batch kernel that raised (every parked request failed)."""
        self.batch_failures += 1
        self.last_batch_error = f"{type(error).__name__}: {error}"

    def snapshot(self) -> dict:
        mean_batch = (self.batched_requests / self.batches
                      if self.batches else 0.0)
        return {
            "uptime_seconds": round(time.time() - self.started, 3),
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "batching": {
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_batch": round(mean_batch, 3),
                "max_batch": self.max_batch,
                "failures": self.batch_failures,
                "last_error": self.last_batch_error,
            },
            "routes": {name: stats.snapshot()
                       for name, stats in self._routes.items()},
        }
