"""Blocking NDJSON client for the serving tier.

Used by the tests, the benchmark drivers and the docs walkthrough; any
language with sockets and JSON can implement the same ten lines.  One
client owns one TCP connection.  :meth:`ServeClient.call_many` pipelines:
it writes every request line before reading any response, then matches
responses to requests by ``id`` — the server answers out of order by
design (that is what lets concurrent requests coalesce into batches).
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """The server answered ``ok: false`` (or broke protocol)."""


class ServeClient:
    """One blocking connection to a nucleus server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def call_many(self, requests: list[dict],
                  raise_on_error: bool = True) -> list[Any]:
        """Pipeline ``requests`` and return their results in order.

        Requests are tagged with fresh ``id`` values, written as one
        block, and the responses (in whatever order they arrive) are
        matched back.  With ``raise_on_error=False`` an error response
        yields a :class:`ServeError` *instance* in the result list
        instead of raising.
        """
        tagged: list[dict] = []
        for request in requests:
            request = dict(request)
            request["id"] = self._next_id
            self._next_id += 1
            tagged.append(request)
        payload = "".join(json.dumps(req) + "\n" for req in tagged)
        self._sock.sendall(payload.encode())
        by_id: dict[object, dict] = {}
        for _ in tagged:
            line = self._file.readline()
            if not line:
                raise ServeError("server closed the connection mid-batch")
            response = json.loads(line)
            by_id[response.get("id")] = response
        results: list[Any] = []
        for request in tagged:
            response = by_id.get(request["id"])
            if response is None:
                raise ServeError(
                    f"server never answered request id {request['id']}")
            if response.get("ok"):
                results.append(response["result"])
            else:
                error = ServeError(response.get("error", "unknown error"))
                if raise_on_error:
                    raise error
                results.append(error)
        return results

    def call(self, op: str, **params: Any) -> Any:
        """One request, one answer."""
        request: dict[str, Any] = {"op": op}
        request.update(params)
        return self.call_many([request])[0]

    # ------------------------------------------------------------------
    # the routes
    # ------------------------------------------------------------------
    def ping(self) -> str:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")

    def indexes(self) -> dict:
        return self.call("indexes")

    def max_nucleus(self, cell: int, index: str | None = None) -> list[int]:
        return self.call("max_nucleus", cell=cell,
                         **({"index": index} if index else {}))

    def nucleus_at(self, cell: int, k: int,
                   index: str | None = None) -> list[int]:
        return self.call("nucleus_at", cell=cell, k=k,
                         **({"index": index} if index else {}))

    def communities_of_vertex(self, vertex: int, k: int,
                              index: str | None = None) -> list[list[int]]:
        return self.call("communities_of_vertex", vertex=vertex, k=k,
                         **({"index": index} if index else {}))

    def profile(self, vertex: int,
                index: str | None = None) -> list[dict]:
        return self.call("profile", vertex=vertex,
                         **({"index": index} if index else {}))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
