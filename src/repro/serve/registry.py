"""Multi-index routing: named, memory-mapped flat indexes for one server.

One serving process routinely fronts several graphs (or several (r, s)
decompositions of the same graph).  :class:`IndexRegistry` owns that map:
every index is loaded once per process with ``mmap_mode="r"`` (default),
so the arrays are read-only views of the page cache and any number of
worker processes mapping the same ``.npz`` share one physical copy.
Requests name their index; the first registered index is the default
route for requests that do not.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import InvalidParameterError
from repro.flatindex import FlatHierarchyIndex

__all__ = ["IndexRegistry"]


class IndexRegistry:
    """Name → :class:`FlatHierarchyIndex` map with a default route."""

    def __init__(self) -> None:
        self._indexes: dict[str, FlatHierarchyIndex] = {}
        self._paths: dict[str, str] = {}
        self._default: str | None = None

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add(self, name: str, index: FlatHierarchyIndex,
            path: str | None = None) -> FlatHierarchyIndex:
        """Register an already-built index under ``name``."""
        if not name:
            raise InvalidParameterError("index name must be non-empty")
        if name in self._indexes:
            raise InvalidParameterError(
                f"duplicate index name {name!r} (already registered from "
                f"{self._paths.get(name) or 'an in-process index'})")
        self._indexes[name] = index
        self._paths[name] = path or ""
        if self._default is None:
            self._default = name
        return index

    def open(self, name: str, path: str | Path,
             mmap: bool = True) -> FlatHierarchyIndex:
        """Load a persisted ``.npz`` index and register it under ``name``.

        ``mmap=True`` (default) maps the arrays read-only through
        :func:`repro.flatindex.mmap_npz`; ``mmap=False`` copies them into
        the process (useful only when the file may be replaced in place).
        """
        index = FlatHierarchyIndex.load(
            path, mmap_mode="r" if mmap else None)
        return self.add(name, index, path=str(path))

    @classmethod
    def from_specs(cls, specs: list[str] | tuple[str, ...],
                   mmap: bool = True) -> "IndexRegistry":
        """Build a registry from CLI-style specs.

        Each spec is either ``name=path`` or a bare path (the name is the
        file's stem).  The first spec becomes the default index.
        """
        registry = cls()
        if not specs:
            raise InvalidParameterError(
                "no indexes to serve (pass INDEX.npz paths or name=path "
                "specs)")
        for spec in specs:
            name, eq, path = spec.partition("=")
            if not eq:
                name, path = Path(spec).stem, spec
            if not name or not path:
                raise InvalidParameterError(
                    f"bad index spec {spec!r} (expected PATH or name=PATH)")
            registry.open(name, path, mmap=mmap)
        return registry

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def default_name(self) -> str | None:
        return self._default

    def names(self) -> list[str]:
        return list(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def get(self, name: str | None = None) -> FlatHierarchyIndex:
        """The index registered under ``name`` (None → the default)."""
        if name is None:
            if self._default is None:
                raise InvalidParameterError("the index registry is empty")
            return self._indexes[self._default]
        try:
            return self._indexes[name]
        except KeyError:
            raise InvalidParameterError(
                f"unknown index {name!r} (serving: "
                f"{', '.join(self._indexes) or 'none'})") from None

    def describe(self) -> dict:
        """Per-index metadata for ``/indexes`` and ``/stats``."""
        out: dict[str, dict] = {}
        for name, index in self._indexes.items():
            out[name] = {
                "path": self._paths[name],
                "r": index.r,
                "s": index.s,
                "algorithm": index.algorithm,
                "vertices": index.n,
                "cells": index.num_cells,
                "nodes": index.num_nodes,
                "mmapped": bool(index.mmapped),
                "default": name == self._default,
            }
        return out
