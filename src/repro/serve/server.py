"""The asyncio serving front end: NDJSON-over-TCP plus minimal HTTP/1.1.

One :class:`NucleusServer` owns a listening socket, an
:class:`~repro.serve.registry.IndexRegistry` and one
:class:`~repro.serve.coalesce.BatchCoalescer` per index.  Connections
speak either protocol — the first bytes decide:

* **NDJSON** (the native protocol): one JSON request per line, one JSON
  envelope per line back.  Responses carry the request's ``id`` and may
  return **out of order** — a connection pipelines freely, every request
  becomes an independent task, and concurrent requests coalesce into
  batch-kernel calls.
* **HTTP/1.1** (for curl / browsers / load-balancer checks): ``GET
  /stats``, ``GET /healthz``, ``GET /indexes``, ``GET /query/<op>?…``
  and ``POST /query`` with a JSON object or array body.  Keep-alive is
  honoured; the implementation is stdlib-only and deliberately minimal.

Scale-out is process-based, like :mod:`repro.parallel`: ``run_server``
binds one socket, loads the registry **once**, then forks ``workers - 1``
children that inherit both — every worker accepts on the shared socket
and reads the same memory-mapped index pages, so N workers cost one
page-cache copy per index (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import InvalidParameterError, ReproError
from repro.serve import protocol
from repro.serve.coalesce import BatchCoalescer
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import IndexRegistry

__all__ = ["NucleusServer", "ServerConfig", "ServerThread", "run_server"]

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ",
                 b"OPTIONS ")


class _BadRequest(ReproError):
    """A per-request problem: reported to the client, never fatal."""


@dataclass
class ServerConfig:
    """Knobs of one serving process (see ``repro-nucleus serve --help``)."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: max seconds a scalar request waits to be coalesced; 0 = flush on
    #: the next event-loop tick (load-driven batching, no added latency)
    coalesce_window: float = 0.0
    #: flush a coalescer bucket early at this many parked requests
    max_batch: int = 512
    #: answer every request through the scalar query path (A/B reference
    #: for the benchmark; the coalesced path must beat it)
    uncoalesced: bool = False
    #: accept-loop processes sharing the listening socket and the mmap'd
    #: index pages (1 = serve from the calling process only)
    workers: int = 1

    def __post_init__(self) -> None:
        if self.coalesce_window < 0:
            raise InvalidParameterError(
                f"coalesce window must be >= 0 seconds, "
                f"got {self.coalesce_window}")
        if self.max_batch < 1:
            raise InvalidParameterError(
                f"max batch must be >= 1, got {self.max_batch}")
        if self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {self.workers}")


class NucleusServer:
    """Asyncio server answering hierarchy queries from a registry."""

    def __init__(self, registry: IndexRegistry,
                 config: ServerConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        self._coalescers: dict[str, BatchCoalescer] = {}
        for name in registry.names():
            self._coalescers[name] = BatchCoalescer(
                registry.get(name), self.metrics,
                window=self.config.coalesce_window,
                max_batch=self.config.max_batch)
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, sock: socket.socket | None = None) -> None:
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def stats(self) -> dict:
        """The ``/stats`` payload of this worker process."""
        snapshot = self.metrics.snapshot()
        snapshot["indexes"] = self.registry.describe()
        snapshot["config"] = {
            "coalesce_window": self.config.coalesce_window,
            "max_batch": self.config.max_batch,
            "uncoalesced": self.config.uncoalesced,
            "workers": self.config.workers,
        }
        return snapshot

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.metrics.connections_total += 1
        self.metrics.connections_open += 1
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_METHODS):
                await self._serve_http(reader, writer, first)
            else:
                await self._serve_ndjson(reader, writer, first)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self.metrics.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # NDJSON protocol
    # ------------------------------------------------------------------
    async def _serve_ndjson(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            first: bytes) -> None:
        """Pipelined request lines; every line becomes its own task.

        The reader loop never awaits an answer, so all requests buffered
        on the socket are submitted before the coalescer's next flush —
        that is what turns a pipelined connection into full batches.
        """
        tasks: set[asyncio.Task] = set()
        line = first
        while line:
            stripped = line.strip()
            if stripped:
                task = asyncio.create_task(
                    self._respond_line(stripped, writer))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            line = await reader.readline()
        if tasks:  # EOF: flush the in-flight answers before closing
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _respond_line(self, line: bytes,
                            writer: asyncio.StreamWriter) -> None:
        try:
            request = json.loads(line)
        except ValueError:
            response = protocol.error_envelope(
                None, f"malformed JSON request: {line[:120]!r}")
        else:
            if not isinstance(request, dict):
                response = protocol.error_envelope(
                    None, "request must be a JSON object")
            else:
                response = await self._answer(request)
        try:
            writer.write(response)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # request dispatch (shared by both protocols)
    # ------------------------------------------------------------------
    async def _answer(self, request: dict) -> bytes:
        """One request dict → one NDJSON envelope line."""
        request_id = request.get("id")
        op = request.get("op")
        route = op if isinstance(op, str) else "invalid"
        start = time.perf_counter()
        error = False
        try:
            if op == "ping":
                response = protocol.envelope(request_id, '"pong"')
            elif op == "stats":
                response = protocol.envelope(
                    request_id, json.dumps(self.stats()))
            elif op == "indexes":
                response = protocol.envelope(
                    request_id, json.dumps(self.registry.describe()))
            elif op in protocol.QUERY_OPS:
                fragment = await self._run_query(op, request)
                response = protocol.envelope(request_id, fragment)
            else:
                raise _BadRequest(
                    f"unknown op {op!r} (expected one of "
                    f"{', '.join(protocol.QUERY_OPS)}, stats, indexes, "
                    f"ping)")
        except (_BadRequest, InvalidParameterError) as exc:
            error = True
            response = protocol.error_envelope(request_id, str(exc))
        self.metrics.record_request(route, time.perf_counter() - start,
                                    error=error)
        return response

    def _request_int(self, request: dict, key: str) -> int:
        value = request.get(key)
        if isinstance(value, str):  # HTTP query params arrive as strings
            try:
                value = int(value)
            except ValueError:
                value = None
        if not isinstance(value, int) or isinstance(value, bool):
            raise _BadRequest(
                f"op {request.get('op')!r} needs an integer {key!r} "
                f"parameter")
        return value

    async def _run_query(self, op: str, request: dict) -> str:
        """Validate, then answer via the coalescer (or scalar path)."""
        name = request.get("index")
        if name is not None and not isinstance(name, str):
            raise _BadRequest("index must be a string name")
        index = self.registry.get(name)
        # cell-addressed ops validate against num_cells, vertex-addressed
        # ops against n; ``value`` is whichever id the op looks up
        if op in ("max_nucleus", "nucleus_at"):
            value = self._request_int(request, "cell")
            if not 0 <= value < index.num_cells:
                raise _BadRequest(
                    f"cell {value} out of range (index has "
                    f"{index.num_cells} cells)")
        else:
            value = self._request_int(request, "vertex")
            if not 0 <= value < index.n:
                raise _BadRequest(
                    f"vertex {value} out of range (index has "
                    f"{index.n} vertices)")
        k = (self._request_int(request, "k")
             if op in ("nucleus_at", "communities_of_vertex") else 0)
        if op == "nucleus_at" and k > int(index.lam[value]):
            raise _BadRequest(
                f"cell {value} has lambda {int(index.lam[value])} < k={k}")
        if self.config.uncoalesced:
            return self._scalar_answer(index, op, value, k)
        route = name or self.registry.default_name
        assert route is not None  # registry.get(name) succeeded above
        coalescer = self._coalescers[route]
        if op == "max_nucleus":
            return await coalescer.max_nucleus(value)
        if op == "nucleus_at":
            return await coalescer.nucleus_at(value, k)
        if op == "communities_of_vertex":
            return await coalescer.communities_of_vertex(value, k)
        return await coalescer.profile(value)

    @staticmethod
    def _scalar_answer(index: Any, op: str, value: int, k: int) -> str:
        """The per-request reference path: one scalar query, one encode."""
        if op == "max_nucleus":
            return protocol.cells_json(index.max_nucleus(value))
        if op == "nucleus_at":
            return protocol.cells_json(index.nucleus_at(value, k))
        if op == "communities_of_vertex":
            return protocol.communities_json(
                index.communities_of_vertex(value, k))
        return protocol.profile_json(index.profile(value))

    # ------------------------------------------------------------------
    # HTTP protocol
    # ------------------------------------------------------------------
    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          request_line: bytes) -> None:
        while request_line:
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                await self._http_reply(writer, 400, protocol.error_envelope(
                    None, "malformed request line"), close=True)
                return
            method, target, version = parts
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await reader.readexactly(length)
            keep_alive = (version == "HTTP/1.1"
                          and headers.get("connection", "").lower()
                          != "close")
            status, payload = await self._http_response(method, target, body)
            await self._http_reply(writer, status, payload,
                                   close=not keep_alive,
                                   head_only=method == "HEAD")
            if not keep_alive:
                return
            request_line = await reader.readline()

    async def _http_response(self, method: str, target: str,
                             body: bytes) -> tuple[int, bytes]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        if method in ("GET", "HEAD"):
            if path == "/stats":
                return 200, (json.dumps(self.stats()) + "\n").encode()
            if path in ("/healthz", "/"):
                return 200, b'{"ok":true}\n'
            if path == "/indexes":
                return 200, (json.dumps(self.registry.describe())
                             + "\n").encode()
            if path.startswith("/query/"):
                request = {key: values[-1] for key, values
                           in parse_qs(split.query).items()}
                request["op"] = path[len("/query/"):]
                return 200, await self._answer(request)
            return 404, protocol.error_envelope(
                None, f"no route {path!r} (try /stats, /indexes, "
                      f"/healthz, /query/<op>?..., POST /query)")
        if method == "POST" and path == "/query":
            try:
                parsed = json.loads(body or b"null")
            except ValueError:
                return 400, protocol.error_envelope(
                    None, "POST /query body must be JSON")
            if isinstance(parsed, dict):
                return 200, await self._answer(parsed)
            if isinstance(parsed, list) and all(
                    isinstance(item, dict) for item in parsed):
                lines = await asyncio.gather(
                    *(self._answer(item) for item in parsed))
                return 200, (b"[" + b",".join(
                    line.rstrip(b"\n") for line in lines) + b"]\n")
            return 400, protocol.error_envelope(
                None, "POST /query body must be a JSON object or an "
                      "array of objects")
        return 405, protocol.error_envelope(
            None, f"method {method} not supported on {path!r}")

    @staticmethod
    async def _http_reply(writer: asyncio.StreamWriter, status: int,
                          payload: bytes, close: bool,
                          head_only: bool = False) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {'close' if close else 'keep-alive'}\r\n"
                f"\r\n").encode("latin-1")
        try:
            writer.write(head if head_only else head + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


# ---------------------------------------------------------------------------
# process entry points
# ---------------------------------------------------------------------------
def _serve_on_socket(sock: socket.socket, registry: IndexRegistry,
                     config: ServerConfig) -> None:
    """Run one worker's accept loop until interrupted."""
    async def _amain() -> None:
        server = NucleusServer(registry, config)
        await server.start(sock=sock)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            # a plain signal handler raising SystemExit can fire inside a
            # protocol callback mid-write; the loop-level handler runs
            # between callbacks, so in-flight replies finish first
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # no loop signal support off POSIX
            await server.serve_forever()
            return
        try:
            await stop.wait()
        finally:
            loop.remove_signal_handler(signal.SIGTERM)
            await server.aclose()

    asyncio.run(_amain())


def run_server(specs: list[str], config: ServerConfig | None = None, *,
               mmap: bool = True) -> int:
    """Bind, load the registry once, fork workers, serve until signalled.

    ``specs`` are ``name=path`` or bare-path index specs (see
    :meth:`IndexRegistry.from_specs`).  The listening socket and the
    loaded registry are created **before** forking, so all workers accept
    on one socket and read the same mapped pages.  Prints one
    ``serving ...`` line once the socket is bound (``port 0`` picks a
    free port; the line is how callers learn it).
    """
    config = config or ServerConfig()
    registry = IndexRegistry.from_specs(specs, mmap=mmap)
    if config.workers > 1 and \
            "fork" not in multiprocessing.get_all_start_methods():
        raise InvalidParameterError(
            "multi-worker serving needs the fork start method (this "
            "platform has none); run with --workers 1")
    sock = socket.create_server((config.host, config.port), backlog=1024)
    host, port = sock.getsockname()[:2]
    print(f"serving {','.join(registry.names())} on {host}:{port} "
          f"(workers={config.workers}, "
          f"coalesce_window={config.coalesce_window}, "
          f"max_batch={config.max_batch}"
          f"{', uncoalesced' if config.uncoalesced else ''}"
          f"{', mmap' if mmap else ''})", flush=True)
    children: list = []
    previous = signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        if config.workers > 1:
            context = multiprocessing.get_context("fork")
            for _ in range(config.workers - 1):
                child = context.Process(
                    target=_serve_on_socket,
                    args=(sock, registry, config), daemon=True)
                child.start()
                children.append(child)
        _serve_on_socket(sock, registry, config)
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        for child in children:
            child.terminate()
        for child in children:
            child.join(timeout=5)
        sock.close()
    return 0


class ServerThread:
    """A :class:`NucleusServer` on a background thread, for embedding.

    The constructor blocks until the socket is bound (``port`` defaults
    to 0 = any free port), so ``server.port`` is immediately valid::

        with ServerThread(registry) as server:
            client = ServeClient(port=server.port)

    Used by the tests, the docs snippets and the benchmark's latency
    phase; production serving should prefer ``repro-nucleus serve``
    (real worker processes, no GIL sharing with the application).
    """

    def __init__(self, registry: IndexRegistry,
                 **config_kwargs: Any) -> None:
        config_kwargs.setdefault("port", 0)
        self.config = ServerConfig(**config_kwargs)
        self.registry = registry
        self.server: NucleusServer | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface bind errors in __init__
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()
            else:
                raise

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = NucleusServer(self.registry, self.config)
        await server.start()
        self.server = server
        self.port = server.port
        self._started.set()
        await self._stop.wait()
        await server.aclose()

    def close(self) -> None:
        if self._loop is not None and self._stop is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
