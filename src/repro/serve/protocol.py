"""Wire encoding shared by the TCP and HTTP front ends.

Requests are JSON objects; responses are JSON envelopes::

    {"op": "communities_of_vertex", "vertex": 17, "k": 3,
     "index": "web", "id": 41}
    {"id": 41, "ok": true, "result": [[0, 4, 9], [22, 23]]}

Answers are built as JSON *fragments* so the batch path can serialise
each distinct answer exactly once: the ``*_batch`` kernels return the
**same ndarray object** for every request that resolves to the same
nucleus within a batch, so an ``id()``-keyed cache turns duplicate
answers into a dict hit instead of a re-encode.  That cache is scoped to
one batch — object identity means nothing beyond it.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "QUERY_OPS",
    "cells_json",
    "communities_json",
    "envelope",
    "error_envelope",
    "profile_json",
]

#: query ops every front end routes (plus "stats", "indexes", "ping")
QUERY_OPS = ("max_nucleus", "nucleus_at", "communities_of_vertex", "profile")


def cells_json(cells: Any, cache: dict[int, str] | None = None) -> str:
    """A sorted cell array as a JSON list, cached by array identity."""
    if cache is not None:
        hit = cache.get(id(cells))
        if hit is not None:
            return hit
    text = "[" + ",".join(map(str, cells.tolist() if hasattr(cells, "tolist")
                              else cells)) + "]"
    if cache is not None:
        cache[id(cells)] = text
    return text


def communities_json(communities: Iterable[Any],
                     cache: dict[int, str] | None = None) -> str:
    """A list of cell arrays (one vertex's communities) as JSON."""
    return "[" + ",".join(cells_json(c, cache) for c in communities) + "]"


def profile_json(levels: Iterable[Any]) -> str:
    """A vertex's :class:`~repro.queries.CommunityLevel` chain as JSON."""
    return json.dumps([
        {"k": level.k, "node_id": level.node_id,
         "num_vertices": level.num_vertices, "num_edges": level.num_edges,
         "density": level.density}
        for level in levels])


def envelope(request_id: object, result_fragment: str) -> bytes:
    """A success response line (``result_fragment`` is already JSON)."""
    return (f'{{"id":{json.dumps(request_id)},"ok":true,'
            f'"result":{result_fragment}}}\n').encode()


def error_envelope(request_id: object, message: str) -> bytes:
    """An error response line."""
    return (f'{{"id":{json.dumps(request_id)},"ok":false,'
            f'"error":{json.dumps(message)}}}\n').encode()
