"""Micro-batching: coalesce concurrent scalar requests into batch kernels.

The flat index's ``*_batch`` kernels answer a thousand look-ups in one
vectorised pass (the ~230–830× recorded in ``BENCH_baseline.json``), but
network requests arrive one at a time.  :class:`BatchCoalescer` bridges
the two: each scalar request parks a future in a per-route bucket, the
first request in a bucket schedules a flush — after ``window`` seconds,
or on the **next event-loop tick** when ``window == 0`` (batching scales
with instantaneous load and adds no artificial latency), or immediately
once ``max_batch`` requests are parked — and one flush answers the whole
bucket through the matching batch kernel.

Buckets are keyed per (op, k): requests for different community strengths
cannot share a kernel call (the per-``k`` "top" pointer array differs).
Flushes also *serialise* each distinct answer once: the batch kernels
return the same ndarray object for every request resolving to the same
nucleus, so the JSON fragment is built per unique answer, not per
request (see :mod:`repro.serve.protocol`).

Requests are validated **before** they are submitted (the server rejects
a bad cell id or an out-of-range ``k`` per request), so one malformed
request can never poison the shared batch; a kernel failure is still
fanned out to every parked future defensively.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.serve import protocol
from repro.serve.metrics import ServerMetrics

__all__ = ["BatchCoalescer"]


class _Bucket:
    __slots__ = ("values", "futures", "handle")

    def __init__(self) -> None:
        self.values: list[int] = []
        self.futures: list[asyncio.Future] = []
        self.handle: asyncio.TimerHandle | asyncio.Handle | None = None


class BatchCoalescer:
    """Gathers scalar queries against one index into batch-kernel calls.

    ``window`` is the maximum seconds a request waits for company
    (``0`` = flush on the next event-loop tick); ``max_batch`` flushes a
    bucket early once that many requests are parked.  Every submit
    resolves to the request's answer as a ready-to-send JSON fragment.
    """

    def __init__(self, index: Any, metrics: ServerMetrics | None = None,
                 window: float = 0.0, max_batch: int = 512) -> None:
        self.index = index
        self.metrics = metrics
        self.window = window
        self.max_batch = max_batch
        self._buckets: dict[tuple, _Bucket] = {}

    # ------------------------------------------------------------------
    # the four scalar routes
    # ------------------------------------------------------------------
    async def max_nucleus(self, cell: int) -> str:
        return await self._submit(("max_nucleus", None), cell)

    async def nucleus_at(self, cell: int, k: int) -> str:
        return await self._submit(("nucleus_at", k), cell)

    async def communities_of_vertex(self, vertex: int, k: int) -> str:
        return await self._submit(("communities_of_vertex", k), vertex)

    async def profile(self, vertex: int) -> str:
        return await self._submit(("profile", None), vertex)

    # ------------------------------------------------------------------
    # batching machinery
    # ------------------------------------------------------------------
    def _submit(self, key: tuple, value: int) -> "asyncio.Future[str]":
        loop = asyncio.get_running_loop()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            if self.window > 0:
                bucket.handle = loop.call_later(
                    self.window, self._flush, key)
            else:
                bucket.handle = loop.call_soon(self._flush, key)
        bucket.values.append(value)
        future: asyncio.Future = loop.create_future()
        bucket.futures.append(future)
        if len(bucket.values) >= self.max_batch:
            bucket.handle.cancel()
            self._flush(key)
        return future

    def _flush(self, key: tuple) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:  # already flushed by the max_batch trigger
            return
        if self.metrics is not None:
            self.metrics.record_batch(len(bucket.values))
        try:
            fragments = self._answer(key, bucket.values)
        except Exception as exc:  # defensive: requests are pre-validated
            if self.metrics is not None:  # surfaced on /stats, not just
                self.metrics.record_batch_failure(exc)  # on the futures
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, fragment in zip(bucket.futures, fragments, strict=True):
            if not future.done():  # the client may have disconnected
                future.set_result(fragment)

    def _answer(self, key: tuple, values: list[int]) -> list[str]:
        """One batch-kernel call, serialised with a per-batch cache."""
        op, k = key
        index = self.index
        cache: dict[int, str] = {}
        if op == "max_nucleus":
            return [protocol.cells_json(cells, cache)
                    for cells in index.max_nucleus_batch(values)]
        if op == "nucleus_at":
            return [protocol.cells_json(cells, cache)
                    for cells in index.nucleus_at_batch(values, k)]
        if op == "communities_of_vertex":
            return [protocol.communities_json(row, cache)
                    for row in index.communities_of_vertex_batch(values, k)]
        if op == "profile":
            return [protocol.profile_json(levels)
                    for levels in index.profile_batch(values)]
        raise ValueError(f"unknown batch route {op!r}")
