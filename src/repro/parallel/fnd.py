"""FND decomposition with sharded incidence set-up.

Hierarchy construction itself (the extended peel fused with
BuildHierarchy) is a sequential dependence chain — every sub-nucleus
merge depends on the λ values settled before it — so parallelising it
would change the tie-breaking that the node-for-node parity contract
forbids.  What *is* parallel-friendly is the dominant set-up phase: the
triangle / K₄ listing and incidence materialisation.  This module farms
that out to the worker pool and then runs the unchanged sequential
:func:`~repro.core.csr_fnd._incidence_fnd` over the result, so λ and the
condensed hierarchy are identical to the ``csr`` backend by construction.

(1,2) has no incidence phase — its set-up is one ``np.diff`` — so the
parallel backend simply delegates to the sequential direct path there.
"""

from __future__ import annotations

from repro.core.csr_fnd import (
    _incidence_fnd,
    csr_fnd_core,
    csr_fnd_decomposition,
)
from repro.core.fnd import FndInstrumentation
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.core.views import CellView, CSREdgeView, CSRTriangleView, VertexView
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.parallel.bulk import sharding_effective
from repro.parallel.incidence import (
    parallel_nucleus34_incidence,
    parallel_truss_incidence,
)
from repro.parallel.pool import WorkerPool

__all__ = ["parallel_fnd_decomposition"]


def parallel_fnd_decomposition(
        csr: CSRGraph, r: int, s: int, workers: int,
        instrumentation: FndInstrumentation | None = None,
) -> tuple[PeelingResult, Hierarchy, CellView]:
    """Direct FND with the incidence set-up sharded over ``workers``.

    Same contract as :func:`~repro.core.csr_fnd.csr_fnd_decomposition`:
    ``(peeling, hierarchy, view)`` with λ elementwise and the condensed
    hierarchy node-for-node equal to the sequential CSR engine.  When
    sharding cannot pay (one worker, or a host without spare cores — see
    :func:`~repro.parallel.bulk.sharding_effective`) this degrades to the
    sequential direct path.
    """
    if workers == 1 or not sharding_effective():
        return csr_fnd_decomposition(csr, r, s, instrumentation)
    if (r, s) == (1, 2):
        peeling, hierarchy = csr_fnd_core(csr, instrumentation)
        return peeling, hierarchy, VertexView(csr)
    if (r, s) == (2, 3):
        with WorkerPool(workers) as pool:
            sup, ptr, comp1, comp2 = parallel_truss_incidence(csr, pool)
        peeling, hierarchy = _incidence_fnd(
            2, 3, sup.tolist(), ptr.tolist(),
            (comp1.tolist(), comp2.tolist()), instrumentation)
        return peeling, hierarchy, CSREdgeView(csr)
    if (r, s) == (3, 4):
        with WorkerPool(workers) as pool:
            triangles, sup, ptr, comps = parallel_nucleus34_incidence(
                csr, pool)
        degrees = sup.tolist()
        peeling, hierarchy = _incidence_fnd(
            3, 4, list(degrees), ptr.tolist(),
            tuple(c.tolist() for c in comps), instrumentation)
        view = CSRTriangleView(csr, _enumeration=(triangles, degrees))
        return peeling, hierarchy, view
    raise InvalidParameterError(
        f"no parallel FND for (r, s) = ({r}, {s}); "
        f"supported: ((1, 2), (2, 3), (3, 4))")
