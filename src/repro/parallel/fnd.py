"""End-to-end parallel FND: sharded set-up, bulk peel, level-wise build.

PR 3 parallelised the incidence set-up but kept the extended peel fused
with BuildHierarchy sequential — every sub-nucleus merge depended on the
λ values settled before it.  The pipeline here breaks that chain in
three worker-pool phases over one set of shared arrays:

1. **set-up** — triangle/K₄ listing and incidence materialisation,
   sharded by pair-balanced ranges (:mod:`repro.parallel.incidence`;
   (1,2) needs none — its degrees are one ``np.diff``);
2. **peel** — the round-synchronous bulk peel settles λ for every cell,
   elementwise identical to the sequential engine
   (:mod:`repro.parallel.bulk`);
3. **construction** — with λ known, sub-nucleus detection becomes
   level-wise connectivity: workers union-find their incidence shards
   locally and the parent merges the per-worker forests into the shared
   rooted forest in deterministic order
   (:mod:`repro.parallel.construct`).

The output contract is unchanged from
:func:`~repro.core.csr_fnd.csr_fnd_decomposition`: λ is elementwise
identical and the *condensed* hierarchy is node-for-node identical to
the sequential CSR engine, for (1,2), (2,3) and (3,4), at every worker
count.  Only the non-maximal skeleton differs — the level-wise build
materialises one sub-nucleus per (level, component), a subset of the
sequential T* that condenses to the same nucleus tree.  When sharding
cannot pay (one worker, or a host without spare cores — see
:func:`~repro.parallel.bulk.sharding_effective`) the whole pipeline
degrades to the sequential direct path.
"""

from __future__ import annotations

import numpy as np

from repro.core.csr_fnd import csr_fnd_decomposition
from repro.core.fnd import FndInstrumentation
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.core.views import CellView, CSREdgeView, CSRTriangleView, VertexView
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph, csr_arrays_int64
from repro.parallel.bulk import (
    _bulk_incidence_peel,
    bulk_core_peel,
    sharding_effective,
)
from repro.parallel.construct import (
    core_hierarchy_from_lambda,
    incidence_hierarchy_from_lambda,
)
from repro.parallel.incidence import (
    parallel_nucleus34_incidence,
    parallel_truss_incidence,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedArrayBundle

__all__ = ["parallel_fnd_decomposition"]


def parallel_fnd_decomposition(
        csr: CSRGraph, r: int, s: int, workers: int,
        instrumentation: FndInstrumentation | None = None,
) -> tuple[PeelingResult, Hierarchy, CellView]:
    """Direct FND with set-up, peel *and* construction over ``workers``.

    Same contract as :func:`~repro.core.csr_fnd.csr_fnd_decomposition`:
    ``(peeling, hierarchy, view)`` with λ elementwise and the condensed
    hierarchy node-for-node equal to the sequential CSR engine (only the
    peel ``order`` follows the bulk rounds instead of the single-cell
    pops).  Degrades to the sequential direct path when sharding cannot
    pay.
    """
    if workers == 1 or not sharding_effective():
        return csr_fnd_decomposition(csr, r, s, instrumentation)
    if (r, s) == (1, 2):
        with WorkerPool(workers) as pool:
            arrays = csr_arrays_int64(csr)
            # one shared export of the adjacency serves peel + construction
            with SharedArrayBundle.create(
                    {"indptr": arrays["indptr"],
                     "indices": arrays["indices"]}) as static:
                peeling = bulk_core_peel(csr, pool=pool, static=static)
                lam = np.asarray(peeling.lam, dtype=np.int64)
                hierarchy = core_hierarchy_from_lambda(
                    csr, lam, pool=pool, instrumentation=instrumentation,
                    static_bundle=static)
        return peeling, hierarchy, VertexView(csr)
    if (r, s) == (2, 3):
        with WorkerPool(workers) as pool:
            sup, ptr, comp1, comp2 = parallel_truss_incidence(csr, pool)
            with SharedArrayBundle.create(
                    {"ptr": ptr, "c1": comp1, "c2": comp2}) as static:
                peeling = _bulk_incidence_peel(sup, ptr, (comp1, comp2),
                                               pool, static=static)
                lam = np.asarray(peeling.lam, dtype=np.int64)
                hierarchy = incidence_hierarchy_from_lambda(
                    2, 3, lam, ptr, (comp1, comp2), pool=pool,
                    instrumentation=instrumentation, static_bundle=static)
        return peeling, hierarchy, CSREdgeView(csr)
    if (r, s) == (3, 4):
        with WorkerPool(workers) as pool:
            triangles, sup, ptr, comps = parallel_nucleus34_incidence(
                csr, pool)
            degrees = sup.tolist()  # the bulk peel settles sup in place
            named = {"ptr": ptr}
            for i, comp in enumerate(comps):
                named[f"c{i + 1}"] = comp
            with SharedArrayBundle.create(named) as static:
                peeling = _bulk_incidence_peel(sup, ptr, comps, pool,
                                               static=static)
                lam = np.asarray(peeling.lam, dtype=np.int64)
                hierarchy = incidence_hierarchy_from_lambda(
                    3, 4, lam, ptr, comps, pool=pool,
                    instrumentation=instrumentation, static_bundle=static)
        view = CSRTriangleView(csr, _enumeration=(triangles, degrees))
        return peeling, hierarchy, view
    raise InvalidParameterError(
        f"no parallel FND for (r, s) = ({r}, {s}); "
        f"supported: ((1, 2), (2, 3), (3, 4))")
