"""Persistent worker processes for the shared-memory peeling subsystem.

A :class:`WorkerPool` spawns ``workers`` long-lived processes connected
by pipes.  Workers hold no state of their own beyond the shared-memory
bundles the parent has told them to :meth:`~WorkerPool.bind`; every task
is a tiny picklable tuple naming a range of work over those arrays, so
the inputs never cross the pipe and each reply carries only the task's
sparse output (decrement pairs, reduced spanning forests, or listing
shards) — nothing proportional to the graph.

Task vocabulary (see ``_worker_main``):

* ``core-dec`` / ``inc-dec`` — sparse ``(targets, counts)`` decrement
  pairs for a frontier shard (the round's touched cells only — the
  parent merges the per-worker pairs, so nothing dense ever moves);
* ``core-level`` / ``inc-level`` — level-``k`` connectivity pairs for a
  λ-frontier shard of the parallel hierarchy construction, reduced to
  the worker's local union-find spanning forest before they cross the
  pipe;
* ``triangles`` / ``k4`` — a shard of the vectorised clique-listing
  kernels of :mod:`repro.graph.csr` (these do return arrays, since their
  output size is unknown up front);
* ``bind`` / ``unbind`` / ``stop`` — lifecycle.

Worker count resolution (the ``workers=`` parameter everywhere, or the
``REPRO_WORKERS`` environment variable) lives here too.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback

from repro.errors import InvalidParameterError
from repro.parallel.shm import SharedArrayBundle

__all__ = ["WORKERS_ENV", "WorkerPool", "resolve_workers"]

#: environment variable consulted when ``workers=None`` is passed
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Validate a worker count, falling back to ``$REPRO_WORKERS`` then 1.

    Raises :class:`InvalidParameterError` for zero, negative, or
    non-integer counts — both the explicit parameter and the environment
    value are validated the same way.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is None or raw.strip() == "":
            return 1
        try:
            workers = int(raw.strip())
        except ValueError:
            raise InvalidParameterError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise InvalidParameterError(
            f"workers must be an int, got {workers!r}")
    if workers < 1:
        raise InvalidParameterError(
            f"workers must be >= 1, got {workers}")
    return workers


def _context():
    """Fork when the platform offers it (cheap start, inherits imports)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def _worker_main(conn, untrack: bool) -> None:
    """Worker loop: attach bundles on bind, execute range tasks, reply."""
    import numpy as np  # noqa: F401 - ensures numpy is live before kernels

    from repro.graph.csr import k4_pair_kernel, triangle_pair_kernel
    from repro.parallel.kernels import (
        core_decrement,
        core_level_edges,
        incidence_decrement,
        incidence_level_edges,
        spanning_forest_reduce,
    )

    bundles: list[SharedArrayBundle] = []
    arrays: dict = {}
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            try:
                payload = None
                if command == "bind":
                    for spec in message[1]:
                        bundle = SharedArrayBundle.attach(spec, untrack)
                        bundles.append(bundle)
                        for key in bundle.keys():
                            arrays[key] = bundle[key]
                elif command == "unbind":
                    arrays.clear()
                    while bundles:
                        bundles.pop().close()
                elif command == "core-dec":
                    _, _rnd, lo, hi = message
                    frontier = arrays["frontier"][lo:hi]
                    payload = core_decrement(
                        arrays["indptr"], arrays["indices"],
                        arrays["peel_round"], frontier)
                elif command == "inc-dec":
                    _, ncomps, rnd, lo, hi = message
                    comps = tuple(arrays[f"c{i + 1}"] for i in range(ncomps))
                    frontier = arrays["frontier"][lo:hi]
                    payload = incidence_decrement(
                        arrays["ptr"], comps, arrays["peel_round"],
                        frontier, rnd)
                elif command == "core-level":
                    _, k, lo, hi = message
                    frontier = arrays["level_frontier"][lo:hi]
                    payload = spanning_forest_reduce(*core_level_edges(
                        arrays["indptr"], arrays["indices"], arrays["lam"],
                        frontier, k))
                elif command == "inc-level":
                    _, ncomps, k, lo, hi = message
                    comps = tuple(arrays[f"c{i + 1}"] for i in range(ncomps))
                    frontier = arrays["level_frontier"][lo:hi]
                    payload = spanning_forest_reduce(*incidence_level_edges(
                        arrays["ptr"], comps, arrays["lam"], frontier, k))
                elif command == "triangles":
                    _, n, lo, hi = message
                    payload = triangle_pair_kernel(
                        arrays["fptr"], arrays["fdst"], arrays["feid"],
                        arrays["fkeys"], n, lo, hi)
                elif command == "k4":
                    _, n, glo, ghi = message
                    payload = k4_pair_kernel(
                        arrays["tri_keys"], arrays["tri_u"], arrays["tri_v"],
                        arrays["tri_w"], arrays["run_ptr"], n, glo, ghi)
                else:
                    raise ValueError(f"unknown pool command {command!r}")
                conn.send(("ok", payload))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        while bundles:
            bundles.pop().close()
        conn.close()


class WorkerPool:
    """``workers`` persistent processes executing shard tasks over
    shared-memory arrays.

    Use as a context manager; :meth:`close` tears the processes down.
    The pool is deliberately dumb — all scheduling intelligence (what to
    shard, by what weights) lives with the callers in
    :mod:`repro.parallel.bulk` and :mod:`repro.parallel.incidence`.
    """

    def __init__(self, workers: int):
        workers = resolve_workers(workers)
        self.workers = workers
        self._conns = []
        self._procs = []
        ctx = _context()
        try:
            untrack = ctx.get_start_method() != "fork"
            if not untrack:
                # fork workers must inherit the parent's resource tracker:
                # started this late, a child's first attach would spawn a
                # private tracker that "cleans up" (unlinks) segments the
                # parent still owns at worker exit.  A shared tracker
                # dedupes the attach registrations instead.
                from multiprocessing import resource_tracker
                resource_tracker.ensure_running()
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=_worker_main,
                                   args=(child_conn, untrack),
                                   daemon=True)
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    def _collect(self, conns) -> list:
        # drain every reply before raising — each command produces exactly
        # one reply, so the pipes stay in sync even across failures
        replies = [conn.recv() for conn in conns]
        for status, payload in replies:
            if status != "ok":
                raise RuntimeError(f"pool worker failed:\n{payload}")
        return [payload for _, payload in replies]

    def broadcast(self, message: tuple) -> list:
        """Send the same task to every worker; return replies in order."""
        for conn in self._conns:
            conn.send(message)
        return self._collect(self._conns)

    def scatter(self, tasks: list[tuple]) -> list:
        """Send task ``i`` to worker ``i``; return replies in order."""
        if len(tasks) != self.workers:
            raise ValueError(
                f"need exactly {self.workers} tasks, got {len(tasks)}")
        for conn, task in zip(self._conns, tasks, strict=True):
            conn.send(task)
        return self._collect(self._conns)

    def bind(self, specs: list[tuple]) -> None:
        """Attach the given bundles (by spec) in every worker."""
        self.broadcast(("bind", list(specs)))

    def unbind(self) -> None:
        """Drop every bound bundle in every worker."""
        self.broadcast(("unbind",))

    def close(self) -> None:
        """Stop and join the workers (terminate stragglers)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive teardown
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
