"""Sharded incidence set-up: clique listing split across workers.

The peel loops are one half of the (2,3)/(3,4) cost; listing the
triangles / four-cliques and materialising the cell→s-clique incidence is
the other (Sarıyüce et al. 2015 measure them at the same order).  Both
listings are range-shardable: the wedge-pair kernel of
:mod:`repro.graph.csr` is pure index algebra over arrays a worker can
attach read-only, and consecutive ranges concatenate to exactly the
sequential output — so the merged listing (and everything derived from
it) is byte-identical for every worker count.

The incidence fill itself (one stable argsort) stays in the parent: it is
already vectorised, and its output feeds straight into either the
round-synchronous bulk peel (:mod:`repro.parallel.bulk`) or the
sequential extended peel + BuildHierarchy of :mod:`repro.core.csr_fnd`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import (
    _MAX_KEYED_N,
    _concat_columns,
    CSRGraph,
    csr_arrays_int64,
    csr_forward_structure,
    fill_incidence,
    triangle_run_pointers,
    triangle_triples,
)
from repro.parallel.kernels import weighted_cuts
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedArrayBundle

__all__ = [
    "parallel_nucleus34_incidence",
    "parallel_triangle_edge_ids",
    "parallel_truss_incidence",
]


def parallel_triangle_edge_ids(csr: CSRGraph, pool: WorkerPool):
    """Sharded triangle listing: ``(e1, e2, e3)`` edge-id arrays.

    The parent builds the degree-ranked forward structure (one sort),
    shares it, and each worker enumerates the wedge pairs of a rank range
    balanced by pair count.  Concatenating the shards in range order
    reproduces the sequential :func:`~repro.graph.csr.csr_triangle_edge_ids`
    output exactly.
    """
    forward = csr_forward_structure(csr)
    counts = np.diff(forward["fptr"])
    cuts = weighted_cuts(counts * (counts - 1) // 2, pool.workers)
    with SharedArrayBundle.create(forward) as bundle:
        pool.bind([bundle.spec])
        try:
            parts = pool.scatter(
                [("triangles", csr.n, lo, hi)
                 for lo, hi in zip(cuts[:-1], cuts[1:], strict=True)])
        finally:
            pool.unbind()
    return _concat_columns(parts, 3)


def parallel_truss_incidence(csr: CSRGraph, pool: WorkerPool):
    """Sharded edge→triangle incidence: ``(sup, ptr, comp1, comp2)``.

    Same shape as :func:`~repro.core.csr_peel.truss_incidence`, as int64
    numpy arrays; only the triangle listing is farmed out — the fill is
    one argsort in the parent (:func:`~repro.graph.csr.fill_incidence`,
    shared with the sequential builders).
    """
    e1, e2, e3 = parallel_triangle_edge_ids(csr, pool)
    sup, ptr, (comp1, comp2) = fill_incidence(
        [e1, e2, e3], [(e2, e3), (e1, e3), (e1, e2)], csr.m)
    return sup, ptr, comp1, comp2


def parallel_nucleus34_incidence(csr: CSRGraph, pool: WorkerPool):
    """Sharded triangle→K₄ incidence: ``(triangles, sup, ptr, comps)``.

    Same shape as :func:`~repro.core.csr_peel.nucleus34_incidence` with
    numpy arrays: the lex triangle triple list (ids = positions), initial
    ω₄ supports, and the three aligned companion arrays.  Workers shard
    first the triangle listing, then the K₄ pair kernel over
    lowest-edge runs balanced by pair count.

    Past :data:`~repro.graph.csr._MAX_KEYED_N` vertices the int64 triple
    keys the K₄ kernel searches would overflow, so huge graphs fall back
    to the (guarded) sequential builder rather than shard.
    """
    if csr.n >= _MAX_KEYED_N:
        from repro.core.csr_peel import nucleus34_incidence_arrays

        return nucleus34_incidence_arrays(csr)
    tri_edges = parallel_triangle_edge_ids(csr, pool)
    tu, tv, tw = triangle_triples(csr_arrays_int64(csr), *tri_edges)
    order = np.lexsort((tw, tv, tu))
    tu, tv, tw = tu[order], tv[order], tw[order]
    n = csr.n
    run_ptr = triangle_run_pointers(tu, tv, n)
    run_sizes = run_ptr[1:] - run_ptr[:-1]
    cuts = weighted_cuts(run_sizes * (run_sizes - 1) // 2, pool.workers)
    shared = {"tri_keys": (tu * n + tv) * n + tw, "tri_u": tu, "tri_v": tv,
              "tri_w": tw, "run_ptr": run_ptr}
    with SharedArrayBundle.create(shared) as bundle:
        pool.bind([bundle.spec])
        try:
            parts = pool.scatter(
                [("k4", n, glo, ghi)
                 for glo, ghi in zip(cuts[:-1], cuts[1:], strict=True)])
        finally:
            pool.unbind()
    q1, q2, q3, q4 = _concat_columns(parts, 4)
    sup, ptr, comps = fill_incidence(
        [q1, q2, q3, q4],
        [(q2, q3, q4), (q1, q3, q4), (q1, q2, q4), (q1, q2, q3)],
        len(tu))
    triangles = list(zip(tu.tolist(), tv.tolist(), tw.tolist(), strict=True))
    return triangles, sup, ptr, comps
