"""Zero-copy shared-memory transport for the flat peeling state.

The whole point of the CSR layout (and of the flat-int
:class:`~repro.core.disjoint_set.ArrayRootedForest`) is that every piece
of peeling state is a homogeneous typed array.  This module moves those
arrays across process boundaries without serialising them:

* :class:`SharedArrayBundle` exports a dict of numpy arrays into one
  ``multiprocessing.shared_memory`` segment per array; its picklable
  :attr:`SharedArrayBundle.spec` lets a worker :meth:`attach
  <SharedArrayBundle.attach>` numpy views over the *same* pages — no
  copy, no pickle of the payload, writes visible to every process.
* :class:`SharedRootedForest` is the rooted-forest (Find-r / Link-r)
  discipline over shared int64 arrays, so hierarchy-skeleton state built
  by one process can be read — or extended — by another.

Owners must call :meth:`SharedArrayBundle.unlink` (workers only
:meth:`SharedArrayBundle.close`); :class:`SharedArrayBundle` is a context
manager that does the right one.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import KeysView

import numpy as np

from repro.core.disjoint_set import ArrayRootedForest

__all__ = ["SharedArrayBundle", "SharedRootedForest", "share_forest"]


def _attach_segment(name: str, untrack: bool) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup responsibility.

    CPython (< 3.13) registers attached segments with the resource
    tracker as if this process had created them (bpo-39959).  In a
    *spawn*-started worker that tracker is private, so at worker exit it
    would "clean up" — unlink — arrays the owner is still using; such
    workers pass ``untrack=True`` to undo the registration.  Fork-started
    workers share the owner's tracker, where the duplicate registration
    is harmless (and unregistering would drop the owner's own entry).
    """
    seg = shared_memory.SharedMemory(name=name)
    if untrack:
        try:
            resource_tracker.unregister(
                seg._name, "shared_memory")  # type: ignore[attr-defined]
        # the tracker API is private and varies across CPython versions;
        # failing to unregister only re-creates the bpo-39959 noise the
        # call is trying to avoid, so any error here is safe to drop
        except Exception:  # pragma: no cover  # repro-lint: disable=no-swallowed-worker-errors
            pass
    return seg


class SharedArrayBundle:
    """A named set of numpy arrays backed by shared-memory segments.

    Created by the owner with :meth:`create` (contents are copied into the
    segments once); any process holding the picklable :attr:`spec` can
    :meth:`attach` zero-copy views.  Indexing by key returns the live
    ``np.ndarray`` view.
    """

    def __init__(self, segments: dict[str, shared_memory.SharedMemory],
                 arrays: dict[str, np.ndarray],
                 spec: tuple, owner: bool) -> None:
        self._segments = segments
        self._arrays = arrays
        self.spec = spec
        self._owner = owner

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayBundle":
        """Export ``arrays`` into fresh shared-memory segments (one copy)."""
        segments: dict[str, shared_memory.SharedMemory] = {}
        views: dict[str, np.ndarray] = {}
        spec: list[tuple[str, str, str, tuple[int, ...]]] = []
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                seg = shared_memory.SharedMemory(
                    create=True, size=max(arr.nbytes, 1))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                segments[key] = seg
                views[key] = view
                spec.append((key, seg.name, arr.dtype.str, arr.shape))
        except Exception:
            for seg in segments.values():
                seg.close()
                seg.unlink()
            raise
        return cls(segments, views, tuple(spec), owner=True)

    @classmethod
    def attach(cls, spec: tuple, untrack: bool = False) -> "SharedArrayBundle":
        """Zero-copy views over the segments another process created.

        ``untrack=True`` is for spawn-started workers whose private
        resource tracker must not adopt the segments (see
        :func:`_attach_segment`).
        """
        segments: dict[str, shared_memory.SharedMemory] = {}
        views: dict[str, np.ndarray] = {}
        try:
            for key, name, dtype, shape in spec:
                seg = _attach_segment(name, untrack)
                segments[key] = seg
                views[key] = np.ndarray(shape, dtype=np.dtype(dtype),
                                        buffer=seg.buf)
        except Exception:
            for seg in segments.values():
                seg.close()
            raise
        return cls(segments, views, tuple(spec), owner=False)

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def keys(self) -> KeysView[str]:
        return self._arrays.keys()

    def close(self) -> None:
        """Drop this process's mapping (the segments live on)."""
        self._arrays = {}
        for seg in self._segments.values():
            seg.close()
        self._segments = {}

    def unlink(self) -> None:
        """Free the segments (owner only); implies :meth:`close`."""
        segments = list(self._segments.values())
        self.close()
        for seg in segments:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc: object) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


class SharedRootedForest:
    """Find-r / Link-r over shared int64 arrays (fixed capacity).

    The shared-memory counterpart of
    :class:`~repro.core.disjoint_set.ArrayRootedForest`: same ``parent`` /
    ``root`` / ``rank`` discipline and ``-1`` sentinels, but the three
    arrays live in a :class:`SharedArrayBundle` so several processes can
    inspect (or grow, one writer at a time) the same skeleton.  ``size``
    tracks how many of the pre-sized slots are live nodes.
    """

    __slots__ = ("bundle", "parent", "root", "rank", "size")

    def __init__(self, bundle: SharedArrayBundle, size: int) -> None:
        self.bundle = bundle
        self.parent = bundle["parent"]
        self.root = bundle["root"]
        self.rank = bundle["rank"]
        self.size = size

    @classmethod
    def attach(cls, spec: tuple, size: int,
               untrack: bool = False) -> "SharedRootedForest":
        return cls(SharedArrayBundle.attach(spec, untrack), size)

    def __len__(self) -> int:
        return self.size

    @property
    def capacity(self) -> int:
        return len(self.parent)

    def make_node(self) -> int:
        """Claim the next pre-sized slot as a fresh isolated node."""
        idx = self.size
        if idx >= self.capacity:
            raise IndexError("shared forest capacity exhausted")
        self.parent[idx] = -1
        self.root[idx] = -1
        self.rank[idx] = 0
        self.size = idx + 1
        return idx

    def make_nodes(self, count: int) -> int:
        """Claim ``count`` contiguous slots as fresh nodes; first id back.

        The batch counterpart of :meth:`make_node` — one vectorised write
        per array instead of ``count`` scalar stores.  The level-wise
        parallel hierarchy construction uses it to mint a whole
        λ-frontier of singleton sub-nuclei per round.
        """
        first = self.size
        end = first + count
        if end > self.capacity:
            raise IndexError("shared forest capacity exhausted")
        self.parent[first:end] = -1
        self.root[first:end] = -1
        self.rank[first:end] = 0
        self.size = end
        return first

    def adopt_roots(self, new_root: int) -> None:
        """Parent every live parentless node except ``new_root`` to it.

        Vectorised final step of the hierarchy construction: the
        surviving tree roots become children of the λ = 0 whole-graph
        node.  Only ``parent`` is written; ``root`` shortcuts are left
        as compressed.
        """
        live = self.parent[:self.size]
        orphans = live < 0
        orphans[new_root] = False
        live[orphans] = new_root

    def find(self, x: int, compress: bool = True) -> int:
        """Greatest ancestor of ``x`` via ``root`` pointers (Find-r)."""
        root = self.root
        top = x
        while root[top] >= 0:
            top = int(root[top])
        if compress:
            while x != top:
                nxt = int(root[x])
                root[x] = top
                x = nxt
        return top

    def link(self, x: int, y: int) -> int:
        """Link-r on two roots; returns the surviving root."""
        if x == y:
            return x
        if self.rank[x] > self.rank[y]:
            x, y = y, x
        # x goes under y
        self.parent[x] = y
        self.root[x] = y
        if self.rank[x] == self.rank[y]:
            self.rank[y] += 1
        return y

    def union(self, x: int, y: int) -> int:
        """Union-r: merge the trees containing ``x`` and ``y``."""
        return self.link(self.find(x), self.find(y))

    def attach_node(self, child_root: int, new_parent: int) -> None:
        """Make ``child_root`` (a current root) a child of ``new_parent``."""
        self.parent[child_root] = new_parent
        self.root[child_root] = new_parent

    def to_array_forest(self) -> ArrayRootedForest:
        """Copy the live slots back into a process-local forest."""
        forest = ArrayRootedForest()
        forest.parent = self.parent[:self.size].tolist()
        forest.root = self.root[:self.size].tolist()
        forest.rank = self.rank[:self.size].tolist()
        return forest


def share_forest(forest: ArrayRootedForest,
                 capacity: int | None = None) -> SharedRootedForest:
    """Export an :class:`ArrayRootedForest` into shared memory.

    ``capacity`` pre-sizes the arrays (default: the current node count) so
    the shared copy can still :meth:`~SharedRootedForest.make_node`.
    """
    size = len(forest)
    capacity = size if capacity is None else max(capacity, size)
    parent = np.full(capacity, -1, dtype=np.int64)
    root = np.full(capacity, -1, dtype=np.int64)
    rank = np.zeros(capacity, dtype=np.int64)
    parent[:size] = forest.parent
    root[:size] = forest.root
    rank[:size] = forest.rank
    bundle = SharedArrayBundle.create(
        {"parent": parent, "root": root, "rank": rank})
    return SharedRootedForest(bundle, size)
