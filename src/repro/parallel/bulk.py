"""Round-synchronous bulk peeling: peel whole frontiers, not single cells.

The sequential peels of :mod:`repro.core.csr_peel` pop one minimum cell
at a time — correct, cache-friendly, and intrinsically serial.  The bulk
peels here run the De Zoysa et al. 2021 bucket-synchronous formulation
instead: every round peels the *entire* current-minimum frontier at once
and applies the merged support decrements afterwards.  λ is a structural
quantity (the largest k whose (k, s)-subgraph contains the cell), so the
frontier formulation settles every cell at exactly the sequential value —
the parity suite asserts elementwise equality — while turning the inner
loop into a handful of numpy gathers per round.

With a :class:`~repro.parallel.pool.WorkerPool`, each round's decrement
is sharded: the parent stamps the frontier into the shared ``peel_round``
array, workers compute sparse ``(targets, counts)`` pairs over their
frontier shard — exactly what the in-process kernels emit — and the
parent merges them by sorted target id.  Addition commutes, so λ is
byte-identical for every worker count (and to the in-process run).
Without a pool the same kernels run on the whole frontier in one call.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.csr_peel import truss_incidence_arrays
from repro.core.peeling import PeelingResult
from repro.graph.csr import CSRGraph, csr_arrays_int64
from repro.parallel.incidence import (
    parallel_nucleus34_incidence,
    parallel_truss_incidence,
)
from repro.parallel.kernels import (
    core_decrement,
    incidence_decrement,
    weighted_cuts,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedArrayBundle

__all__ = [
    "bulk_core_peel",
    "bulk_nucleus34_peel",
    "bulk_truss_peel",
    "merge_sparse_decrements",
    "parallel_core_peel",
    "parallel_nucleus34_peel",
    "parallel_truss_peel",
]


def _round_loop(sup, peel_round, decrement_for) -> PeelingResult:
    """The shared frontier loop: extract, stamp, decrement, clamp.

    ``sup`` holds the current s-clique degrees (mutated toward λ in
    place); ``peel_round[x]`` is the round ``x`` was peeled in (−1 =
    alive) — the only state the decrement kernels read.  Each round peels
    the whole minimum-support frontier: every frontier cell's λ is the
    round's k, and surviving cells clamp at k exactly like the
    sequential ``if sup > k`` guard.

    Frontier discovery is bucket-driven, not scan-driven: a cell is
    dropped into ``pending[v]`` whenever its support reaches ``v`` (once
    at build time, then on every effective decrement), and the loop only
    ever touches the cells of the current bucket plus the cells a round
    actually decremented — entries left behind at higher levels are
    filtered by the liveness check.  A round therefore costs
    O(frontier + touched), so long-cascade graphs (paths, trees: O(n)
    rounds) peel in linear total time instead of the quadratic a
    full-array rescan per round would give.
    """
    size = len(sup)
    if size == 0:
        return PeelingResult(lam=[], max_lambda=0, order=[])
    lam = np.zeros(size, dtype=np.int64)
    max_sup = int(sup.max())
    # pending[v]: arrays of cells whose support last settled at v
    pending: list[list] = [[] for _ in range(max_sup + 1)]
    by_sup = np.argsort(sup, kind="stable")
    bounds = np.searchsorted(sup[by_sup], np.arange(max_sup + 2))
    for level in range(max_sup + 1):
        chunk = by_sup[bounds[level]:bounds[level + 1]]
        if len(chunk):
            pending[level].append(chunk)
    order_parts = []
    remaining = size
    rnd = 0
    k = 0
    max_lambda = 0
    while remaining:
        while not pending[k]:
            k += 1
        groups = pending[k]
        candidates = groups[0] if len(groups) == 1 else np.concatenate(groups)
        pending[k] = []
        # a candidate is stale when the cell was peeled at a lower level
        # (its entry here was superseded); live ones all sit exactly at k
        frontier = candidates[peel_round[candidates] < 0]
        if len(frontier) == 0:
            continue
        frontier = np.sort(frontier)
        lam[frontier] = k
        if k > max_lambda:
            max_lambda = k
        peel_round[frontier] = rnd
        targets, counts = decrement_for(frontier, rnd)
        if len(targets):
            old = sup[targets]
            new_vals = np.maximum(k, old - counts)
            changed = new_vals < old
            cells = targets[changed]
            if len(cells):
                vals = new_vals[changed]
                sup[cells] = vals
                for level in np.unique(vals):
                    pending[int(level)].append(cells[vals == level])
        order_parts.append(frontier)
        remaining -= len(frontier)
        rnd += 1
    order = (np.concatenate(order_parts) if order_parts
             else np.empty(0, dtype=np.int64))
    return PeelingResult(lam=lam.tolist(), max_lambda=max_lambda,
                         order=order.tolist())


#: frontiers touching fewer incidence slots than this are decremented by
#: the parent itself — the round-trip to the workers costs more than the
#: gather.  Most rounds of a peel are tiny; only the heavy early frontiers
#: are worth farming out.  Tuned so the 2-worker peel beats the sequential
#: engine even with shards fully serialised (the CI gate's worst case).
MIN_SHARD_SLOTS = 32768


class _ShardedDecrement:
    """Pool-side decrement: shard the frontier, merge sparse partials.

    Owns the shared round state (``peel_round`` + frontier buffer) for
    the duration of one peel; the static arrays (adjacency or incidence)
    are bound by the caller.  Workers return sparse ``(targets, counts)``
    pairs — exactly what the in-process kernels produce — and the parent
    merges them by sorted target id, so a round's merge cost follows the
    cells it actually touched instead of O(workers × cells) dense-vector
    sums.  Rounds whose total slot weight falls under
    :data:`MIN_SHARD_SLOTS` run the same kernel in the parent instead
    (``local_fn``) — byte-identical result, no round trip.  Use as a
    context manager so the segments are always unlinked.
    """

    def __init__(self, pool: WorkerPool, size: int, weights, task, local_fn):
        self.pool = pool
        self.weights = weights
        self.task = task
        self.local_fn = local_fn
        self.state = None
        try:
            self.state = SharedArrayBundle.create({
                "peel_round": np.full(size, -1, dtype=np.int64),
                "frontier": np.zeros(size, dtype=np.int64),
            })
            pool.bind([self.state.spec])
        except Exception:
            # __exit__ never runs when __init__ raises — free the
            # segments here or they leak for the process lifetime
            self._release()
            raise
        self.peel_round = self.state["peel_round"]
        self._frontier_buf = self.state["frontier"]

    def _release(self) -> None:
        if self.state is not None:
            self.state.unlink()
            self.state = None

    def __call__(self, frontier, rnd):
        shard_weights = self.weights[frontier]
        if int(shard_weights.sum()) < MIN_SHARD_SLOTS:
            return self.local_fn(self.peel_round, frontier, rnd)
        count = len(frontier)
        self._frontier_buf[:count] = frontier
        cuts = weighted_cuts(shard_weights, self.pool.workers)
        parts = self.pool.scatter([self.task + (rnd, lo, hi)
                                   for lo, hi in zip(cuts[:-1], cuts[1:], strict=True)])
        return merge_sparse_decrements(parts)

    def __enter__(self) -> "_ShardedDecrement":
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.pool.unbind()
        finally:
            self._release()


def merge_sparse_decrements(parts):
    """Sum per-worker sparse ``(targets, counts)`` pairs into one pair.

    Frontier shards overlap in the cells they touch, so equal targets
    from different workers must add; ``np.unique`` keeps the merged
    targets sorted (the same order the in-process kernels emit), making
    the pool path's output byte-identical to a single whole-frontier
    kernel call.
    """
    parts = [(t, c) for t, c in parts if len(t)]
    if not parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if len(parts) == 1:
        return parts[0]
    all_targets = np.concatenate([t for t, _ in parts])
    all_counts = np.concatenate([c for _, c in parts])
    targets, inverse = np.unique(all_targets, return_inverse=True)
    counts = np.zeros(len(targets), dtype=np.int64)
    np.add.at(counts, inverse, all_counts)
    return targets, counts


def bulk_core_peel(csr: CSRGraph, pool: WorkerPool | None = None,
                   static: SharedArrayBundle | None = None) -> PeelingResult:
    """(1,2) bulk peel: core numbers λ₂, frontier rounds over the CSR.

    ``static`` may hand in an already-shared ``indptr``/``indices``
    bundle (the FND pipeline shares the adjacency once across its peel
    and construction phases); without one the bundle is created — and
    unlinked — here.
    """
    if static is not None:
        indptr, indices = static["indptr"], static["indices"]
    else:
        arrays = csr_arrays_int64(csr)
        indptr, indices = arrays["indptr"], arrays["indices"]
    sup = np.diff(indptr)
    if pool is None:
        peel_round = np.full(csr.n, -1, dtype=np.int64)

        def decrement_for(frontier, rnd):
            return core_decrement(indptr, indices, peel_round, frontier)

        return _round_loop(sup, peel_round, decrement_for)
    owned = static is None
    if owned:
        static = SharedArrayBundle.create(
            {"indptr": indptr, "indices": indices})
    try:
        pool.bind([static.spec])
        with _ShardedDecrement(
                pool, csr.n, sup.copy(), ("core-dec",),
                lambda peel_round, frontier, rnd: core_decrement(
                    indptr, indices, peel_round, frontier),
        ) as sharded:
            return _round_loop(sup, sharded.peel_round, sharded)
    finally:
        if owned:
            static.unlink()


def _bulk_incidence_peel(sup, ptr, comps, pool: WorkerPool | None,
                         static: SharedArrayBundle | None = None,
                         ) -> PeelingResult:
    """Shared driver for the (2,3)/(3,4) bulk peels over an incidence.

    ``static`` may hand in an already-shared ``ptr``/``c1..cN`` bundle
    (see :func:`bulk_core_peel`).
    """
    size = len(sup)
    if pool is None:
        peel_round = np.full(size, -1, dtype=np.int64)

        def decrement_for(frontier, rnd):
            return incidence_decrement(ptr, comps, peel_round, frontier, rnd)

        return _round_loop(sup, peel_round, decrement_for)
    owned = static is None
    if owned:
        named = {"ptr": ptr}
        for i, comp in enumerate(comps):
            named[f"c{i + 1}"] = comp
        static = SharedArrayBundle.create(named)
    try:
        pool.bind([static.spec])
        with _ShardedDecrement(
                pool, size, np.diff(ptr), ("inc-dec", len(comps)),
                lambda peel_round, frontier, rnd: incidence_decrement(
                    ptr, comps, peel_round, frontier, rnd),
        ) as sharded:
            return _round_loop(sup, sharded.peel_round, sharded)
    finally:
        if owned:
            static.unlink()


def bulk_truss_peel(csr: CSRGraph, pool: WorkerPool | None = None,
                    ) -> PeelingResult:
    """(2,3) bulk peel: λ₃ per lex edge id, frontier rounds over the
    materialised edge→triangle incidence (built sharded when a pool is
    given)."""
    if pool is None:
        sup, ptr, comps = truss_incidence_arrays(csr)
    else:
        sup, ptr, comp1, comp2 = parallel_truss_incidence(csr, pool)
        comps = (comp1, comp2)
    return _bulk_incidence_peel(sup, ptr, comps, pool)


def bulk_nucleus34_peel(csr: CSRGraph, pool: WorkerPool | None = None,
                        ) -> PeelingResult:
    """(3,4) bulk peel: λ₄ per lex triangle id, frontier rounds over the
    materialised triangle→K₄ incidence (built sharded when a pool is
    given)."""
    if pool is None:
        from repro.core.csr_peel import nucleus34_incidence_arrays

        _, sup, ptr, comps = nucleus34_incidence_arrays(csr)
    else:
        _, sup, ptr, comps = parallel_nucleus34_incidence(csr, pool)
    return _bulk_incidence_peel(sup, ptr, comps, pool)


#: set to ``1``/``0`` to force worker sharding on/off regardless of the
#: host's core count (CI and tests; unset = decide from ``os.cpu_count``)
FORCE_SHARDING_ENV = "REPRO_FORCE_SHARDING"


def sharding_effective() -> bool:
    """Whether farming work to a pool can actually run concurrently.

    On a single-core host the shards serialise, so every pipe round-trip
    and shared-memory copy is pure loss; the right degradation is the
    in-process bulk path — identical λ, no pool.  The
    ``REPRO_FORCE_SHARDING`` environment variable overrides the detection
    both ways.
    """
    forced = os.environ.get(FORCE_SHARDING_ENV, "").strip().lower()
    if forced in ("1", "true", "yes", "on"):
        return True
    if forced in ("0", "false", "no", "off"):
        return False
    return _available_cpus() >= 2


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores; in a cgroup/affinity-
    limited container that overcounts and would engage the pool on what
    is effectively a single-core box.  The scheduler affinity mask is the
    truthful number where the platform exposes it.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _with_pool(csr: CSRGraph, workers: int, bulk_fn) -> PeelingResult:
    if workers == 1 or not sharding_effective():
        return bulk_fn(csr)
    with WorkerPool(workers) as pool:
        return bulk_fn(csr, pool=pool)


def parallel_core_peel(csr: CSRGraph, workers: int) -> PeelingResult:
    """(1,2) bulk peel with its own ``workers``-process pool (degrades to
    the in-process bulk path when sharding cannot pay)."""
    return _with_pool(csr, workers, bulk_core_peel)


def parallel_truss_peel(csr: CSRGraph, workers: int) -> PeelingResult:
    """(2,3) sharded incidence + bulk peel with its own pool."""
    return _with_pool(csr, workers, bulk_truss_peel)


def parallel_nucleus34_peel(csr: CSRGraph, workers: int) -> PeelingResult:
    """(3,4) sharded incidence + bulk peel with its own pool."""
    return _with_pool(csr, workers, bulk_nucleus34_peel)
