"""Per-round decrement kernels and shard planning for the bulk peels.

These are the functions the worker processes actually execute: pure
numpy over flat int64 arrays (attached shared memory or local, they
cannot tell), no graph objects, no mutation of anything but the caller's
output buffer.  The round-synchronous drivers in
:mod:`repro.parallel.bulk` call them on the whole frontier in-process, or
shard the frontier across workers and sum the partial counts — addition
commutes, so the merged decrement vector is identical for every worker
count.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import run_slots as _gather_slots

__all__ = [
    "core_decrement",
    "core_level_edges",
    "incidence_decrement",
    "incidence_level_edges",
    "spanning_forest_reduce",
    "weighted_cuts",
]


_EMPTY = np.empty(0, dtype=np.int64)


def core_decrement(indptr, indices, peel_round, frontier):
    """Degree losses caused by peeling ``frontier``: ``(targets, counts)``.

    A still-alive vertex (``peel_round < 0``) loses one degree for every
    frontier neighbour; frontier members themselves and vertices peeled in
    earlier rounds are already out of the graph.  One gather + one
    ``unique`` — the parallel analogue of the inner loop of the sequential
    Batagelj–Zaversnik peel.  Sparse output keeps a round's cost
    proportional to the cells it actually touches, not the graph size.
    """
    slots, _ = _gather_slots(indptr[frontier], indptr[frontier + 1])
    if len(slots) == 0:
        return _EMPTY, _EMPTY
    neighbors = indices[slots]
    alive = peel_round[neighbors] < 0
    return np.unique(neighbors[alive], return_counts=True)


def incidence_decrement(ptr, comps, peel_round, frontier, rnd):
    """Support losses caused by peeling ``frontier``: ``(targets, counts)``.

    Walks the materialised incidence of every frontier cell.  An s-clique
    is *spent* the first time one of its cells is peeled, so each one must
    decrement its surviving cells exactly once across the whole round:

    * any companion peeled in an **earlier** round (``0 <= peel_round <
      rnd``) means the clique was already spent — skip it entirely;
    * among the frontier cells of a clique, only the minimum-id one owns
      it (the others skip), mirroring the sequential rule that whichever
      same-λ cell pops first spends the clique;
    * the owner decrements exactly the companions that are still alive
      (``peel_round < 0``).
    """
    slots, counts = _gather_slots(ptr[frontier], ptr[frontier + 1])
    if len(slots) == 0:
        return _EMPTY, _EMPTY
    cell_of_slot = np.repeat(frontier, counts)
    companions = [c[slots] for c in comps]
    rounds = [peel_round[c] for c in companions]
    spent = np.zeros(len(slots), dtype=bool)
    owner = np.ones(len(slots), dtype=bool)
    for comp, comp_round in zip(companions, rounds, strict=True):
        spent |= (comp_round >= 0) & (comp_round < rnd)
        in_frontier = comp_round == rnd
        owner &= ~in_frontier | (cell_of_slot < comp)
    live = ~spent & owner
    hit = [comp[live & (comp_round < 0)]
           for comp, comp_round in zip(companions, rounds, strict=True)]
    hit = [h for h in hit if len(h)]
    if not hit:
        return _EMPTY, _EMPTY
    return np.unique(np.concatenate(hit) if len(hit) > 1 else hit[0],
                     return_counts=True)


def core_level_edges(indptr, indices, lam, frontier, k):
    """Level-``k`` connectivity pairs of a (1,2) frontier shard.

    ``frontier`` holds vertices with λ = ``k``.  An edge connects two
    sub-nuclei at level ``k`` exactly when its minimum endpoint λ is
    ``k``; the minimum-id λ = ``k`` endpoint *owns* the edge so each one
    is emitted by exactly one frontier cell (and hence exactly one
    worker, whatever the sharding).  Returns aligned ``(a, b)`` arrays
    with ``a`` the owning frontier vertex and λ(b) >= ``k``.
    """
    slots, counts = _gather_slots(indptr[frontier], indptr[frontier + 1])
    if len(slots) == 0:
        return _EMPTY, _EMPTY
    cell = np.repeat(frontier, counts)
    neighbor = indices[slots]
    nl = lam[neighbor]
    keep = (nl > k) | ((nl == k) & (neighbor > cell))
    return cell[keep], neighbor[keep]


def incidence_level_edges(ptr, comps, lam, frontier, k):
    """Level-``k`` connectivity pairs of a (2,3)/(3,4) frontier shard.

    Walks the materialised incidence of every frontier cell (all λ =
    ``k``).  An s-clique becomes *active* at level ``k`` when the
    minimum λ over its cells is ``k``; its minimum-id λ = ``k`` cell
    owns it and emits one ``(owner, companion)`` pair per companion —
    a star, so the clique's cells land in one component.  Companions
    with λ < ``k`` kill the slot (the clique activated at a lower
    level); a λ = ``k`` companion with a smaller id means another
    frontier cell owns it.
    """
    slots, counts = _gather_slots(ptr[frontier], ptr[frontier + 1])
    if len(slots) == 0:
        return _EMPTY, _EMPTY
    cell_of_slot = np.repeat(frontier, counts)
    companions = [c[slots] for c in comps]
    keep = np.ones(len(slots), dtype=bool)
    for comp in companions:
        cl = lam[comp]
        keep &= cl >= k
        keep &= (cl != k) | (comp > cell_of_slot)
    if not keep.any():
        return _EMPTY, _EMPTY
    owner = cell_of_slot[keep]
    a = np.concatenate([owner] * len(companions))
    b = np.concatenate([comp[keep] for comp in companions])
    return a, b


def spanning_forest_reduce(a, b):
    """Reduce union pairs to the spanning edges of a local union-find.

    The worker-side compression step of the parallel hierarchy
    construction: running a union-find over the raw ``(a, b)`` pairs,
    only the pairs that actually merged two components are kept — a
    spanning forest of the shard's connectivity, usually a tiny fraction
    of the raw pair count.  The kept pairs are a subset of the input in
    input order (after a first-occurrence dedup), so the parent's merge
    over worker outputs is deterministic and every kept pair still has
    its original (owner, companion) orientation.
    """
    if len(a) == 0:
        return _EMPTY, _EMPTY
    nodes, inverse = np.unique(np.concatenate((a, b)), return_inverse=True)
    la = inverse[:len(a)]
    lb = inverse[len(a):]
    _, first = np.unique(la * len(nodes) + lb, return_index=True)
    first.sort()
    parent = list(range(len(nodes)))
    keep: list[int] = []
    for idx in first.tolist():
        x = parent[la[idx]]
        while parent[x] != x:
            x = parent[x]
        y = parent[lb[idx]]
        while parent[y] != y:
            y = parent[y]
        parent[la[idx]] = x
        parent[lb[idx]] = y
        if x != y:
            parent[x] = y
            keep.append(idx)
    if len(keep) == len(a):
        return a, b
    keep_arr = np.asarray(keep, dtype=np.int64)
    return a[keep_arr], b[keep_arr]


def weighted_cuts(weights, parts: int) -> list[int]:
    """Boundaries splitting ``weights`` into ``parts`` ~equal-sum ranges.

    Returns ``parts + 1`` ascending indices (first 0, last ``len``); empty
    ranges are fine — a worker handed one just zeroes its buffer.
    """
    count = len(weights)
    if count == 0 or parts <= 1:
        return [0] + [count] * max(parts, 1)
    cum = np.concatenate(([0], np.cumsum(weights)))
    if cum[-1] == 0:  # no weight signal: split by count
        bounds = np.linspace(0, count, parts + 1).astype(np.int64).tolist()
    else:
        targets = np.linspace(0, int(cum[-1]), parts + 1)[1:-1]
        bounds = [0, *np.searchsorted(cum, targets).tolist(), count]
    for i in range(1, len(bounds)):
        if bounds[i] < bounds[i - 1]:
            bounds[i] = bounds[i - 1]
    return bounds
