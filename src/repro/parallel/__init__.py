"""Shared-memory parallel execution layer over the flat CSR arrays.

The ``csr-parallel`` backend (:mod:`repro.backends`) is assembled from
four pieces, each usable on its own:

* :mod:`repro.parallel.shm` — zero-copy export/attach of the CSR arrays
  and the rooted-forest ints via ``multiprocessing.shared_memory``;
* :mod:`repro.parallel.pool` — persistent worker processes executing
  range tasks over attached arrays (plus ``REPRO_WORKERS`` resolution);
* :mod:`repro.parallel.incidence` — triangle / K₄ listing and incidence
  materialisation sharded across workers;
* :mod:`repro.parallel.bulk` — round-synchronous bulk peels for (1,2),
  (2,3) and (3,4), sequential-identical λ at any worker count;
* :mod:`repro.parallel.construct` — level-wise parallel hierarchy
  construction over the settled λ values: workers union-find their
  incidence shards, the parent merges the per-worker forests into the
  shared rooted forest (condensed tree node-for-node identical to the
  sequential FND engine).

Requires numpy (the CSR engine's optional fast-path dependency becomes a
hard one here); importing this package without it raises ImportError.
"""

from repro.parallel.bulk import (
    bulk_core_peel,
    bulk_nucleus34_peel,
    bulk_truss_peel,
    merge_sparse_decrements,
    parallel_core_peel,
    parallel_nucleus34_peel,
    parallel_truss_peel,
)
from repro.parallel.construct import (
    core_hierarchy_from_lambda,
    hierarchy_from_lambda,
    incidence_hierarchy_from_lambda,
)
from repro.parallel.fnd import parallel_fnd_decomposition
from repro.parallel.incidence import (
    parallel_nucleus34_incidence,
    parallel_triangle_edge_ids,
    parallel_truss_incidence,
)
from repro.parallel.kernels import (
    core_decrement,
    core_level_edges,
    incidence_decrement,
    incidence_level_edges,
    spanning_forest_reduce,
    weighted_cuts,
)
from repro.parallel.pool import WORKERS_ENV, WorkerPool, resolve_workers
from repro.parallel.shm import (
    SharedArrayBundle,
    SharedRootedForest,
    share_forest,
)

__all__ = [
    "SharedArrayBundle",
    "SharedRootedForest",
    "WORKERS_ENV",
    "WorkerPool",
    "bulk_core_peel",
    "bulk_nucleus34_peel",
    "bulk_truss_peel",
    "core_decrement",
    "core_hierarchy_from_lambda",
    "core_level_edges",
    "hierarchy_from_lambda",
    "incidence_decrement",
    "incidence_hierarchy_from_lambda",
    "incidence_level_edges",
    "merge_sparse_decrements",
    "parallel_core_peel",
    "parallel_fnd_decomposition",
    "parallel_nucleus34_incidence",
    "parallel_nucleus34_peel",
    "parallel_triangle_edge_ids",
    "parallel_truss_incidence",
    "parallel_truss_peel",
    "resolve_workers",
    "share_forest",
    "spanning_forest_reduce",
    "weighted_cuts",
]
