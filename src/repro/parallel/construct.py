"""Level-wise parallel hierarchy construction over settled λ values.

The sequential FND (:mod:`repro.core.csr_fnd`) fuses sub-nucleus
detection into the peel: every merge depends on the λ values settled
before it, which is why PR 3 left the construction phase sequential.
This module removes that dependence chain by running *after* the bulk
peel, when every λ is already known — sub-nucleus detection then
decomposes into independent **level-wise connectivity** problems:

* an s-clique becomes *active* at level ``k`` when the minimum λ over
  its cells is ``k`` — it proves its cells mutually connected in every
  k'-(r,s) nucleus with ``k' <= k``;
* the k-sub-nuclei are the connected components of the λ >= ``k`` cells
  under the cliques active at level ``k`` (components formed at higher
  levels collapse to single super-nodes via their hierarchy tops);
* processing levels in decreasing λ order and attaching each touched
  higher component under the level's node reproduces, after
  condensation, exactly the nucleus tree the sequential extended peel +
  BuildHierarchy produces — node λ multiset, cell→nucleus map, and
  parent structure (the parity suite asserts it node-for-node).

Each level's frontier is sharded across the
:class:`~repro.parallel.pool.WorkerPool` by incidence weight; workers
scan their ranges zero-copy (the incidence, λ and frontier arrays live
in a :class:`~repro.parallel.shm.SharedArrayBundle`), run a **local
union-find** over the active-clique pairs they own, and send back only
its spanning forest.  The parent merges the per-worker forests into the
:class:`~repro.parallel.shm.SharedRootedForest` in worker order — a
deterministic link sequence, so repeated runs at the same worker count
build byte-identical skeletons, and every worker count condenses to the
same tree (connectivity does not depend on how the frontier was cut).
Levels too small to amortise a pipe round-trip run the same kernels in
the parent (:data:`MIN_LEVEL_SLOTS`, mirroring the bulk peels).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.disjoint_set import ArrayRootedForest
from repro.core.fnd import FndInstrumentation
from repro.core.hierarchy import Hierarchy
from repro.graph.csr import CSRGraph, csr_arrays_int64
from repro.parallel.kernels import (
    core_level_edges,
    incidence_level_edges,
    spanning_forest_reduce,
    weighted_cuts,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedArrayBundle, share_forest

__all__ = [
    "MIN_LEVEL_SLOTS",
    "core_hierarchy_from_lambda",
    "hierarchy_from_lambda",
    "incidence_hierarchy_from_lambda",
]

#: levels touching fewer incidence slots than this are resolved by the
#: parent itself — like the bulk peels' ``MIN_SHARD_SLOTS``, the pipe
#: round-trip costs more than the scan for the long tail of tiny levels.
MIN_LEVEL_SLOTS = 32768


def _merge_level(edge_parts, k: int, comp, forest, node_lambda: list[int],
                 ) -> int:
    """Merge per-worker spanning forests into the global skeleton.

    Each ``(a, b)`` pair connects a frontier cell ``a`` (λ = ``k``, the
    owning cell of an active s-clique) to a companion ``b`` with
    λ(b) >= ``k``.  The discipline mirrors sequential FND: same-level
    tops merge with Link-r, higher-λ tops are attached under the level's
    node (the permanent downward hierarchy edge).  Processing parts in
    worker order keeps the link sequence deterministic.  Returns the
    number of downward (cross-level) connections made.
    """
    downward = 0
    for a, b in edge_parts:
        for u, v in zip(a.tolist(), b.tolist(), strict=True):
            cu = comp[u]
            cv = comp[v]
            if cu < 0:
                if cv < 0:
                    # two fresh frontier cells: one shared level node
                    node = forest.make_node()
                    node_lambda.append(k)
                    comp[u] = node
                    comp[v] = node
                    continue
                tv = forest.find(cv)
                if node_lambda[tv] == k:
                    comp[u] = tv  # join the level component v reached
                    continue
                # v's component formed at a higher λ: it nests under the
                # level node u founds
                node = forest.make_node()
                node_lambda.append(k)
                comp[u] = node
                forest.attach_node(tv, node)
                downward += 1
                continue
            tu = forest.find(cu)  # a level-k top: u was assigned this level
            if cv < 0:
                comp[v] = tu  # v is a fresh frontier cell of this level
                continue
            tv = forest.find(cv)
            if tu == tv:
                continue
            if node_lambda[tv] == k:
                forest.link(tu, tv)
            else:
                # a component formed at a higher λ joins this level's node
                forest.attach_node(tv, tu)
                downward += 1
    return downward


def hierarchy_from_lambda(r: int, s: int, lam, edge_source, forest,
                          instrumentation: FndInstrumentation | None = None,
                          ) -> Hierarchy:
    """Build the FND hierarchy from settled λ values, level by level.

    ``edge_source(frontier, k)`` yields the level's connectivity pairs as
    a list of reduced ``(a, b)`` array pairs in deterministic shard
    order; ``forest`` is the skeleton store (an
    :class:`~repro.core.disjoint_set.ArrayRootedForest` or a
    :class:`~repro.parallel.shm.SharedRootedForest` — both speak
    ``make_node(s)`` / ``find`` / ``link`` / ``attach_node`` /
    ``adopt_roots``).  Frontier cells untouched by any active clique
    become singleton sub-nuclei in one batch call.
    """
    lam = np.ascontiguousarray(lam, dtype=np.int64)
    size = len(lam)
    comp = np.full(size, -1, dtype=np.int64)
    node_lambda: list[int] = []
    downward = 0
    build_start = time.perf_counter()
    order = np.argsort(-lam, kind="stable")  # λ descending, cell id ascending
    lam_sorted = lam[order]
    start = 0
    while start < size:
        k = int(lam_sorted[start])
        if k == 0:
            break  # λ = 0 cells belong to the root
        end = int(np.searchsorted(-lam_sorted, -k, side="right"))
        frontier = order[start:end]
        downward += _merge_level(edge_source(frontier, k), k, comp, forest,
                                 node_lambda)
        fresh = frontier[comp[frontier] < 0]
        if len(fresh):
            first = forest.make_nodes(len(fresh))
            comp[fresh] = first + np.arange(len(fresh), dtype=np.int64)
            node_lambda.extend([k] * len(fresh))
        start = end
    build_seconds = time.perf_counter() - build_start

    if instrumentation is not None:
        instrumentation.num_subnuclei = len(node_lambda)
        instrumentation.num_downward_connections = downward
        instrumentation.build_seconds = build_seconds

    root = forest.make_node()
    node_lambda.append(0)
    forest.adopt_roots(root)
    comp[comp < 0] = root
    if isinstance(forest, ArrayRootedForest):
        parents = forest.parents_or_none()
    else:
        parents = forest.to_array_forest().parents_or_none()
    return Hierarchy(r, s, lam.tolist(), node_lambda, parents, comp.tolist(),
                     root, algorithm="fnd")


def _run_construction(r: int, s: int, lam, static: dict, weights,
                      task_prefix: tuple, local_edges,
                      pool: WorkerPool | None,
                      instrumentation: FndInstrumentation | None,
                      static_bundle: SharedArrayBundle | None) -> Hierarchy:
    """Shared driver: local-only (``pool=None``) or worker-sharded.

    ``static_bundle`` may hand in the static arrays already shared (the
    FND pipeline shares the adjacency/incidence once across its peel and
    construction phases); otherwise ``static`` is exported — and freed —
    here.  Only the small per-construction state (λ plus the frontier
    buffer) is ever exported twice.
    """
    lam = np.ascontiguousarray(lam, dtype=np.int64)
    if pool is None:
        def edge_source(frontier, k):
            return [spanning_forest_reduce(*local_edges(lam, frontier, k))]

        return hierarchy_from_lambda(r, s, lam, edge_source,
                                     ArrayRootedForest(), instrumentation)

    forest = share_forest(ArrayRootedForest(), capacity=len(lam) + 1)
    owned = static_bundle is None
    try:
        if owned:
            static_bundle = SharedArrayBundle.create(static)
        state = {"lam": lam,
                 "level_frontier": np.zeros(len(lam), dtype=np.int64)}
        with SharedArrayBundle.create(state) as bundle:
            pool.bind([static_bundle.spec, bundle.spec])
            try:
                frontier_buf = bundle["level_frontier"]

                def edge_source(frontier, k):
                    level_weights = weights[frontier]
                    if int(level_weights.sum()) < MIN_LEVEL_SLOTS:
                        return [spanning_forest_reduce(
                            *local_edges(lam, frontier, k))]
                    frontier_buf[:len(frontier)] = frontier
                    cuts = weighted_cuts(level_weights, pool.workers)
                    return pool.scatter(
                        [task_prefix + (k, lo, hi)
                         for lo, hi in zip(cuts[:-1], cuts[1:], strict=True)])

                return hierarchy_from_lambda(r, s, lam, edge_source, forest,
                                             instrumentation)
            finally:
                pool.unbind()
    finally:
        if owned and static_bundle is not None:
            static_bundle.unlink()
        forest.bundle.unlink()


def core_hierarchy_from_lambda(
        csr: CSRGraph, lam, pool: WorkerPool | None = None,
        instrumentation: FndInstrumentation | None = None,
        static_bundle: SharedArrayBundle | None = None) -> Hierarchy:
    """(1,2) hierarchy from settled core numbers, adjacency-driven.

    ``static_bundle`` may hand in an already-shared ``indptr`` /
    ``indices`` bundle; its views then also drive the parent-local
    kernels, so the CSR arrays are converted and exported exactly once
    per pipeline.
    """
    if static_bundle is not None:
        indptr, indices = static_bundle["indptr"], static_bundle["indices"]
    else:
        arrays = csr_arrays_int64(csr)
        indptr, indices = arrays["indptr"], arrays["indices"]

    def local_edges(lam_arr, frontier, k):
        return core_level_edges(indptr, indices, lam_arr, frontier, k)

    return _run_construction(
        1, 2, lam, {"indptr": indptr, "indices": indices}, np.diff(indptr),
        ("core-level",), local_edges, pool, instrumentation, static_bundle)


def incidence_hierarchy_from_lambda(
        r: int, s: int, lam, ptr, comps,
        pool: WorkerPool | None = None,
        instrumentation: FndInstrumentation | None = None,
        static_bundle: SharedArrayBundle | None = None) -> Hierarchy:
    """(2,3)/(3,4) hierarchy from settled λ over a materialised incidence.

    ``static_bundle`` may hand in an already-shared ``ptr``/``c1..cN``
    bundle covering the same incidence (see
    :func:`core_hierarchy_from_lambda`).
    """
    comps = tuple(np.ascontiguousarray(c, dtype=np.int64) for c in comps)
    ptr = np.ascontiguousarray(ptr, dtype=np.int64)

    def local_edges(lam_arr, frontier, k):
        return incidence_level_edges(ptr, comps, lam_arr, frontier, k)

    static = {"ptr": ptr}
    for i, comp in enumerate(comps):
        static[f"c{i + 1}"] = comp
    return _run_construction(
        r, s, lam, static, np.diff(ptr), ("inc-level", len(comps)),
        local_edges, pool, instrumentation, static_bundle)
