"""repro — fast hierarchy construction for dense subgraphs.

A faithful, pure-Python implementation of Sariyüce & Pinar, *Fast Hierarchy
Construction for Dense Subgraphs* (PVLDB 10(3), 2016): k-core, k-truss and
generic k-(r,s) nucleus decompositions that return not just λ values but the
full tree of **connected** nuclei, via four interchangeable algorithms
(naive per-level traversal, disjoint-set-forest traversal, traversal-free
FND, and the LCPS adaptation for k-core).

Quickstart::

    import repro

    graph = repro.generators.powerlaw_cluster(500, 8, 0.5, seed=7)
    result = repro.nucleus_decomposition(graph, r=2, s=3, algorithm="fnd")
    tree = result.hierarchy.condense()
    print(tree.format(max_nodes=20))

The package is layered (see ``docs/ARCHITECTURE.md`` for the full map):

* **graph substrate** — :class:`Graph` (object adjacency) and
  :class:`CSRGraph` (flat arrays), loaders, generators, datasets;
* **decomposition engines** — :func:`nucleus_decomposition` and the
  :mod:`repro.backends` dispatch layer (``object`` / ``csr`` /
  ``csr-parallel``, identical λ and hierarchies, only speed differs);
* **k-core / k-truss layers** — :func:`core_numbers`,
  :func:`truss_numbers`, the survey-section variants (weighted,
  directed, uncertain, temporal) and :func:`build_tcp_index`;
* **query indexes** — :class:`HierarchyIndex` (object, interactive) and
  :class:`FlatHierarchyIndex` (flat arrays, batch kernels, ``.npz``
  persistence) built by :func:`build_query_index` and reloaded by
  :func:`load_query_index`;
* **serving tier** — :mod:`repro.serve`: :class:`IndexRegistry` over
  memory-mapped indexes plus the async ``repro-nucleus serve`` front
  end (NDJSON + HTTP, micro-batching; ``docs/SERVING.md``);
* **analysis & export** — :func:`densest_nuclei`,
  :func:`hierarchy_stats`, JSON/DOT/``.npz`` round-trips.
"""

from repro.analysis import densest_nuclei, edge_density, hierarchy_stats, table3_row
from repro.analysis.skeleton import skeleton_report
from repro.core import (
    ALGORITHMS,
    Decomposition,
    Hierarchy,
    NucleusTree,
    build_view,
    nucleus_decomposition,
    peel,
)
from repro.core.partition import decompose_by_components
from repro.export import (
    hierarchy_from_json,
    hierarchy_to_json,
    load_hierarchy,
    load_hierarchy_npz,
    save_hierarchy,
    save_hierarchy_npz,
    skeleton_to_dot,
    tree_to_dot,
)
from repro.flatindex import FlatHierarchyIndex
from repro.external import semi_external_core_decomposition
from repro.api import VARIANTS, decompose
from repro.kcore.temporal import (
    temporal_core_numbers,
    temporal_core_profile,
    temporal_k_core,
)
from repro.kcore.uncertain import (
    eta_degree,
    uncertain_core_numbers,
    uncertain_k_core,
)
from repro.kcore.variants import (
    directed_core_numbers,
    weighted_core_numbers,
    weighted_k_core,
)
from repro.queries import HierarchyIndex
from repro.streaming import IncrementalCoreMaintainer
from repro.errors import (
    GraphFormatError,
    InvalidGraphError,
    InvalidParameterError,
    ReproError,
    UnknownAlgorithmError,
    UnknownDatasetError,
)
from repro.graph import (
    CSRGraph,
    DirectedGraph,
    Graph,
    TemporalGraph,
    connected_components,
    load_edge_list,
    load_graph,
    save_edge_list,
)
from repro.graph import generators
from repro import backends
from repro.backends import BACKENDS, build_query_index, load_query_index
from repro.serve import IndexRegistry, ServeClient
from repro.graph.datasets import dataset_names, load_dataset
from repro.kcore import (
    core_hierarchy,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
    k_core_subgraph,
)
from repro.ktruss import (
    build_tcp_index,
    k_dense,
    k_truss,
    truss_communities,
    truss_hierarchy,
    truss_numbers,
)

__version__ = "0.8.0"

__all__ = [
    "__version__",
    # unified front door (plain + every scenario variant)
    "decompose",
    "VARIANTS",
    # graph substrate
    "Graph",
    "CSRGraph",
    "DirectedGraph",
    "TemporalGraph",
    "backends",
    "BACKENDS",
    "generators",
    "connected_components",
    "load_edge_list",
    "load_graph",
    "save_edge_list",
    "dataset_names",
    "load_dataset",
    # core decomposition
    "ALGORITHMS",
    "nucleus_decomposition",
    "Decomposition",
    "Hierarchy",
    "NucleusTree",
    "build_view",
    "peel",
    # k-core layer
    "core_numbers",
    "core_hierarchy",
    "degeneracy",
    "degeneracy_ordering",
    "k_core",
    "k_core_subgraph",
    # k-truss layer
    "truss_numbers",
    "truss_hierarchy",
    "truss_communities",
    "k_dense",
    "k_truss",
    "build_tcp_index",
    # analysis
    "densest_nuclei",
    "edge_density",
    "hierarchy_stats",
    "table3_row",
    "skeleton_report",
    # dynamic graphs, partitioned decomposition, export
    "IncrementalCoreMaintainer",
    "decompose_by_components",
    "semi_external_core_decomposition",
    "HierarchyIndex",
    "FlatHierarchyIndex",
    "build_query_index",
    "load_query_index",
    # serving tier (full surface in repro.serve)
    "IndexRegistry",
    "ServeClient",
    # survey-section core variants
    "weighted_core_numbers",
    "weighted_k_core",
    "directed_core_numbers",
    "uncertain_core_numbers",
    "uncertain_k_core",
    "eta_degree",
    "temporal_core_numbers",
    "temporal_k_core",
    "temporal_core_profile",
    "hierarchy_to_json",
    "hierarchy_from_json",
    "save_hierarchy",
    "load_hierarchy",
    "save_hierarchy_npz",
    "load_hierarchy_npz",
    "tree_to_dot",
    "skeleton_to_dot",
    # errors
    "ReproError",
    "GraphFormatError",
    "InvalidGraphError",
    "InvalidParameterError",
    "UnknownAlgorithmError",
    "UnknownDatasetError",
]
