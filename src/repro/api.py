"""The unified front door: ``repro.decompose(graph, r, s, variant=...)``.

One call dispatches every decomposition this library implements — the
paper's plain (r, s) nucleus decompositions *and* the §3.1 scenario
variants — through :mod:`repro.backends`, with the standard
``backend=``/``workers=`` selection on all of them:

==================  =============================  =======================
variant             graph                          returns
==================  =============================  =======================
``plain``           ``Graph``/``CSRGraph``/disk    :class:`Decomposition`
``weighted``        ``Graph``/``CSRGraph``/disk    ``list[float]`` λʷ
``directed``        ``DirectedGraph``              ``(in λ, out λ)`` lists
``uncertain``       ``Graph``/``CSRGraph``/disk    ``list[int]`` η-core λ
``temporal``        ``TemporalGraph``              ``list[int]`` λ at ``h``
``temporal-profile``  ``TemporalGraph``            ``dict[h, list[int]]``
==================  =============================  =======================

Variant parameters travel as keywords: ``weights=`` (weighted),
``probabilities=``/``eta=`` (uncertain), ``h=`` (temporal).  Unknown
variants or parameters raise
:class:`~repro.errors.InvalidParameterError`.
"""

from __future__ import annotations

from typing import Any

from repro import backends
from repro.errors import InvalidParameterError
from repro.graph.directed import DirectedGraph
from repro.graph.temporal import TemporalGraph

__all__ = ["VARIANTS", "decompose"]

VARIANTS = ("plain", "weighted", "directed", "uncertain", "temporal",
            "temporal-profile")

_VARIANT_PARAMS: dict[str, tuple[str, ...]] = {
    "plain": (),
    "weighted": ("weights",),
    "directed": (),
    "uncertain": ("probabilities", "eta"),
    "temporal": ("h",),
    "temporal-profile": (),
}
_REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "weighted": ("weights",),
    "uncertain": ("probabilities",),
}


def decompose(graph: Any, r: int = 1, s: int = 2, *,
              variant: str = "plain",
              algorithm: str = "fnd",
              backend: str | None = None,
              workers: int | None = None,
              **variant_params: Any) -> Any:
    """Run any (r, s) nucleus decomposition or scenario variant.

    ``variant="plain"`` (the default) is exactly
    :func:`repro.backends.decompose` — full hierarchy construction with
    the chosen ``algorithm``.  Every other variant is a (1, 2) scenario
    peel routed through its :mod:`repro.backends` dispatch function; see
    the module table for the per-variant graph type, parameters and
    return shape.  ``backend=None`` follows the input representation,
    and ``workers=`` applies to the ``csr-parallel`` backend exactly as
    on every other entry point.
    """
    if variant not in VARIANTS:
        raise InvalidParameterError(
            f"unknown variant {variant!r}; choose from {VARIANTS}")
    allowed = _VARIANT_PARAMS[variant]
    unknown = sorted(set(variant_params) - set(allowed))
    if unknown:
        raise InvalidParameterError(
            f"unknown parameter(s) for variant {variant!r}: "
            f"{', '.join(unknown)}")
    for name in _REQUIRED_PARAMS.get(variant, ()):
        if name not in variant_params:
            raise InvalidParameterError(
                f"variant {variant!r} requires {name}=")
    if variant == "plain":
        if isinstance(graph, (DirectedGraph, TemporalGraph)):
            kind = type(graph).__name__
            hint = "directed" if isinstance(graph, DirectedGraph) \
                else "temporal"
            raise InvalidParameterError(
                f"variant 'plain' needs an undirected static graph, got "
                f"{kind}; use variant={hint!r}")
        return backends.decompose(graph, r, s, algorithm=algorithm,
                                  backend=backend, workers=workers)
    if algorithm != "fnd":
        raise InvalidParameterError(
            "algorithm= selects a hierarchy algorithm and applies to "
            "variant='plain' only")
    if (r, s) != (1, 2):
        raise InvalidParameterError(
            f"variant {variant!r} is defined for (r, s) = (1, 2), "
            f"got ({r}, {s})")
    if variant == "weighted":
        return backends.weighted_core_peel(
            graph, variant_params["weights"],
            backend=backend, workers=workers).lam
    if variant == "directed":
        in_result, out_result = backends.directed_core_peel(
            graph, backend=backend, workers=workers)
        return in_result.lam, out_result.lam
    if variant == "uncertain":
        return backends.uncertain_core_peel(
            graph, variant_params["probabilities"],
            eta=variant_params.get("eta", 0.5),
            backend=backend, workers=workers).lam
    if variant == "temporal":
        return backends.temporal_core_peel(
            graph, h=variant_params.get("h", 1),
            backend=backend, workers=workers).lam
    sweep = backends.temporal_core_sweep(graph, backend=backend,
                                         workers=workers)
    return {h: result.lam for h, result in sweep.items()}
