"""The small illustrative graphs of the paper's Figures 1-5 (reconstructed).

The paper prints these figures as drawings without full edge lists, so each
builder here reconstructs a graph exhibiting the *phenomenon* the figure
illustrates; the accompanying tests assert exactly that phenomenon:

* Figure 1 — a graph whose 2-(2,3) and 2-(2,4) nuclei differ;
* Figure 2 — two distinct connected 3-cores inside one 2-core, invisible to
  λ values alone;
* Figure 3 — k-dense vs k-truss vs k-truss-community disagreement;
* Figure 4 — two sub-cores of equal λ connected only through a denser
  region (the A/E merge case of Alg. 6);
* Figure 5 — a three-level hierarchy-skeleton with several sub-nuclei per
  level.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph

__all__ = [
    "figure1_graph",
    "figure2_graph",
    "figure3_graph",
    "figure4_graph",
    "figure5_graph",
    "bowtie",
    "two_triangles_sharing_edge",
]


def bowtie() -> Graph:
    """Two triangles sharing exactly one vertex (vertex 0)."""
    return Graph(5, [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)],
                 name="bowtie")


def two_triangles_sharing_edge() -> Graph:
    """Two triangles glued along an edge (a K4 minus one edge)."""
    return Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)], name="diamond")


def figure1_graph() -> Graph:
    """Two disjoint K4s joined by a chain of edge-sharing triangles.

    The triangle chain (2,3,4) and (3,4,5) keeps every edge in a triangle
    and makes the whole graph ONE 1-(2,3) nucleus, but no four-clique spans
    the connector, so the 1-(2,4) nuclei split into the two K4s — the
    figure's point that the choice of s changes the nuclei on the same
    graph.  At k = 2 the (2,3) nuclei also split (connector edges have
    λ₃ = 1), mirroring the 2-(2,3) vs 2-(2,4) contrast the caption draws.
    """
    edges = [
        # K4 on {0,1,2,3}
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        # K4 on {4,5,6,7}
        (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
        # triangle chain: (2,3,4) then (3,4,5)
        (2, 4), (3, 4), (3, 5),
    ]
    return Graph(8, edges, name="figure1")


def figure2_graph() -> Graph:
    """Two 3-cores (K4s) threaded on a cycle of degree-2 vertices.

    All K4 vertices have λ₂ = 3 and the connectors have λ₂ = 2, so peeling
    alone cannot tell there are *two* 3-cores — the paper's Figure 2 point.
    A pendant vertex gives the 1-core level.
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),   # K4 A
        (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),   # K4 B
        (3, 8), (8, 4),                                   # bridge path 1
        (7, 9), (9, 0),                                   # bridge path 2
        (0, 10),                                          # pendant (λ=1)
    ]
    return Graph(11, edges, name="figure2")


def figure3_graph() -> Graph:
    """Bowtie plus a disjoint triangle plus a triangle-free edge.

    With the truss threshold "every edge in >= 1 triangle" (k = 3):
    * k-dense keeps bowtie + triangle as ONE disconnected subgraph;
    * k-truss splits them into two vertex-connected components;
    * k-truss communities split the bowtie too (its halves share only a
      vertex, not a triangle), giving three communities.
    """
    edges = [
        (0, 1), (0, 2), (1, 2),   # bowtie left
        (0, 3), (0, 4), (3, 4),   # bowtie right
        (5, 6), (5, 7), (6, 7),   # disjoint triangle
        (8, 9),                   # triangle-free edge
    ]
    return Graph(10, edges, name="figure3")


def figure4_graph() -> Graph:
    """Equal-λ sub-cores connected only through a denser region.

    Vertices 4 and 5 both have λ₂ = 2 but are not adjacent: each hangs off
    the K4 {0,1,2,3} (λ₂ = 3).  They are distinct sub-cores (T_{1,2}) that
    belong to the same 2-core, which DF-traversal must discover via Find-r
    on the K4's sub-nucleus — the A/E situation in the paper's Figure 4.
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),  # K4
        (4, 0), (4, 1),                                  # sub-core A
        (5, 2), (5, 3),                                  # sub-core E
    ]
    return Graph(6, edges, name="figure4")


def figure5_graph() -> Graph:
    """A three-level nested structure: K7 ⊃-ish K6s hanging off a 4-ish mesh.

    Two K6s (λ₂ = 5) and one K7 (λ₂ = 6) are attached to a shared sparse
    frame whose vertices have λ₂ = 4; produces a skeleton with multiple
    sub-nuclei at λ 4, 5 and 6 like the paper's Figure 5.
    """
    edges: list[tuple[int, int]] = []

    def add_clique(vertices: list[int]) -> None:
        edges.extend((vertices[i], vertices[j])
                     for i in range(len(vertices))
                     for j in range(i + 1, len(vertices)))

    add_clique(list(range(0, 7)))        # K7: λ = 6
    add_clique(list(range(7, 13)))       # K6: λ = 5
    add_clique(list(range(13, 19)))      # K6: λ = 5
    # 4-regular frame joining the cliques: C6 plus distance-2 chords
    # (every vertex degree exactly 4 ⇒ λ = 4)
    frame = list(range(19, 25))
    for i in range(6):
        for j in (1, 2):
            edges.append((frame[i], frame[(i + j) % 6]))
    # attach each clique to the frame with two low-support edges
    edges.extend([(0, frame[0]), (7, frame[2]), (13, frame[4])])
    return Graph(25, edges, name="figure5")
