"""Core algorithms: peeling, hierarchy construction, the paper's Alg. 1-9."""

from repro.core.bucket import MaxBucketQueue, MinBucketQueue
from repro.core.decomposition import ALGORITHMS, Decomposition, nucleus_decomposition
from repro.core.dft import dft_hierarchy
from repro.core.disjoint_set import DisjointSetForest, RootedForest
from repro.core.fnd import FndInstrumentation, fnd_decomposition
from repro.core.hierarchy import Hierarchy, NucleusNode, NucleusTree
from repro.core.hypo import hypo_traversal
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import PeelingResult, peel
from repro.core.traversal import naive_hierarchy
from repro.core.views import (
    CellView,
    EdgeView,
    GenericCliqueView,
    TriangleView,
    VertexView,
    build_view,
)

__all__ = [
    "ALGORITHMS",
    "Decomposition",
    "nucleus_decomposition",
    "Hierarchy",
    "NucleusNode",
    "NucleusTree",
    "PeelingResult",
    "peel",
    "naive_hierarchy",
    "dft_hierarchy",
    "fnd_decomposition",
    "FndInstrumentation",
    "lcps_hierarchy",
    "hypo_traversal",
    "CellView",
    "VertexView",
    "EdgeView",
    "TriangleView",
    "GenericCliqueView",
    "build_view",
    "DisjointSetForest",
    "RootedForest",
    "MinBucketQueue",
    "MaxBucketQueue",
]
