"""LCPS: Level Component Priority Search, adapted for k-core hierarchies.

Matula & Beck (1983) sketched a traversal that outputs vertices with
interspersed brackets such that the vertices enclosed at depth k+1 form a
k-core, but noted that "an implementation may not always be possible owing
to the difficulty of maintaining an appropriate priority queue".  The paper
resolves this with a bucket structure; this module follows that adaptation:

* after peeling, traverse with a **max-λ bucket priority queue** seeded from
  an arbitrary vertex per connected component;
* keep a stack of open hierarchy nodes (one per level, the "brackets").
  Popping a vertex of larger λ than the current level opens a chain of new
  nodes down to its level; a smaller λ closes brackets back up to its level.

Priority order guarantees that once a k-core component is entered it is
exhausted before any vertex of λ < k is popped, so closed brackets are
final — each tree node is exactly one connected k-core.  Bracket nodes that
close without ever receiving a vertex (the chain below a component whose
minimum λ exceeds 1, or a level skipped between two denser cores) describe
the same vertex set as their single child and are spliced out before the
skeleton is returned, so the condensed tree matches what DFT/FND build
node-for-node.  This is (1,2) only: for r >= 2 there is no analogous cheap
frontier (the paper uses DFT/FND there).

The traversal runs natively on both graph engines: an object
:class:`~repro.graph.adjacency.Graph` is walked through its adjacency
lists, a :class:`~repro.graph.csr.CSRGraph` directly over its flat
``indptr`` / ``indices`` arrays.
"""

from __future__ import annotations

from repro.core.bucket import MaxBucketQueue
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

__all__ = ["lcps_hierarchy"]


def lcps_hierarchy(graph: Graph | CSRGraph,
                   peeling: PeelingResult) -> Hierarchy:
    """Build the k-core hierarchy with one priority-guided traversal."""
    lam = peeling.lam
    n = graph.n
    if len(lam) != n:
        raise InvalidParameterError(
            "LCPS needs a (1,2) peeling of the same graph")

    if isinstance(graph, CSRGraph):
        indptr, indices, _ = graph.hot_arrays()
        neighbors = None
    else:
        indptr = indices = None
        neighbors = graph.neighbors

    node_lambda: list[int] = []
    parent: list[int] = []  # -1 = top of its component (root, eventually)
    comp = [-1] * n
    discovered = bytearray(n)
    queue = MaxBucketQueue(peeling.max_lambda)  # drained fully per component

    for start in range(n):
        if discovered[start] or lam[start] == 0:
            continue
        discovered[start] = 1
        queue.push(start, lam[start])
        # stack of (level, node_id)
        stack: list[tuple[int, int]] = []
        while True:
            popped = queue.pop()
            if popped is None:
                break
            v, level = popped
            if not stack:
                node_lambda.append(1)
                parent.append(-1)
                stack.append((1, len(parent) - 1))
            else:
                while stack[-1][0] > level:
                    stack.pop()  # close brackets: this k-core is complete
            while stack[-1][0] < level:
                node_lambda.append(stack[-1][0] + 1)
                parent.append(stack[-1][1])
                stack.append((stack[-1][0] + 1, len(parent) - 1))
            comp[v] = stack[-1][1]
            if indptr is not None:
                for p in range(indptr[v], indptr[v + 1]):
                    w = indices[p]
                    if not discovered[w]:
                        discovered[w] = 1
                        queue.push(w, lam[w])
            else:
                for w in neighbors(v):
                    if not discovered[w]:
                        discovered[w] = 1
                        queue.push(w, lam[w])

    return _splice_empty_chains(lam, node_lambda, parent, comp)


def _splice_empty_chains(lam: list[int], node_lambda: list[int],
                         parent: list[int], comp: list[int]) -> Hierarchy:
    """Drop bracket nodes no vertex landed in, then attach the root.

    A member-less node with a single child encloses exactly its child's
    vertex set at a smaller k — an artifact of opening brackets level by
    level that DFT/FND never materialise.  Splicing redirects each kept
    node to its nearest kept ancestor; ids are compacted.
    """
    count = len(node_lambda)
    has_member = bytearray(count)
    for node in comp:
        if node >= 0:
            has_member[node] = 1
    child_count = [0] * count
    for par in parent:
        if par >= 0:
            child_count[par] += 1
    keep = [bool(has_member[i]) or child_count[i] >= 2 for i in range(count)]

    remap = [-1] * count
    kept: list[int] = []
    for i in range(count):
        if keep[i]:
            remap[i] = len(kept)
            kept.append(i)

    new_lambda = [node_lambda[i] for i in kept]
    root = len(kept)
    new_parent: list[int | None] = []
    for i in kept:
        par = parent[i]
        while par >= 0 and not keep[par]:
            par = parent[par]
        new_parent.append(remap[par] if par >= 0 else root)
    new_lambda.append(0)
    new_parent.append(None)
    new_comp = [remap[c] if c >= 0 else root for c in comp]
    return Hierarchy(1, 2, lam, new_lambda, new_parent, new_comp, root,
                     algorithm="lcps")
