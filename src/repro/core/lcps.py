"""LCPS: Level Component Priority Search, adapted for k-core hierarchies.

Matula & Beck (1983) sketched a traversal that outputs vertices with
interspersed brackets such that the vertices enclosed at depth k+1 form a
k-core, but noted that "an implementation may not always be possible owing
to the difficulty of maintaining an appropriate priority queue".  The paper
resolves this with a bucket structure; this module follows that adaptation:

* after peeling, traverse with a **max-λ bucket priority queue** seeded from
  an arbitrary vertex per connected component;
* keep a stack of open hierarchy nodes (one per level, the "brackets").
  Popping a vertex of larger λ than the current level opens a chain of new
  nodes down to its level; a smaller λ closes brackets back up to its level.

Priority order guarantees that once a k-core component is entered it is
exhausted before any vertex of λ < k is popped, so closed brackets are
final — each tree node is exactly one connected k-core.  This is (1,2) only:
for r >= 2 there is no analogous cheap frontier (the paper uses DFT/FND
there).
"""

from __future__ import annotations

from repro.core.bucket import MaxBucketQueue
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph

__all__ = ["lcps_hierarchy"]


def lcps_hierarchy(graph: Graph, peeling: PeelingResult) -> Hierarchy:
    """Build the k-core hierarchy with one priority-guided traversal."""
    lam = peeling.lam
    n = graph.n
    if len(lam) != n:
        raise InvalidParameterError(
            "LCPS needs a (1,2) peeling of the same graph")

    node_lambda: list[int] = []
    parent: list[int | None] = []
    comp = [-1] * n
    discovered = [False] * n

    def open_node(level: int, parent_id: int | None) -> int:
        node_id = len(node_lambda)
        node_lambda.append(level)
        parent.append(parent_id)
        return node_id

    root_placeholder: list[int] = []  # ids of nodes that must hang off the root
    queue = MaxBucketQueue(peeling.max_lambda)  # drained fully per component

    for start in range(n):
        if discovered[start] or lam[start] == 0:
            continue
        discovered[start] = True
        queue.push(start, lam[start])
        # stack of (level, node_id); level 0 marks the component's top
        stack: list[tuple[int, int]] = []
        while True:
            popped = queue.pop()
            if popped is None:
                break
            v, level = popped
            if not stack:
                first = open_node(1, None)
                root_placeholder.append(first)
                stack.append((1, first))
                for step in range(2, level + 1):
                    stack.append((step, open_node(step, stack[-1][1])))
            else:
                while stack[-1][0] > level:
                    stack.pop()  # close brackets: this k-core is complete
                while stack[-1][0] < level:
                    stack.append((stack[-1][0] + 1,
                                  open_node(stack[-1][0] + 1, stack[-1][1])))
            comp[v] = stack[-1][1]
            for w in graph.neighbors(v):
                if not discovered[w]:
                    discovered[w] = True
                    queue.push(w, lam[w])

    root = open_node(0, None)
    for node_id in root_placeholder:
        parent[node_id] = root
    for v in range(n):
        if comp[v] == -1:
            comp[v] = root
    return Hierarchy(1, 2, lam, node_lambda, parent, comp, root,
                     algorithm="lcps")
