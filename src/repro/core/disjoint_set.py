"""Disjoint-set forests: the classic structure (paper Alg. 4) and the rooted
variant used for hierarchy-skeleton construction (paper Alg. 7).

The rooted variant is the paper's key data-structure insight.  Each
hierarchy-skeleton node carries two pointers:

* ``parent`` — the permanent tree edge of the hierarchy-skeleton.  Written
  once, never rewritten by finds.
* ``root`` — a shortcut to the node's greatest ancestor, maintained with path
  compression.  ``Find-r`` walks and compresses **only** ``root`` pointers,
  so the hierarchy tree the ``parent`` pointers spell out is preserved while
  union-find stays near O(α).

Both structures use union by rank.
"""

from __future__ import annotations

__all__ = ["ArrayRootedForest", "DisjointSetForest", "RootedForest"]


class DisjointSetForest:
    """Union-find with union by rank and full path compression (Alg. 4)."""

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, size: int = 0):
        self._parent = list(range(size))
        self._rank = [0] * size
        self._count = size

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._count

    def make_set(self) -> int:
        """Create a fresh singleton set and return its element id."""
        idx = len(self._parent)
        self._parent.append(idx)
        self._rank.append(0)
        self._count += 1
        return idx

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> int:
        """Merge the sets of ``x`` and ``y``; return the surviving root."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._count -= 1
        return rx

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)


class RootedForest:
    """The paper's modified disjoint-set forest (Alg. 7).

    Nodes are created with :meth:`make_node` (returning dense ids).  The
    structure maintains, per node:

    * ``parent`` — permanent hierarchy-skeleton edge (``None`` until linked);
    * ``root``  — union-find shortcut, compressed by :meth:`find`;
    * ``rank``  — union-by-rank rank.

    Two mutation paths exist, mirroring the paper:

    * :meth:`union` (Union-r) — merge two same-λ subnuclei: links one root
      under the other, setting **both** ``parent`` and ``root``;
    * :meth:`attach` — make a (found) root a child of a lower-λ subnucleus:
      sets ``parent`` and ``root`` to the given node (Alg. 6 line 21 /
      Alg. 9 line 10).
    """

    __slots__ = ("parent", "root", "rank")

    def __init__(self):
        self.parent: list[int | None] = []
        self.root: list[int | None] = []
        self.rank: list[int] = []

    def __len__(self) -> int:
        return len(self.parent)

    def make_node(self) -> int:
        """Create a new isolated node and return its id."""
        idx = len(self.parent)
        self.parent.append(None)
        self.root.append(None)
        self.rank.append(0)
        return idx

    def find(self, x: int, compress: bool = True) -> int:
        """Greatest ancestor of ``x`` via ``root`` pointers (Find-r).

        Compresses ``root`` pointers only; ``parent`` is untouched.
        ``compress=False`` disables path compression — an ablation knob
        used to measure how much the paper's heuristic actually buys.
        """
        root = self.root
        top = x
        while root[top] is not None:
            top = root[top]  # type: ignore[assignment]
        if compress:
            while x != top:
                nxt = root[x]
                root[x] = top
                x = nxt  # type: ignore[assignment]
        return top

    def link(self, x: int, y: int) -> int:
        """Link-r on two roots; returns the surviving root."""
        if x == y:
            return x
        if self.rank[x] > self.rank[y]:
            x, y = y, x
        # x goes under y
        self.parent[x] = y
        self.root[x] = y
        if self.rank[x] == self.rank[y]:
            self.rank[y] += 1
        return y

    def union(self, x: int, y: int) -> int:
        """Union-r: merge the trees containing ``x`` and ``y``."""
        return self.link(self.find(x), self.find(y))

    def attach(self, child_root: int, new_parent: int) -> None:
        """Make ``child_root`` (a current root) a child of ``new_parent``.

        Used when a higher-λ structure is discovered to live inside a
        lower-λ subnucleus.
        """
        self.parent[child_root] = new_parent
        self.root[child_root] = new_parent


class ArrayRootedForest:
    """:class:`RootedForest` on homogeneous flat ``int`` arrays.

    Same Find-r / Union-r / attach discipline, but ``parent`` and ``root``
    are plain ``int`` lists with ``-1`` as the "no link" sentinel instead of
    ``None``-holed lists.  This is the layout the CSR hierarchy construction
    (:mod:`repro.core.csr_fnd`) and the traversal algorithms share: every
    pointer is an int, so the whole skeleton state is three flat arrays that
    can be pre-sized, copied cheaply, and (later) handed to shared-memory
    workers.  :meth:`parents_or_none` converts to the ``None``-sentinel
    convention :class:`~repro.core.hierarchy.Hierarchy` stores.
    """

    __slots__ = ("parent", "root", "rank")

    def __init__(self, size: int = 0):
        self.parent: list[int] = [-1] * size
        self.root: list[int] = [-1] * size
        self.rank: list[int] = [0] * size

    def __len__(self) -> int:
        return len(self.parent)

    def make_node(self) -> int:
        """Create a new isolated node and return its id."""
        idx = len(self.parent)
        self.parent.append(-1)
        self.root.append(-1)
        self.rank.append(0)
        return idx

    def make_nodes(self, count: int) -> int:
        """Create ``count`` isolated nodes at once; returns the first id.

        The new ids are contiguous (``first .. first + count - 1``) — the
        batch primitive the level-wise parallel hierarchy construction
        uses to materialise a whole frontier of singleton sub-nuclei in
        one call.
        """
        first = len(self.parent)
        self.parent.extend([-1] * count)
        self.root.extend([-1] * count)
        self.rank.extend([0] * count)
        return first

    def adopt_roots(self, new_root: int) -> None:
        """Give every parentless node other than ``new_root`` that parent.

        The final step of every FND-style construction: collect the
        surviving tree roots under the λ = 0 whole-graph node.  Only
        ``parent`` is written — ``root`` shortcuts keep whatever they
        compressed to, exactly like the sequential loop in
        :func:`repro.core.csr_fnd._finish`.
        """
        parent = self.parent
        for node in range(len(parent)):
            if parent[node] < 0 and node != new_root:
                parent[node] = new_root

    def find(self, x: int, compress: bool = True) -> int:
        """Greatest ancestor of ``x`` via ``root`` pointers (Find-r)."""
        root = self.root
        top = x
        while root[top] >= 0:
            top = root[top]
        if compress:
            while x != top:
                nxt = root[x]
                root[x] = top
                x = nxt
        return top

    def link(self, x: int, y: int) -> int:
        """Link-r on two roots; returns the surviving root."""
        if x == y:
            return x
        if self.rank[x] > self.rank[y]:
            x, y = y, x
        # x goes under y
        self.parent[x] = y
        self.root[x] = y
        if self.rank[x] == self.rank[y]:
            self.rank[y] += 1
        return y

    def union(self, x: int, y: int) -> int:
        """Union-r: merge the trees containing ``x`` and ``y``."""
        return self.link(self.find(x), self.find(y))

    def attach(self, child_root: int, new_parent: int) -> None:
        """Make ``child_root`` (a current root) a child of ``new_parent``."""
        self.parent[child_root] = new_parent
        self.root[child_root] = new_parent

    #: alias matching :class:`repro.parallel.shm.SharedRootedForest` (where
    #: the bare name ``attach`` is taken by the bundle-attach classmethod),
    #: so the level-wise construction can drive either forest uniformly
    attach_node = attach

    def parents_or_none(self) -> list[int | None]:
        """The parent array with ``-1`` mapped back to ``None``."""
        return [p if p >= 0 else None for p in self.parent]
