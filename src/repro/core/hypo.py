"""Hypo: the hypothetical floor for any traversal-based algorithm.

The paper's "Hypo" baseline is peeling plus one flat traversal over the
whole structure — visiting every cell once and touching every s-clique
incidence once — *without* producing nuclei or a hierarchy.  No
traversal-based decomposition can cost less, so beating Hypo (as FND does)
demonstrates that avoiding traversal altogether is a real win rather than an
implementation artefact.
"""

from __future__ import annotations

from collections import deque

from repro.core.peeling import PeelingResult
from repro.core.views import CellView

__all__ = ["hypo_traversal"]


def hypo_traversal(view: CellView, peeling: PeelingResult) -> int:
    """One BFS sweep over all cells through their cofaces.

    Returns the number of connected components found (a throwaway value;
    the point is the work performed).  ``peeling`` is accepted to mirror the
    real algorithms' signatures — the traversal itself ignores λ.
    """
    n_cells = view.num_cells
    visited = [False] * n_cells
    components = 0
    for seed in range(n_cells):
        if visited[seed]:
            continue
        components += 1
        visited[seed] = True
        queue = deque([seed])
        while queue:
            u = queue.popleft()
            for others in view.cofaces(u):
                for v in others:
                    if not visited[v]:
                        visited[v] = True
                        queue.append(v)
    return components
