"""Top-level nucleus decomposition API.

:func:`nucleus_decomposition` runs any of the paper's algorithms on any
(r, s) pair and returns a :class:`Decomposition` carrying the λ values, the
hierarchy, and a peel/post-process timing breakdown (the quantity Figure 6
plots).  Algorithms:

===========  ===========================================  ==================
name         phases                                       applicable
===========  ===========================================  ==================
``naive``    Set-λ + per-level traversal (Alg. 2/3)       any (r, s)
``dft``      Set-λ + DF-Traversal (Alg. 5/6)              any (r, s)
``fnd``      extended peeling + BuildHierarchy (Alg. 8/9) any (r, s)
``lcps``     Set-λ + priority traversal (Matula–Beck)     (1, 2) only
``hypo``     Set-λ + flat traversal, **no hierarchy**     any (r, s)
===========  ===========================================  ==================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.dft import dft_hierarchy
from repro.core.fnd import FndInstrumentation, fnd_decomposition
from repro.core.hierarchy import Hierarchy
from repro.core.hypo import hypo_traversal
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import peel
from repro.core.traversal import naive_hierarchy
from repro.core.views import CellView, build_view
from repro.errors import InvalidParameterError, UnknownAlgorithmError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

__all__ = ["Decomposition", "nucleus_decomposition", "ALGORITHMS"]

ALGORITHMS = ("naive", "dft", "fnd", "lcps", "hypo")


@dataclass
class Decomposition:
    """Result of a nucleus decomposition run.

    Attributes:
        graph: the input graph, in whichever representation it was passed
            (:class:`Graph`, or :class:`CSRGraph` for the direct CSR paths —
            both support the subgraph-extraction API used here).
        r, s: the nucleus parameters.
        algorithm: which algorithm produced this result.
        lam: λ_s per cell (cell = vertex / edge id / triangle id for
            r = 1 / 2 / 3).
        hierarchy: the hierarchy-skeleton (``None`` for ``hypo``, which by
            definition does not build one).
        view: the cell view (maps cell ids back to vertex tuples).
        peel_seconds / post_seconds: timing breakdown.  For FND the peel
            phase is the *extended* peeling (Alg. 8) and the post phase is
            BuildHierarchy — matching how Figure 6 splits the bars.
    """

    graph: Graph | CSRGraph
    r: int
    s: int
    algorithm: str
    lam: list[int]
    hierarchy: Hierarchy | None
    view: CellView
    peel_seconds: float
    post_seconds: float
    fnd_stats: FndInstrumentation | None = field(default=None, repr=False)

    @property
    def total_seconds(self) -> float:
        return self.peel_seconds + self.post_seconds

    @property
    def max_lambda(self) -> int:
        return max(self.lam, default=0)

    # -- convenience views over the hierarchy ---------------------------
    def nucleus_vertices(self, node_id: int) -> set[int]:
        """Vertex set of a condensed-tree nucleus node."""
        if self.hierarchy is None:
            raise InvalidParameterError(f"{self.algorithm} builds no hierarchy")
        tree = self.hierarchy.condense()
        return self.view.vertices_of_cells(tree.subtree_cells(node_id))

    def nucleus_subgraph(self, node_id: int, relabel: bool = True) -> Graph:
        """Induced subgraph of a condensed-tree nucleus node."""
        return self.graph.subgraph(self.nucleus_vertices(node_id), relabel=relabel)

    def nuclei_at_level(self, k: int) -> list[int]:
        """Condensed node ids of nuclei with level >= k, densest first."""
        if self.hierarchy is None:
            raise InvalidParameterError(f"{self.algorithm} builds no hierarchy")
        tree = self.hierarchy.condense()
        picked = [n.id for n in tree.nodes if n.k >= k]
        picked.sort(key=lambda i: -tree[i].k)
        return picked


def nucleus_decomposition(graph: Graph | CSRGraph, r: int = 1, s: int = 2,
                          algorithm: str = "fnd",
                          view: CellView | None = None) -> Decomposition:
    """Decompose ``graph`` into its k-(r, s) nuclei with full hierarchy.

    Args:
        graph: input graph.
        r, s: nucleus parameters, ``1 <= r < s``.  (1,2) = k-core,
            (2,3) = k-truss communities, (3,4) = the paper's densest setting.
        algorithm: one of :data:`ALGORITHMS`.
        view: pre-built cell view to reuse across runs (benchmarks build the
            view once so that clique *indexing* cost is not attributed to any
            one algorithm; clique *degree counting* is always charged to the
            peel phase).
    """
    if algorithm not in ALGORITHMS:
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    if algorithm == "lcps" and (r, s) != (1, 2):
        raise InvalidParameterError("LCPS applies to (1,2) (k-core) only")
    if view is None:
        view = build_view(graph, r, s)

    if algorithm == "fnd":
        stats = FndInstrumentation()
        start = time.perf_counter()
        peeling, hierarchy = fnd_decomposition(view, instrumentation=stats)
        total = time.perf_counter() - start
        post_s = min(stats.build_seconds, total)
        return Decomposition(graph, r, s, algorithm, peeling.lam, hierarchy,
                             view, total - post_s, post_s, fnd_stats=stats)

    start = time.perf_counter()
    peeling = peel(view)
    peel_s = time.perf_counter() - start

    start = time.perf_counter()
    hierarchy: Hierarchy | None
    if algorithm == "naive":
        hierarchy = naive_hierarchy(view, peeling)
    elif algorithm == "dft":
        hierarchy = dft_hierarchy(view, peeling)
    elif algorithm == "lcps":
        hierarchy = lcps_hierarchy(graph, peeling)
    else:  # hypo
        hypo_traversal(view, peeling)
        hierarchy = None
    post_s = time.perf_counter() - start

    return Decomposition(graph, r, s, algorithm, peeling.lam, hierarchy,
                         view, peel_s, post_s)
