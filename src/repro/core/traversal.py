"""Naive nucleus decomposition: peeling + per-level traversal (Alg. 2/3).

For every k from max λ down to 1 the whole cell space is re-scanned and a
fresh BFS grows each k-(r,s) nucleus from an unvisited cell with λ = k,
expanding across s-cliques whose minimum λ is at least k.  The ``visited``
array is reset at every level — this is exactly why the paper calls this
baseline naive: its traversal cost is multiplied by the number of levels.

On top of the paper's Alg. 2 (which only *reports* the nuclei) this builds
the same :class:`~repro.core.hierarchy.Hierarchy` the other algorithms
produce, by attaching each previously found (denser) nucleus to the first
enclosing nucleus discovered later.  The extra bookkeeping is O(#nuclei²)
worst case but negligible against the per-level traversals, and makes the
comparison conservative for us (Naive is charged for strictly more work in
our benchmarks than in the paper's).
"""

from __future__ import annotations

from collections import deque

from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.core.views import CellView

__all__ = ["naive_hierarchy"]


def naive_hierarchy(view: CellView, peeling: PeelingResult) -> Hierarchy:
    """Run the naive per-level traversal and assemble the hierarchy."""
    lam = peeling.lam
    n_cells = view.num_cells

    node_lambda: list[int] = []
    parent: list[int | None] = []
    comp = [-1] * n_cells
    # nuclei found at deeper levels, not yet attached: (node_id, seed_cell)
    pending: list[tuple[int, int]] = []

    for k in range(peeling.max_lambda, 0, -1):
        visited = [False] * n_cells  # the naive reset, once per level
        for seed in range(n_cells):
            if lam[seed] != k or visited[seed]:
                continue
            node_id = len(node_lambda)
            node_lambda.append(k)
            parent.append(None)
            comp[seed] = node_id
            nucleus: set[int] = {seed}
            visited[seed] = True
            queue = deque([seed])
            while queue:
                u = queue.popleft()
                for others in view.cofaces(u):
                    if any(lam[v] < k for v in others):
                        continue  # s-clique below level k: not a path at this k
                    for v in others:
                        if not visited[v]:
                            visited[v] = True
                            nucleus.add(v)
                            queue.append(v)
                            if lam[v] == k:
                                comp[v] = node_id
            if pending:
                still_pending: list[tuple[int, int]] = []
                for child_id, child_seed in pending:
                    if child_seed in nucleus:
                        parent[child_id] = node_id
                    else:
                        still_pending.append((child_id, child_seed))
                pending = still_pending
            pending.append((node_id, seed))

    root = len(node_lambda)
    node_lambda.append(0)
    parent.append(None)
    for node_id in range(root):
        if parent[node_id] is None:
            parent[node_id] = root
    for cell in range(n_cells):
        if comp[cell] == -1:
            comp[cell] = root
    return Hierarchy(view.r, view.s, lam, node_lambda, parent, comp, root,
                     algorithm="naive")
