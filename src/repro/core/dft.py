"""DF-Traversal: disjoint-set-forest hierarchy construction (Alg. 5/6).

Sub-(r,s) nuclei are discovered by BFS in decreasing-λ order.  Each BFS stays
inside one T_{r,s} — cells of equal λ joined by s-cliques whose minimum λ
equals that λ — and runs once per sub-nucleus, so unlike the naive algorithm
the whole traversal costs a single pass over every (cell, s-clique)
incidence.

When the BFS touches a cell of *greater* λ its sub-nucleus already exists in
the hierarchy-skeleton; ``Find-r`` fetches that structure's current greatest
ancestor and either hangs it under the sub-nucleus being built (strictly
greater λ) or schedules a same-λ merge (``Union-r``), executed after the BFS.
The processed-order guarantee (decreasing λ) makes every ancestor found have
λ ≥ the current level, which is what lets a disjoint-set forest stand in for
full traversal bookkeeping.
"""

from __future__ import annotations

from collections import deque

from repro.core.disjoint_set import ArrayRootedForest
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.core.views import CellView

__all__ = ["dft_hierarchy"]


def dft_hierarchy(view: CellView, peeling: PeelingResult,
                  path_compression: bool = True) -> Hierarchy:
    """Run DF-Traversal and return the hierarchy-skeleton.

    ``path_compression=False`` turns off Find-r's compression (ablation
    knob; results are identical, only the union-find cost changes).
    """
    lam = peeling.lam
    n_cells = view.num_cells
    forest = ArrayRootedForest()
    node_lambda: list[int] = []
    comp = [-1] * n_cells
    visited = [False] * n_cells

    # Bucket cells by lambda so levels can be swept in decreasing order.
    cells_at: list[list[int]] = [[] for _ in range(peeling.max_lambda + 1)]
    for cell, value in enumerate(lam):
        cells_at[value].append(cell)

    for k in range(peeling.max_lambda, 0, -1):
        for seed in cells_at[k]:
            if not visited[seed]:
                _grow_subnucleus(view, lam, forest, node_lambda, comp,
                                 visited, seed, k, path_compression)

    root = forest.make_node()
    node_lambda.append(0)
    for node in range(root):
        if forest.parent[node] < 0:
            forest.parent[node] = root
    for cell in range(n_cells):
        if comp[cell] == -1:
            comp[cell] = root
    return Hierarchy(view.r, view.s, lam, node_lambda,
                     forest.parents_or_none(), comp, root, algorithm="dft")


def _grow_subnucleus(view: CellView, lam: list[int],
                     forest: ArrayRootedForest,
                     node_lambda: list[int], comp: list[int],
                     visited: list[bool], seed: int, k: int,
                     path_compression: bool = True) -> None:
    """SubNucleus (Alg. 6): one BFS over a T_{r,s}, splicing the skeleton."""
    sn = forest.make_node()
    node_lambda.append(k)
    comp[seed] = sn
    visited[seed] = True
    marked: set[int] = set()
    merge: list[int] = [sn]
    queue = deque([seed])

    while queue:
        u = queue.popleft()
        for others in view.cofaces(u):
            if any(lam[v] < k for v in others):
                continue  # s-clique's min lambda below k: outside this nucleus
            for v in others:
                if lam[v] == k:
                    if not visited[v]:
                        visited[v] = True
                        comp[v] = sn
                        queue.append(v)
                else:  # lam[v] > k: already in the skeleton (processed earlier)
                    sub = comp[v]
                    if sub in marked:
                        continue  # this subnucleus was already resolved
                    marked.add(sub)
                    top = forest.find(sub, compress=path_compression)
                    if top == sn or (top != sub and top in marked):
                        continue  # already merged/attached into this BFS
                    marked.add(top)
                    if node_lambda[top] > k:
                        forest.attach(top, sn)  # denser structure hangs below us
                    else:
                        merge.append(top)  # same level: same k-nucleus

    for other in merge[1:]:
        forest.union(merge[0], other)
