"""Cell views: present a graph as the set of its r-cliques ("cells") with
their s-clique containments ("cofaces").

Every algorithm in the paper — peeling (Alg. 1), naive traversal (Alg. 2),
DF-traversal (Alg. 5/6), traversal-free FND (Alg. 8) and the Hypo baseline —
only ever touches the graph through three questions:

1. how many cells are there, and what are their initial s-clique degrees ω_s?
2. given a cell, which s-cliques contain it, and which *other* cells sit in
   each of those s-cliques?
3. which vertices does a cell consist of (for reporting)?

A :class:`CellView` answers those.  Fast paths are provided for the paper's
evaluated cases — (1,2) k-core, (2,3) k-truss community, (3,4) nucleus — and
:class:`GenericCliqueView` covers any ``r < s`` (e.g. (1,3) or (2,4), the
right half of the paper's Figure 1).

Cofaces are *recomputed* on demand from common-neighbour intersections
instead of materialised, exactly like the reference implementation: peeling
and traversal each visit every (cell, coface) pair a constant number of
times, so storing them buys nothing and costs Θ(s·|K_s|) memory.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import combinations
from typing import Iterator, Sequence

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.cliques import (
    cliques,
    edge_triangle_counts,
    triangle_k4_counts,
)
from repro.graph.csr import (
    CSRGraph,
    csr_edge_support,
    csr_triangle_k4_counts,
)

__all__ = [
    "CellView",
    "VertexView",
    "EdgeView",
    "TriangleView",
    "CSREdgeView",
    "CSRTriangleView",
    "GenericCliqueView",
    "build_view",
]


class CellView:
    """Interface shared by all (r, s) views.  See the module docstring."""

    r: int
    s: int
    graph: Graph | CSRGraph

    @property
    def num_cells(self) -> int:
        """Number of r-cliques (cells)."""
        raise NotImplementedError

    def initial_degrees(self) -> list[int]:
        """ω_s of every cell: the number of s-cliques containing it."""
        raise NotImplementedError

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        """For each s-clique containing ``cell``: the other cells inside it.

        Yields one tuple of ``C(s, r) - 1`` cell ids per coface.
        """
        raise NotImplementedError

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        """The vertices making up ``cell`` (sorted)."""
        raise NotImplementedError

    def vertices_of_cells(self, cells_iter) -> set[int]:
        """Union of the vertex sets of the given cells."""
        out: set[int] = set()
        for c in cells_iter:
            out.update(self.cell_vertices(c))
        return out

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} ({self.r},{self.s}) cells={self.num_cells} "
                f"graph={self.graph!r}>")


class VertexView(CellView):
    """(1,2): cells are vertices, cofaces are edges — the k-core view.

    Works unchanged on both backends: it only needs ``degrees`` and
    ``neighbors``, which :class:`~repro.graph.csr.CSRGraph` also provides.
    """

    r, s = 1, 2

    def __init__(self, graph: Graph | CSRGraph):
        self.graph = graph

    @property
    def num_cells(self) -> int:
        return self.graph.n

    def initial_degrees(self) -> list[int]:
        return self.graph.degrees()

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        for v in self.graph.neighbors(cell):
            yield (v,)

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return (cell,)


class EdgeView(CellView):
    """(2,3): cells are edges, cofaces are triangles — the k-truss view."""

    r, s = 2, 3

    def __init__(self, graph: Graph):
        self.graph = graph
        self._index = graph.edge_index

    @property
    def num_cells(self) -> int:
        return len(self._index)

    def initial_degrees(self) -> list[int]:
        return edge_triangle_counts(self.graph)

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        u, v = self._index.endpoints(cell)
        id_of = self._index.id_of
        for w in self.graph.common_neighbors(u, v):
            yield (id_of(u, w), id_of(v, w))

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return self._index.endpoints(cell)


class TriangleView(CellView):
    """(3,4): cells are triangles, cofaces are four-cliques.

    Triangle ids are the lexicographic rank of the sorted vertex triple —
    deterministic and representation-independent, so λ arrays line up
    element-for-element with :class:`CSRTriangleView` (whose enumeration
    yields lex order natively).
    """

    r, s = 3, 4

    def __init__(self, graph: Graph):
        self.graph = graph
        enum_id, enum_degrees = triangle_k4_counts(graph)
        self._vertices: list[tuple[int, int, int]] = sorted(enum_id)
        self._id_of = {tri: tid for tid, tri in enumerate(self._vertices)}
        self._degrees = [enum_degrees[enum_id[tri]] for tri in self._vertices]

    @property
    def num_cells(self) -> int:
        return len(self._vertices)

    def initial_degrees(self) -> list[int]:
        return list(self._degrees)

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        a, b, c = self._vertices[cell]
        graph = self.graph
        id_of = self._id_of
        # common neighbours of all three vertices complete the four-clique
        small = min((a, b, c), key=graph.degree)
        others = [v for v in (a, b, c) if v != small]
        set1 = graph.neighbor_set(others[0])
        set2 = graph.neighbor_set(others[1])
        for x in graph.neighbors(small):
            if x in set1 and x in set2:
                yield (
                    id_of[_sorted3(a, b, x)],
                    id_of[_sorted3(a, c, x)],
                    id_of[_sorted3(b, c, x)],
                )

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return self._vertices[cell]


class CSREdgeView(CellView):
    """(2,3) over :class:`CSRGraph`: cofaces via merge scans, ids via the
    aligned ``eids`` array — no per-triangle hash lookups."""

    r, s = 2, 3

    def __init__(self, graph: CSRGraph):
        self.graph = graph

    @property
    def num_cells(self) -> int:
        return self.graph.m

    def initial_degrees(self) -> list[int]:
        return csr_edge_support(self.graph)

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        graph = self.graph
        indptr, indices, eids = graph.hot_arrays()
        u, v = graph.endpoints(cell)
        a_lo, a_hi = indptr[u], indptr[u + 1]
        b_lo, b_hi = indptr[v], indptr[v + 1]
        if a_hi - a_lo > b_hi - b_lo:
            a_lo, a_hi, b_lo, b_hi = b_lo, b_hi, a_lo, a_hi
        for p in range(a_lo, a_hi):
            w = indices[p]
            q = bisect_left(indices, w, b_lo, b_hi)
            if q >= b_hi:
                break
            if indices[q] != w:
                b_lo = q
                continue
            b_lo = q + 1
            yield (eids[p], eids[q])

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return self.graph.endpoints(cell)


class CSRTriangleView(CellView):
    """(3,4) over :class:`CSRGraph`: enumeration by merge intersection.

    Triangle ids are the lexicographic rank of the sorted vertex triple
    (the enumeration yields them in that order already), matching
    :class:`TriangleView` element-for-element.

    ``_enumeration`` lets a caller that already materialised the triangle
    list and ω₄ degrees (the direct CSR peels) hand them in instead of
    re-enumerating every clique; the triple→id map is then only built if a
    coface query actually needs it.
    """

    r, s = 3, 4

    def __init__(self, graph: CSRGraph,
                 _enumeration: tuple[list[tuple[int, int, int]],
                                     list[int]] | None = None):
        self.graph = graph
        if _enumeration is None:
            self._id_of, self._degrees = csr_triangle_k4_counts(graph)
            self._vertices: list[tuple[int, int, int]] = [()] * len(self._id_of)  # type: ignore
            for tri, tid in self._id_of.items():
                self._vertices[tid] = tri
        else:
            self._vertices, self._degrees = _enumeration
            self._id_of = None

    def _ids(self) -> dict[tuple[int, int, int], int]:
        if self._id_of is None:
            self._id_of = {tri: tid for tid, tri in enumerate(self._vertices)}
        return self._id_of

    @property
    def num_cells(self) -> int:
        return len(self._vertices)

    def initial_degrees(self) -> list[int]:
        return list(self._degrees)

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        a, b, c = self._vertices[cell]
        graph = self.graph
        id_of = self._ids()
        indptr, indices, _ = graph.hot_arrays()
        # scan the smallest adjacency run, bisect the other two
        runs = sorted(((indptr[v], indptr[v + 1]) for v in (a, b, c)),
                      key=lambda run: run[1] - run[0])
        (s_lo, s_hi), (p_lo, p_hi), (q_lo, q_hi) = runs
        for slot in range(s_lo, s_hi):
            x = indices[slot]
            p = bisect_left(indices, x, p_lo, p_hi)
            if p >= p_hi or indices[p] != x:
                continue
            q = bisect_left(indices, x, q_lo, q_hi)
            if q >= q_hi or indices[q] != x:
                continue
            yield (
                id_of[_sorted3(a, b, x)],
                id_of[_sorted3(a, c, x)],
                id_of[_sorted3(b, c, x)],
            )

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return self._vertices[cell]


def _sorted3(a: int, b: int, c: int) -> tuple[int, int, int]:
    """Sort three ints without the generic-sort overhead."""
    if a > b:
        a, b = b, a
    if b > c:
        b, c = c, b
        if a > b:
            a, b = b, a
    return a, b, c


class GenericCliqueView(CellView):
    """Any (r, s) with r < s, via explicit r-clique enumeration.

    Slower than the fast paths (cells live in a dict), but exercises the same
    algorithms for arbitrary nucleus decompositions such as (1,3) and (2,4).
    """

    def __init__(self, graph: Graph | CSRGraph, r: int, s: int):
        if not 1 <= r < s:
            raise InvalidParameterError(f"need 1 <= r < s, got r={r} s={s}")
        self.graph = graph
        self.r = r
        self.s = s
        self._cells: list[tuple[int, ...]] = sorted(cliques(graph, r))
        self._id_of: dict[tuple[int, ...], int] = {c: i for i, c in enumerate(self._cells)}

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    def initial_degrees(self) -> list[int]:
        degrees = [0] * len(self._cells)
        id_of = self._id_of
        for s_clique in cliques(self.graph, self.s):
            for sub in combinations(s_clique, self.r):
                degrees[id_of[sub]] += 1
        return degrees

    def _common_neighborhood(self, vertices: Sequence[int]) -> list[int]:
        graph = self.graph
        smallest = min(vertices, key=graph.degree)
        others = [graph.neighbor_set(v) for v in vertices if v != smallest]
        return [x for x in graph.neighbors(smallest) if all(x in s for s in others)]

    def _extension_cliques(self, candidates: list[int], size: int) -> Iterator[tuple[int, ...]]:
        """(s-r)-cliques within ``candidates`` (which are mutually candidate)."""
        graph = self.graph
        if size == 1:
            for x in candidates:
                yield (x,)
            return

        def extend(partial: list[int], pool: list[int]) -> Iterator[tuple[int, ...]]:
            if len(partial) == size:
                yield tuple(partial)
                return
            for i, x in enumerate(pool):
                adj = graph.neighbor_set(x)
                yield from extend(partial + [x], [y for y in pool[i + 1:] if y in adj])

        yield from extend([], candidates)

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        base = self._cells[cell]
        id_of = self._id_of
        r = self.r
        for extension in self._extension_cliques(
                self._common_neighborhood(base), self.s - self.r):
            full = tuple(sorted(base + extension))
            yield tuple(id_of[sub] for sub in combinations(full, r) if sub != base)

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return self._cells[cell]


def build_view(graph: Graph | CSRGraph, r: int, s: int) -> CellView:
    """Return the fastest view implementing the requested (r, s).

    Dispatches on the graph representation: a :class:`CSRGraph` gets the
    merge-intersection views, an object :class:`Graph` the set-probing ones.
    ``GenericCliqueView`` handles any other (r, s) on either backend (it
    only uses the shared read API).
    """
    if not 1 <= r < s:
        raise InvalidParameterError(f"need 1 <= r < s, got r={r} s={s}")
    # anything exposing the flat-array contract (CSRGraph, DiskCSRGraph)
    # gets the merge-intersection views
    csr = isinstance(graph, CSRGraph) or hasattr(graph, "hot_arrays")
    if (r, s) == (1, 2):
        return VertexView(graph)
    if (r, s) == (2, 3):
        return CSREdgeView(graph) if csr else EdgeView(graph)
    if (r, s) == (3, 4):
        return CSRTriangleView(graph) if csr else TriangleView(graph)
    return GenericCliqueView(graph, r, s)
