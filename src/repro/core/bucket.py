"""Bucket priority queues.

Peeling repeatedly extracts the unprocessed cell of minimum degree while
degrees only move toward the current minimum; the LCPS traversal repeatedly
extracts the discovered vertex of maximum λ.  Both are served by bucket
queues with lazy invalidation: every priority change pushes a fresh entry and
stale entries are skipped on pop.  Priorities are small non-negative ints
(bounded by the max clique degree), so buckets are plain lists.

This is the structure Matula & Beck said was hard to maintain ("an
implementation may not always be possible owing to the difficulty of
maintaining an appropriate priority queue") and that the paper resolves with
bucket sort — same resolution here.
"""

from __future__ import annotations

__all__ = ["MinBucketQueue", "MaxBucketQueue", "FlatBucketQueue"]


class MinBucketQueue:
    """Monotone min-priority bucket queue over items ``0..n-1``.

    Built once from the initial priority array; :meth:`update` re-registers an
    item after its priority drops.  Pops skip entries whose recorded priority
    no longer matches the item's current priority.
    """

    __slots__ = ("_buckets", "_current", "_cursor")

    def __init__(self, priorities: list[int]):
        top = max(priorities, default=0)
        self._buckets: list[list[int]] = [[] for _ in range(top + 1)]
        self._current = list(priorities)
        for item, priority in enumerate(priorities):
            self._buckets[priority].append(item)
        self._cursor = 0

    def update(self, item: int, priority: int) -> None:
        """Record that ``item`` now has the given (lower) priority."""
        self._current[item] = priority
        if priority < self._cursor:
            self._cursor = priority
        self._buckets[priority].append(item)

    def pop(self) -> tuple[int, int] | None:
        """Remove and return ``(item, priority)`` with minimum priority.

        Returns ``None`` when the queue is exhausted.  Each item is returned
        at most once (later stale entries are skipped).
        """
        buckets = self._buckets
        current = self._current
        cursor = self._cursor
        while cursor < len(buckets):
            bucket = buckets[cursor]
            while bucket:
                item = bucket.pop()
                if current[item] == cursor:
                    current[item] = -1  # mark extracted
                    self._cursor = cursor
                    return item, cursor
            cursor += 1
        self._cursor = cursor
        return None


class MaxBucketQueue:
    """Max-priority bucket queue for LCPS frontier management.

    Items may be pushed at any time with a fixed priority (a vertex's λ never
    changes during traversal), so no invalidation is needed — only duplicate
    suppression, which the caller does with its ``discovered`` flags.
    """

    __slots__ = ("_buckets", "_cursor", "_size")

    def __init__(self, max_priority: int):
        self._buckets: list[list[int]] = [[] for _ in range(max_priority + 1)]
        self._cursor = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, item: int, priority: int) -> None:
        """Add ``item`` with the given priority."""
        self._buckets[priority].append(item)
        if priority > self._cursor:
            self._cursor = priority
        self._size += 1

    def pop(self) -> tuple[int, int] | None:
        """Remove and return ``(item, priority)`` with maximum priority."""
        if self._size == 0:
            return None
        cursor = self._cursor
        buckets = self._buckets
        while cursor >= 0 and not buckets[cursor]:
            cursor -= 1
        self._cursor = cursor
        item = buckets[cursor].pop()
        self._size -= 1
        return item, cursor


class FlatBucketQueue:
    """Monotone min-priority queue in four flat arrays (Batagelj–Zaversnik).

    A counting sort places the items into ``_vert`` ordered by priority;
    ``_pos`` inverts it and ``_bins[p]`` points at the first slot of the
    priority-``p`` block.  A unit decrement swaps the item with the first
    slot of its block and shifts the block boundary — O(1), with **no**
    allocation and no stale entries to skip, unlike the lazy
    :class:`MinBucketQueue`.  Pops walk ``_vert`` left to right, which is
    exactly non-decreasing current priority.

    Peeling only ever lowers priorities one unit at a time and never below
    the priority of the last pop, which is precisely the regime where the
    block-swap invariant holds; :meth:`update` enforces it.
    """

    __slots__ = ("_deg", "_vert", "_pos", "_bins", "_ptr")

    def __init__(self, priorities: list[int]):
        n = len(priorities)
        deg = list(priorities)
        top = max(deg, default=0)
        bins = [0] * (top + 2)
        for p in deg:
            bins[p + 1] += 1
        for p in range(top + 1):
            bins[p + 1] += bins[p]
        vert = [0] * n
        pos = [0] * n
        cursor = bins[:top + 1]
        for item in range(n):
            slot = cursor[deg[item]]
            vert[slot] = item
            pos[item] = slot
            cursor[deg[item]] = slot + 1
        self._deg = deg
        self._vert = vert
        self._pos = pos
        self._bins = bins
        self._ptr = 0

    def __len__(self) -> int:
        return len(self._vert) - self._ptr

    def priority(self, item: int) -> int:
        """Current priority of ``item``."""
        return self._deg[item]

    def decrement(self, item: int) -> int:
        """Lower ``item``'s priority by one; returns the new priority.

        Only valid while ``item`` is unpopped and its priority exceeds the
        last popped priority (the peeling guard ``degrees[v] > k``).
        """
        deg = self._deg
        vert = self._vert
        pos = self._pos
        bins = self._bins
        d = deg[item]
        slot = pos[item]
        first = bins[d]
        other = vert[first]
        if other != item:
            vert[first] = item
            vert[slot] = other
            pos[item] = first
            pos[other] = slot
        bins[d] = first + 1
        deg[item] = d - 1
        return d - 1

    def update(self, item: int, priority: int) -> None:
        """Drop-in for :meth:`MinBucketQueue.update` (unit decrements only)."""
        if priority != self._deg[item] - 1:
            raise ValueError(
                f"FlatBucketQueue supports unit decrements only: item {item} "
                f"has priority {self._deg[item]}, got {priority}")
        self.decrement(item)

    def pop(self) -> tuple[int, int] | None:
        """Remove and return ``(item, priority)`` with minimum priority."""
        ptr = self._ptr
        vert = self._vert
        if ptr >= len(vert):
            return None
        item = vert[ptr]
        self._ptr = ptr + 1
        return item, self._deg[item]
