"""Bucket priority queues.

Peeling repeatedly extracts the unprocessed cell of minimum degree while
degrees only move toward the current minimum; the LCPS traversal repeatedly
extracts the discovered vertex of maximum λ.  Both are served by bucket
queues with lazy invalidation: every priority change pushes a fresh entry and
stale entries are skipped on pop.  Priorities are small non-negative ints
(bounded by the max clique degree), so buckets are plain lists.

This is the structure Matula & Beck said was hard to maintain ("an
implementation may not always be possible owing to the difficulty of
maintaining an appropriate priority queue") and that the paper resolves with
bucket sort — same resolution here.
"""

from __future__ import annotations

__all__ = ["MinBucketQueue", "MaxBucketQueue"]


class MinBucketQueue:
    """Monotone min-priority bucket queue over items ``0..n-1``.

    Built once from the initial priority array; :meth:`update` re-registers an
    item after its priority drops.  Pops skip entries whose recorded priority
    no longer matches the item's current priority.
    """

    __slots__ = ("_buckets", "_current", "_cursor")

    def __init__(self, priorities: list[int]):
        top = max(priorities, default=0)
        self._buckets: list[list[int]] = [[] for _ in range(top + 1)]
        self._current = list(priorities)
        for item, priority in enumerate(priorities):
            self._buckets[priority].append(item)
        self._cursor = 0

    def update(self, item: int, priority: int) -> None:
        """Record that ``item`` now has the given (lower) priority."""
        self._current[item] = priority
        if priority < self._cursor:
            self._cursor = priority
        self._buckets[priority].append(item)

    def pop(self) -> tuple[int, int] | None:
        """Remove and return ``(item, priority)`` with minimum priority.

        Returns ``None`` when the queue is exhausted.  Each item is returned
        at most once (later stale entries are skipped).
        """
        buckets = self._buckets
        current = self._current
        cursor = self._cursor
        while cursor < len(buckets):
            bucket = buckets[cursor]
            while bucket:
                item = bucket.pop()
                if current[item] == cursor:
                    current[item] = -1  # mark extracted
                    self._cursor = cursor
                    return item, cursor
            cursor += 1
        self._cursor = cursor
        return None


class MaxBucketQueue:
    """Max-priority bucket queue for LCPS frontier management.

    Items may be pushed at any time with a fixed priority (a vertex's λ never
    changes during traversal), so no invalidation is needed — only duplicate
    suppression, which the caller does with its ``discovered`` flags.
    """

    __slots__ = ("_buckets", "_cursor", "_size")

    def __init__(self, max_priority: int):
        self._buckets: list[list[int]] = [[] for _ in range(max_priority + 1)]
        self._cursor = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, item: int, priority: int) -> None:
        """Add ``item`` with the given priority."""
        self._buckets[priority].append(item)
        if priority > self._cursor:
            self._cursor = priority
        self._size += 1

    def pop(self) -> tuple[int, int] | None:
        """Remove and return ``(item, priority)`` with maximum priority."""
        if self._size == 0:
            return None
        cursor = self._cursor
        buckets = self._buckets
        while cursor >= 0 and not buckets[cursor]:
            cursor -= 1
        self._cursor = cursor
        item = buckets[cursor].pop()
        self._size -= 1
        return item, cursor
