"""Direct peels over the CSR layout: the hot paths, fully inlined.

The generic :func:`repro.core.peeling.peel` is shaped around a
``CellView`` — per-cell generator calls, tuple allocations, a queue object
per decrement.  For the two workloads every benchmark and most callers
actually run, (1,2) k-core and (2,3) k-truss, these functions run the same
Set-λ algorithm straight over the flat arrays of a
:class:`~repro.graph.csr.CSRGraph`:

* :func:`csr_core_peel` is Batagelj–Zaversnik verbatim: one counting sort,
  then one swap per degree decrement, zero allocations in the loop;
* :func:`csr_truss_peel` peels edges with merge-scan triangle queries —
  the aligned ``eids`` array yields the two companion edge ids of every
  triangle without a single hash lookup;
* :func:`csr_nucleus34_peel` peels triangles against a materialised
  triangle→K₄ incidence (:func:`nucleus34_incidence`), replacing the
  dict-of-triples object path for (3,4).

All return the same :class:`~repro.core.peeling.PeelingResult` as the
generic peel, with identical λ (λ is unique; only tie order differs).
The incidence builders here are shared with the traversal-free hierarchy
construction in :mod:`repro.core.csr_fnd`.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.peeling import PeelingResult
from repro.graph.csr import (
    _MAX_KEYED_N,
    _NUMPY_MIN_TRIANGLE_EDGES,
    CSRGraph,
    HAVE_NUMPY,
    csr_edge_support,
    csr_k4_triangle_ids,
    csr_triangle_edge_ids,
)

__all__ = ["bucket_order", "csr_core_peel", "csr_nucleus34_peel",
           "csr_truss_peel", "nucleus34_incidence",
           "nucleus34_incidence_arrays", "truss_incidence",
           "truss_incidence_arrays"]


def bucket_order(priorities: list[int]) -> tuple[list[int], list[int],
                                                 list[int]]:
    """Counting-sort state shared by every direct peel: ``(bins, vert,
    pos)``.

    ``vert`` holds the items ordered by priority, ``pos`` inverts it, and
    ``bins[p]`` is the first slot of the priority-``p`` block (sized
    ``top + 2`` so ``bins[p + 1]`` is always in range).  The peel loops
    mutate all three in place with the O(1) block-swap decrement.
    """
    n = len(priorities)
    top = max(priorities, default=0)
    bins = [0] * (top + 2)
    for p in priorities:
        bins[p + 1] += 1
    for p in range(top + 1):
        bins[p + 1] += bins[p]
    vert = [0] * n
    pos = [0] * n
    cursor = bins[:top + 1]
    for item in range(n):
        slot = cursor[priorities[item]]
        vert[slot] = item
        pos[item] = slot
        cursor[priorities[item]] = slot + 1
    return bins, vert, pos


def csr_core_peel(csr: CSRGraph) -> PeelingResult:
    """(1,2) peel: core number λ₂ of every vertex, in degeneracy order."""
    n = csr.n
    indptr, indices, _ = csr.hot_arrays()
    deg = csr.degrees()
    bins, vert, pos = bucket_order(deg)

    max_lambda = 0
    for i in range(n):
        v = vert[i]
        dv = deg[v]
        if dv > max_lambda:
            max_lambda = dv
        for p in range(indptr[v], indptr[v + 1]):
            w = indices[p]
            dw = deg[w]
            if dw > dv:
                first = bins[dw]
                other = vert[first]
                if other != w:
                    slot = pos[w]
                    vert[first] = w
                    vert[slot] = other
                    pos[w] = first
                    pos[other] = slot
                bins[dw] = first + 1
                deg[w] = dw - 1
    # vert is now the processing order and deg has settled into λ
    return PeelingResult(lam=deg, max_lambda=max_lambda, order=vert)


def csr_truss_peel(csr: CSRGraph, use_numpy: bool | None = None) -> PeelingResult:
    """(2,3) peel: triangle level λ₃ of every edge, by edge id.

    Two strategies, selected by ``use_numpy`` (``None`` = automatic):

    * **replay** (numpy): list all triangles vectorised once
      (:func:`~repro.graph.csr.csr_triangle_edge_ids`), lay the two
      companion edge ids of every (edge, triangle) incidence into flat
      arrays, and peel by walking that incidence — the inner loop is a pair
      of list reads and a couple of compares;
    * **scan** (fallback): recompute each popped edge's triangles on the
      fly with a scan-the-shorter / bisect-the-longer intersection of the
      two adjacency runs, Θ(|K₃|·s) memory saved.

    λ output is identical either way.
    """
    if use_numpy is None:
        use_numpy = (HAVE_NUMPY and csr.m >= _NUMPY_MIN_TRIANGLE_EDGES
                     and isinstance(csr, CSRGraph))
    if use_numpy:
        return _truss_peel_replay(csr)
    return _truss_peel_scan(csr)


def truss_incidence(csr: CSRGraph,
                    use_numpy: bool | None = None,
                    ) -> tuple[list[int], list[int], list[int], list[int]]:
    """Materialised edge→triangle incidence: ``(sup, ptr, comp1, comp2)``.

    ``sup[e]`` is the triangle count of edge ``e`` (initial ω₃); incidence
    slots ``ptr[e] .. ptr[e+1]`` hold, in the two aligned companion arrays,
    the other two edge ids of each triangle through ``e``.  With numpy the
    whole structure falls out of one vectorised triangle listing
    (:func:`~repro.graph.csr.csr_triangle_edge_ids`) plus an argsort; the
    fallback enumerates triangles with merge scans and counting-sorts them
    into the same layout.  Shared by the replay truss peel and the direct
    (2,3) hierarchy construction.
    """
    m = csr.m
    if use_numpy is None:
        use_numpy = (HAVE_NUMPY and m >= _NUMPY_MIN_TRIANGLE_EDGES
                     and isinstance(csr, CSRGraph))
    if use_numpy:
        sup, ptr, (comp1, comp2) = _truss_incidence_numpy(csr)
        return sup.tolist(), ptr.tolist(), comp1.tolist(), comp2.tolist()

    indptr, indices, eids = csr.hot_arrays()
    bisect = bisect_left
    triples: list[tuple[int, int, int]] = []
    sup = [0] * m
    for u in range(csr.n):
        u_end = indptr[u + 1]
        pu = bisect(indices, u, indptr[u], u_end)
        while pu < u_end:
            v = indices[pu]
            e_uv = eids[pu]
            i = pu + 1
            j = bisect(indices, v, indptr[v], indptr[v + 1])
            j_end = indptr[v + 1]
            while i < u_end and j < j_end:
                a = indices[i]
                b = indices[j]
                if a < b:
                    i += 1
                elif b < a:
                    j += 1
                else:
                    ea = eids[i]
                    eb = eids[j]
                    triples.append((e_uv, ea, eb))
                    sup[e_uv] += 1
                    sup[ea] += 1
                    sup[eb] += 1
                    i += 1
                    j += 1
            pu += 1
    ptr = [0] * (m + 1)
    for e in range(m):
        ptr[e + 1] = ptr[e] + sup[e]
    total = ptr[m]
    comp1 = [0] * total
    comp2 = [0] * total
    cursor = ptr[:m]
    for ea, eb, ec in triples:
        slot = cursor[ea]
        comp1[slot] = eb
        comp2[slot] = ec
        cursor[ea] = slot + 1
        slot = cursor[eb]
        comp1[slot] = ea
        comp2[slot] = ec
        cursor[eb] = slot + 1
        slot = cursor[ec]
        comp1[slot] = ea
        comp2[slot] = eb
        cursor[ec] = slot + 1
    return sup, ptr, comp1, comp2


def _truss_peel_replay(csr: CSRGraph) -> PeelingResult:
    """Materialised-incidence truss peel (vectorised set-up, flat replay)."""
    m = csr.m
    sup, ptr, comp1, comp2 = truss_incidence(csr, use_numpy=True)

    bins, vert, pos = bucket_order(sup)

    processed = bytearray(m)
    max_lambda = 0
    for i in range(m):
        e = vert[i]
        k = sup[e]
        if k > max_lambda:
            max_lambda = k
        for slot in range(ptr[e], ptr[e + 1]):
            ea = comp1[slot]
            eb = comp2[slot]
            # a triangle is spent once any of its edges is peeled
            if processed[ea] or processed[eb]:
                continue
            if sup[ea] > k:
                d = sup[ea]
                first = bins[d]
                other = vert[first]
                if other != ea:
                    swap = pos[ea]
                    vert[first] = ea
                    vert[swap] = other
                    pos[ea] = first
                    pos[other] = swap
                bins[d] = first + 1
                sup[ea] = d - 1
            if sup[eb] > k:
                d = sup[eb]
                first = bins[d]
                other = vert[first]
                if other != eb:
                    swap = pos[eb]
                    vert[first] = eb
                    vert[swap] = other
                    pos[eb] = first
                    pos[other] = swap
                bins[d] = first + 1
                sup[eb] = d - 1
        processed[e] = 1
    return PeelingResult(lam=sup, max_lambda=max_lambda, order=vert)


def _truss_peel_scan(csr: CSRGraph) -> PeelingResult:
    """Recompute-on-the-fly truss peel (no numpy, no materialisation)."""
    m = csr.m
    indptr, indices, eids = csr.hot_arrays()
    esrc, etgt = csr.esrc, csr.etgt
    sup = csr_edge_support(csr, use_numpy=False)
    bins, vert, pos = bucket_order(sup)

    processed = bytearray(m)
    bisect = bisect_left
    max_lambda = 0
    for i in range(m):
        e = vert[i]
        k = sup[e]
        if k > max_lambda:
            max_lambda = k
        u = esrc[e]
        v = etgt[e]
        # every triangle through (u, v): scan the shorter adjacency run,
        # bisect the longer (C-speed, and the window only shrinks because
        # both runs are sorted)
        a_lo, a_hi = indptr[u], indptr[u + 1]
        b_lo, b_hi = indptr[v], indptr[v + 1]
        if a_hi - a_lo > b_hi - b_lo:
            a_lo, a_hi, b_lo, b_hi = b_lo, b_hi, a_lo, a_hi
        for p in range(a_lo, a_hi):
            w = indices[p]
            q = bisect(indices, w, b_lo, b_hi)
            if q >= b_hi:
                break
            if indices[q] != w:
                b_lo = q
                continue
            b_lo = q + 1
            e1 = eids[p]
            e2 = eids[q]
            # a triangle is spent once any of its edges is peeled
            if not processed[e1] and not processed[e2]:
                if sup[e1] > k:
                    d = sup[e1]
                    first = bins[d]
                    other = vert[first]
                    if other != e1:
                        slot = pos[e1]
                        vert[first] = e1
                        vert[slot] = other
                        pos[e1] = first
                        pos[other] = slot
                    bins[d] = first + 1
                    sup[e1] = d - 1
                if sup[e2] > k:
                    d = sup[e2]
                    first = bins[d]
                    other = vert[first]
                    if other != e2:
                        slot = pos[e2]
                        vert[first] = e2
                        vert[slot] = other
                        pos[e2] = first
                        pos[other] = slot
                    bins[d] = first + 1
                    sup[e2] = d - 1
        processed[e] = 1
    return PeelingResult(lam=sup, max_lambda=max_lambda, order=vert)


def _truss_incidence_numpy(csr: CSRGraph):
    """Vectorised edge→triangle incidence as numpy arrays:
    ``(sup, ptr, (comp1, comp2))``."""
    from repro.graph.csr import fill_incidence

    e1, e2, e3 = csr_triangle_edge_ids(csr)
    return fill_incidence([e1, e2, e3], [(e2, e3), (e1, e3), (e1, e2)],
                          csr.m)


def truss_incidence_arrays(csr: CSRGraph):
    """:func:`truss_incidence` as int64 numpy arrays: ``(sup, ptr,
    (comp1, comp2))`` — what the bulk peel consumes, without the list
    round-trip (requires numpy)."""
    import numpy as np

    if csr.m >= _NUMPY_MIN_TRIANGLE_EDGES:
        return _truss_incidence_numpy(csr)
    sup, ptr, comp1, comp2 = truss_incidence(csr, use_numpy=False)
    return (np.asarray(sup, dtype=np.int64),
            np.asarray(ptr, dtype=np.int64),
            (np.asarray(comp1, dtype=np.int64),
             np.asarray(comp2, dtype=np.int64)))


def _nucleus34_incidence_numpy(csr: CSRGraph):
    """Vectorised triangle→K₄ incidence: ``(triangles, sup, ptr, comps)``
    with numpy arrays (callers guard ``n < _MAX_KEYED_N``)."""
    from repro.graph.csr import _k4_numpy, fill_incidence

    tu, tv, tw, q1, q2, q3, q4 = _k4_numpy(csr)
    triangles = list(zip(tu.tolist(), tv.tolist(), tw.tolist(), strict=True))
    # quad-major occurrence order + stable argsort lays each triangle's
    # slots out exactly as the python cursor fill does
    sup, ptr, comps = fill_incidence(
        [q1, q2, q3, q4],
        [(q2, q3, q4), (q1, q3, q4), (q1, q2, q4), (q1, q2, q3)],
        len(triangles))
    return triangles, sup, ptr, comps


def nucleus34_incidence_arrays(csr: CSRGraph):
    """:func:`nucleus34_incidence` as int64 numpy arrays (requires
    numpy): ``(triangles, sup, ptr, (c1, c2, c3))``."""
    import numpy as np

    if csr.m >= _NUMPY_MIN_TRIANGLE_EDGES and csr.n < _MAX_KEYED_N:
        return _nucleus34_incidence_numpy(csr)
    triangles, sup, ptr, comps = nucleus34_incidence(csr, use_numpy=False)
    return (triangles, np.asarray(sup, dtype=np.int64),
            np.asarray(ptr, dtype=np.int64),
            tuple(np.asarray(c, dtype=np.int64) for c in comps))


def nucleus34_incidence(
        csr: CSRGraph, use_numpy: bool | None = None,
) -> tuple[list[tuple[int, int, int]], list[int], list[int],
           tuple[list[int], list[int], list[int]]]:
    """Materialised triangle→K₄ incidence: ``(triangles, sup, ptr, comps)``.

    ``triangles`` is the lex-ordered triple list (index = triangle id, the
    ids both backends' (3,4) views use); ``sup[t]`` the K₄ count of triangle
    ``t`` (initial ω₄); slots ``ptr[t] .. ptr[t+1]`` of the three aligned
    companion arrays hold the other three triangle ids of each K₄ through
    ``t``.  Shared by the direct (3,4) peel and hierarchy construction.

    With numpy available both the K₄ listing and the incidence fill run
    vectorised (quad-major stable sort reproduces the cursor fill slot for
    slot); the python fallback below is the reference layout.
    """
    if use_numpy is None:
        use_numpy = (HAVE_NUMPY and csr.m >= _NUMPY_MIN_TRIANGLE_EDGES
                     and csr.n < _MAX_KEYED_N and isinstance(csr, CSRGraph))
    if use_numpy:
        triangles, sup, ptr, comps = _nucleus34_incidence_numpy(csr)
        return (triangles, sup.tolist(), ptr.tolist(),
                tuple(c.tolist() for c in comps))
    triangles, quads = csr_k4_triangle_ids(csr, use_numpy=False)
    t = len(triangles)
    sup = [0] * t
    for quad in quads:
        for tid in quad:
            sup[tid] += 1
    ptr = [0] * (t + 1)
    for tid in range(t):
        ptr[tid + 1] = ptr[tid] + sup[tid]
    total = ptr[t]
    c1 = [0] * total
    c2 = [0] * total
    c3 = [0] * total
    cursor = ptr[:t]
    q1, q2, q3, q4 = quads
    for i in range(len(q1)):
        a = q1[i]
        b = q2[i]
        c = q3[i]
        d = q4[i]
        slot = cursor[a]
        c1[slot] = b
        c2[slot] = c
        c3[slot] = d
        cursor[a] = slot + 1
        slot = cursor[b]
        c1[slot] = a
        c2[slot] = c
        c3[slot] = d
        cursor[b] = slot + 1
        slot = cursor[c]
        c1[slot] = a
        c2[slot] = b
        c3[slot] = d
        cursor[c] = slot + 1
        slot = cursor[d]
        c1[slot] = a
        c2[slot] = b
        c3[slot] = c
        cursor[d] = slot + 1
    return triangles, sup, ptr, (c1, c2, c3)


def csr_nucleus34_peel(csr: CSRGraph) -> PeelingResult:
    """(3,4) peel: K₄ level λ₄ of every triangle, by lex triangle id.

    Replays the materialised incidence of :func:`nucleus34_incidence`
    exactly like the replay truss peel, with three companion arrays instead
    of two — no dict lookups or set intersections in the loop.
    """
    _, sup, ptr, (c1, c2, c3) = nucleus34_incidence(csr)
    t = len(sup)
    bins, vert, pos = bucket_order(sup)

    processed = bytearray(t)
    max_lambda = 0
    for i in range(t):
        u = vert[i]
        k = sup[u]
        if k > max_lambda:
            max_lambda = k
        for slot in range(ptr[u], ptr[u + 1]):
            # a K4 is spent once any of its triangles is peeled
            ta = c1[slot]
            if processed[ta]:
                continue
            tb = c2[slot]
            if processed[tb]:
                continue
            tc = c3[slot]
            if processed[tc]:
                continue
            for v in (ta, tb, tc):
                d = sup[v]
                if d > k:
                    first = bins[d]
                    other = vert[first]
                    if other != v:
                        swap = pos[v]
                        vert[first] = v
                        vert[swap] = other
                        pos[v] = first
                        pos[other] = swap
                    bins[d] = first + 1
                    sup[v] = d - 1
        processed[u] = 1
    return PeelingResult(lam=sup, max_lambda=max_lambda, order=vert)
