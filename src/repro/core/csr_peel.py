"""Direct peels over the CSR layout: the hot paths, fully inlined.

The generic :func:`repro.core.peeling.peel` is shaped around a
``CellView`` — per-cell generator calls, tuple allocations, a queue object
per decrement.  For the two workloads every benchmark and most callers
actually run, (1,2) k-core and (2,3) k-truss, these functions run the same
Set-λ algorithm straight over the flat arrays of a
:class:`~repro.graph.csr.CSRGraph`:

* :func:`csr_core_peel` is Batagelj–Zaversnik verbatim: one counting sort,
  then one swap per degree decrement, zero allocations in the loop;
* :func:`csr_truss_peel` peels edges with merge-scan triangle queries —
  the aligned ``eids`` array yields the two companion edge ids of every
  triangle without a single hash lookup.

Both return the same :class:`~repro.core.peeling.PeelingResult` as the
generic peel, with identical λ (λ is unique; only tie order differs).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.peeling import PeelingResult
from repro.graph.csr import (
    _NUMPY_MIN_TRIANGLE_EDGES,
    CSRGraph,
    HAVE_NUMPY,
    csr_edge_support,
    csr_triangle_edge_ids,
)

__all__ = ["csr_core_peel", "csr_truss_peel"]


def csr_core_peel(csr: CSRGraph) -> PeelingResult:
    """(1,2) peel: core number λ₂ of every vertex, in degeneracy order."""
    n = csr.n
    indptr, indices, _ = csr.hot_arrays()
    deg = csr.degrees()
    top = max(deg, default=0)
    # counting sort: vert holds vertices by current degree, pos inverts it,
    # bins[d] is the first slot of the degree-d block
    bins = [0] * (top + 2)
    for d in deg:
        bins[d + 1] += 1
    for d in range(top + 1):
        bins[d + 1] += bins[d]
    vert = [0] * n
    pos = [0] * n
    cursor = bins[:top + 1]
    for v in range(n):
        slot = cursor[deg[v]]
        vert[slot] = v
        pos[v] = slot
        cursor[deg[v]] = slot + 1

    max_lambda = 0
    for i in range(n):
        v = vert[i]
        dv = deg[v]
        if dv > max_lambda:
            max_lambda = dv
        for p in range(indptr[v], indptr[v + 1]):
            w = indices[p]
            dw = deg[w]
            if dw > dv:
                first = bins[dw]
                other = vert[first]
                if other != w:
                    slot = pos[w]
                    vert[first] = w
                    vert[slot] = other
                    pos[w] = first
                    pos[other] = slot
                bins[dw] = first + 1
                deg[w] = dw - 1
    # vert is now the processing order and deg has settled into λ
    return PeelingResult(lam=deg, max_lambda=max_lambda, order=vert)


def csr_truss_peel(csr: CSRGraph, use_numpy: bool | None = None) -> PeelingResult:
    """(2,3) peel: triangle level λ₃ of every edge, by edge id.

    Two strategies, selected by ``use_numpy`` (``None`` = automatic):

    * **replay** (numpy): list all triangles vectorised once
      (:func:`~repro.graph.csr.csr_triangle_edge_ids`), lay the two
      companion edge ids of every (edge, triangle) incidence into flat
      arrays, and peel by walking that incidence — the inner loop is a pair
      of list reads and a couple of compares;
    * **scan** (fallback): recompute each popped edge's triangles on the
      fly with a scan-the-shorter / bisect-the-longer intersection of the
      two adjacency runs, Θ(|K₃|·s) memory saved.

    λ output is identical either way.
    """
    if use_numpy is None:
        use_numpy = HAVE_NUMPY and csr.m >= _NUMPY_MIN_TRIANGLE_EDGES
    if use_numpy:
        return _truss_peel_replay(csr)
    return _truss_peel_scan(csr)


def _truss_peel_replay(csr: CSRGraph) -> PeelingResult:
    """Materialised-incidence truss peel (numpy set-up, flat replay)."""
    import numpy as np

    m = csr.m
    e1, e2, e3 = csr_triangle_edge_ids(csr)
    sup = np.bincount(np.concatenate([e1, e2, e3]), minlength=m).tolist()
    # incidence CSR: for each edge occurrence, the two companion edge ids
    occ = np.concatenate([e1, e2, e3])
    order = np.argsort(occ, kind="stable")
    comp1 = np.concatenate([e2, e1, e1])[order].tolist()
    comp2 = np.concatenate([e3, e3, e2])[order].tolist()
    inc_ptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(occ, minlength=m), out=inc_ptr[1:])
    ptr = inc_ptr.tolist()

    top = max(sup, default=0)
    bins = [0] * (top + 2)
    for s in sup:
        bins[s + 1] += 1
    for s in range(top + 1):
        bins[s + 1] += bins[s]
    vert = [0] * m
    pos = [0] * m
    cursor = bins[:top + 1]
    for e in range(m):
        slot = cursor[sup[e]]
        vert[slot] = e
        pos[e] = slot
        cursor[sup[e]] = slot + 1

    processed = bytearray(m)
    max_lambda = 0
    for i in range(m):
        e = vert[i]
        k = sup[e]
        if k > max_lambda:
            max_lambda = k
        for slot in range(ptr[e], ptr[e + 1]):
            ea = comp1[slot]
            eb = comp2[slot]
            # a triangle is spent once any of its edges is peeled
            if processed[ea] or processed[eb]:
                continue
            if sup[ea] > k:
                d = sup[ea]
                first = bins[d]
                other = vert[first]
                if other != ea:
                    swap = pos[ea]
                    vert[first] = ea
                    vert[swap] = other
                    pos[ea] = first
                    pos[other] = swap
                bins[d] = first + 1
                sup[ea] = d - 1
            if sup[eb] > k:
                d = sup[eb]
                first = bins[d]
                other = vert[first]
                if other != eb:
                    swap = pos[eb]
                    vert[first] = eb
                    vert[swap] = other
                    pos[eb] = first
                    pos[other] = swap
                bins[d] = first + 1
                sup[eb] = d - 1
        processed[e] = 1
    return PeelingResult(lam=sup, max_lambda=max_lambda, order=vert)


def _truss_peel_scan(csr: CSRGraph) -> PeelingResult:
    """Recompute-on-the-fly truss peel (no numpy, no materialisation)."""
    m = csr.m
    indptr, indices, eids = csr.hot_arrays()
    esrc, etgt = csr.esrc, csr.etgt
    sup = csr_edge_support(csr, use_numpy=False)
    top = max(sup, default=0)
    bins = [0] * (top + 2)
    for s in sup:
        bins[s + 1] += 1
    for s in range(top + 1):
        bins[s + 1] += bins[s]
    vert = [0] * m
    pos = [0] * m
    cursor = bins[:top + 1]
    for e in range(m):
        slot = cursor[sup[e]]
        vert[slot] = e
        pos[e] = slot
        cursor[sup[e]] = slot + 1

    processed = bytearray(m)
    bisect = bisect_left
    max_lambda = 0
    for i in range(m):
        e = vert[i]
        k = sup[e]
        if k > max_lambda:
            max_lambda = k
        u = esrc[e]
        v = etgt[e]
        # every triangle through (u, v): scan the shorter adjacency run,
        # bisect the longer (C-speed, and the window only shrinks because
        # both runs are sorted)
        a_lo, a_hi = indptr[u], indptr[u + 1]
        b_lo, b_hi = indptr[v], indptr[v + 1]
        if a_hi - a_lo > b_hi - b_lo:
            a_lo, a_hi, b_lo, b_hi = b_lo, b_hi, a_lo, a_hi
        for p in range(a_lo, a_hi):
            w = indices[p]
            q = bisect(indices, w, b_lo, b_hi)
            if q >= b_hi:
                break
            if indices[q] != w:
                b_lo = q
                continue
            b_lo = q + 1
            e1 = eids[p]
            e2 = eids[q]
            # a triangle is spent once any of its edges is peeled
            if not processed[e1] and not processed[e2]:
                if sup[e1] > k:
                    d = sup[e1]
                    first = bins[d]
                    other = vert[first]
                    if other != e1:
                        slot = pos[e1]
                        vert[first] = e1
                        vert[slot] = other
                        pos[e1] = first
                        pos[other] = slot
                    bins[d] = first + 1
                    sup[e1] = d - 1
                if sup[e2] > k:
                    d = sup[e2]
                    first = bins[d]
                    other = vert[first]
                    if other != e2:
                        slot = pos[e2]
                        vert[first] = e2
                        vert[slot] = other
                        pos[e2] = first
                        pos[other] = slot
                    bins[d] = first + 1
                    sup[e2] = d - 1
        processed[e] = 1
    return PeelingResult(lam=sup, max_lambda=max_lambda, order=vert)
