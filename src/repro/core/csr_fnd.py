"""Traversal-free hierarchy construction directly on the CSR arrays.

:mod:`repro.core.fnd` runs FastNucleusDecomposition (paper Alg. 8/9)
generically over a :class:`~repro.core.views.CellView` — per-cell generator
calls and a tuple per coface.  This module fuses the *extended* peel and
``BuildHierarchy`` with the flat layouts the direct peels already use, so
the paper's headline algorithm runs end-to-end without touching the object
graph:

* :func:`csr_fnd_core` — (1,2): the Batagelj–Zaversnik array peel of
  :func:`~repro.core.csr_peel.csr_core_peel`, extended with the processed-
  neighbour inspection that feeds sub-nucleus assignment and the deferred
  ``ADJ`` pairs;
* :func:`csr_fnd_truss` / :func:`csr_fnd_nucleus34` — (2,3) and (3,4):
  replay the materialised edge→triangle / triangle→K₄ incidences of
  :mod:`repro.core.csr_peel` through one shared extended-peel loop.

All hierarchy bookkeeping lives in an
:class:`~repro.core.disjoint_set.ArrayRootedForest` (flat ``int``
parent/root/rank arrays); ``BuildHierarchy`` itself is shared with the
object engine.  Output contract: λ arrays are elementwise identical to the
object engine's (cell ids are representation-independent) and the
*condensed* hierarchy — node λ multiset plus cell→nucleus map — is the
same; only the non-maximal T* skeleton may differ in tie order.
"""

from __future__ import annotations

import time

from repro.core.csr_peel import (
    bucket_order,
    nucleus34_incidence,
    truss_incidence,
)
from repro.core.disjoint_set import ArrayRootedForest
from repro.core.fnd import FndInstrumentation, _build_hierarchy
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.core.views import CellView, CSREdgeView, CSRTriangleView, VertexView
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

__all__ = [
    "CSR_FND_RS",
    "csr_fnd_core",
    "csr_fnd_decomposition",
    "csr_fnd_nucleus34",
    "csr_fnd_truss",
]

#: the (r, s) pairs with a direct CSR FND path (the paper's evaluated cases)
CSR_FND_RS = ((1, 2), (2, 3), (3, 4))


def _finish(r: int, s: int, lam: list[int], max_lambda: int, order: list[int],
            comp: list[int], forest: ArrayRootedForest, node_lambda: list[int],
            adj: list[tuple[int, int]],
            instrumentation: FndInstrumentation | None,
            ) -> tuple[PeelingResult, Hierarchy]:
    """BuildHierarchy + root assembly, shared by all three direct peels."""
    build_start = time.perf_counter()
    _build_hierarchy(adj, forest, node_lambda, max_lambda)
    build_seconds = time.perf_counter() - build_start

    if instrumentation is not None:
        instrumentation.num_subnuclei = len(node_lambda)
        instrumentation.num_downward_connections = len(adj)
        instrumentation.build_seconds = build_seconds

    root = forest.make_node()
    node_lambda.append(0)
    fparent = forest.parent
    for node in range(root):
        if fparent[node] < 0:
            fparent[node] = root
    for cell in range(len(comp)):
        if comp[cell] < 0:
            comp[cell] = root
    hierarchy = Hierarchy(r, s, lam, node_lambda, forest.parents_or_none(),
                          comp, root, algorithm="fnd")
    peeling = PeelingResult(lam=lam, max_lambda=max_lambda, order=order)
    return peeling, hierarchy


def csr_fnd_core(csr: CSRGraph,
                 instrumentation: FndInstrumentation | None = None,
                 ) -> tuple[PeelingResult, Hierarchy]:
    """(1,2) FND: extended Batagelj–Zaversnik peel + BuildHierarchy.

    One pass over the adjacency arrays: unprocessed neighbours get the
    standard O(1) block-swap decrement; processed neighbours (λ settled, by
    monotonicity ≤ k) feed the sub-nucleus merge (λ = k) or the deferred
    ADJ pair (λ < k).
    """
    n = csr.n
    indptr, indices, _ = csr.hot_arrays()
    deg = [indptr[v + 1] - indptr[v] for v in range(n)]
    bins, vert, pos = bucket_order(deg)

    comp = [-1] * n
    forest = ArrayRootedForest()
    fparent = forest.parent
    froot = forest.root
    frank = forest.rank
    node_lambda: list[int] = []
    adj: list[tuple[int, int]] = []  # (higher-lambda node, lower-lambda node)
    adj_append = adj.append
    max_lambda = 0
    for i in range(n):
        u = vert[i]
        k = deg[u]
        if k > max_lambda:
            max_lambda = k
        comp_u = -1
        ru = -1  # cached root of comp_u (lazily found on the first merge)
        last_cv = -1
        pending: list[int] | None = None
        for p in range(indptr[u], indptr[u + 1]):
            v = indices[p]
            dv = deg[v]
            # deg > k can only be unprocessed, deg < k only processed
            # (settled lambda); pop position breaks the deg == k tie —
            # slots before i are exactly the already-peeled cells.
            if dv > k:
                first = bins[dv]
                other = vert[first]
                if other != v:
                    slot = pos[v]
                    vert[first] = v
                    vert[slot] = other
                    pos[v] = first
                    pos[other] = slot
                bins[dv] = first + 1
                deg[v] = dv - 1
            elif dv < k:
                if pending is None:
                    pending = [comp[v]]
                else:
                    pending.append(comp[v])
            elif pos[v] < i:
                cv = comp[v]
                if cv == comp_u or cv == last_cv:
                    continue
                last_cv = cv
                if comp_u == -1:
                    comp_u = cv
                    continue
                # Union-r of comp_u and cv, inlined (Find-r + Link-r)
                if ru < 0:
                    ru = comp_u
                    while froot[ru] >= 0:
                        ru = froot[ru]
                rv = cv
                while froot[rv] >= 0:
                    rv = froot[rv]
                while cv != rv:  # compress the walked path
                    nxt = froot[cv]
                    froot[cv] = rv
                    cv = nxt
                if rv != ru:
                    if frank[ru] > frank[rv]:
                        ru, rv = rv, ru
                    fparent[ru] = rv
                    froot[ru] = rv
                    if frank[ru] == frank[rv]:
                        frank[rv] += 1
                    ru = rv
        if comp_u == -1 and k >= 1:
            comp_u = len(fparent)  # make_node, inlined
            fparent.append(-1)
            froot.append(-1)
            frank.append(0)
            node_lambda.append(k)
        comp[u] = comp_u
        if pending is not None:
            for lower in pending:
                adj_append((comp_u, lower))
    # vert is now the processing order and deg has settled into lambda
    return _finish(1, 2, deg, max_lambda, vert, comp, forest, node_lambda,
                   adj, instrumentation)


def _incidence_fnd(r: int, s: int, sup: list[int], ptr: list[int],
                   comps: tuple[list[int], ...],
                   instrumentation: FndInstrumentation | None,
                   ) -> tuple[PeelingResult, Hierarchy]:
    """Extended peel + BuildHierarchy over a materialised incidence.

    ``sup`` holds the initial s-clique degrees (mutated into λ in place);
    incidence slots ``ptr[u] .. ptr[u+1]`` of the aligned companion arrays
    hold the other cells of each s-clique through ``u``.  Per s-clique, only
    the minimum-λ *processed* companion matters (relations among the others
    were recorded when they were peeled); a fully unprocessed s-clique is
    the standard peeling decrement.
    """
    t = len(sup)
    bins, vert, pos = bucket_order(sup)

    comp = [-1] * t
    forest = ArrayRootedForest()
    fparent = forest.parent
    froot = forest.root
    frank = forest.rank
    node_lambda: list[int] = []
    adj: list[tuple[int, int]] = []
    adj_append = adj.append
    max_lambda = 0
    for i in range(t):
        u = vert[i]
        k = sup[u]
        if k > max_lambda:
            max_lambda = k
        comp_u = -1
        ru = -1  # cached root of comp_u (lazily found on the first merge)
        last_cw = -1
        pending: list[int] | None = None
        for slot in range(ptr[u], ptr[u + 1]):
            w = -1  # processed cell of minimum lambda in this s-clique
            wl = k
            for arr in comps:
                v = arr[slot]
                vl = sup[v]
                # sup < k can only be a settled lambda (processed); sup > k
                # only an unprocessed degree; pop position (slots before i
                # hold exactly the peeled cells) breaks the == k tie.
                if vl < wl:
                    w = v
                    wl = vl
                elif w == -1 and vl == k and pos[v] < i:
                    w = v
            if w == -1:
                for arr in comps:  # fresh s-clique: standard decrement
                    v = arr[slot]
                    d = sup[v]
                    if d > k:
                        first = bins[d]
                        other = vert[first]
                        if other != v:
                            swap = pos[v]
                            vert[first] = v
                            vert[swap] = other
                            pos[v] = first
                            pos[other] = swap
                        bins[d] = first + 1
                        sup[v] = d - 1
            elif wl == k:
                cw = comp[w]
                if cw == comp_u or cw == last_cw:
                    continue
                last_cw = cw
                if comp_u == -1:
                    comp_u = cw
                    continue
                # Union-r of comp_u and cw, inlined (Find-r + Link-r)
                if ru < 0:
                    ru = comp_u
                    while froot[ru] >= 0:
                        ru = froot[ru]
                rw = cw
                while froot[rw] >= 0:
                    rw = froot[rw]
                while cw != rw:  # compress the walked path
                    nxt = froot[cw]
                    froot[cw] = rw
                    cw = nxt
                if rw != ru:
                    if frank[ru] > frank[rw]:
                        ru, rw = rw, ru
                    fparent[ru] = rw
                    froot[ru] = rw
                    if frank[ru] == frank[rw]:
                        frank[rw] += 1
                    ru = rw
            elif pending is None:  # 1 <= wl < k: defer the containment
                pending = [comp[w]]
            else:
                pending.append(comp[w])
        if comp_u == -1 and k >= 1:
            comp_u = len(fparent)  # make_node, inlined
            fparent.append(-1)
            froot.append(-1)
            frank.append(0)
            node_lambda.append(k)
        comp[u] = comp_u
        if pending is not None:
            for lower in pending:
                adj_append((comp_u, lower))
    return _finish(r, s, sup, max_lambda, vert, comp, forest, node_lambda,
                   adj, instrumentation)


def csr_fnd_truss(csr: CSRGraph,
                  instrumentation: FndInstrumentation | None = None,
                  ) -> tuple[PeelingResult, Hierarchy]:
    """(2,3) FND: extended peel over the materialised edge→triangle
    incidence, λ₃ and hierarchy by lexicographic edge id."""
    sup, ptr, comp1, comp2 = truss_incidence(csr)
    return _incidence_fnd(2, 3, sup, ptr, (comp1, comp2), instrumentation)


def csr_fnd_nucleus34(csr: CSRGraph,
                      instrumentation: FndInstrumentation | None = None,
                      ) -> tuple[PeelingResult, Hierarchy,
                                 list[tuple[int, int, int]], list[int]]:
    """(3,4) FND over the triangle→K₄ incidence, by lex triangle id.

    Also returns the lex-ordered triangle list and the initial ω₄ degrees so
    callers can build a reporting view without re-enumerating cliques.
    """
    triangles, sup, ptr, comps = nucleus34_incidence(csr)
    degrees = list(sup)  # the peel settles sup into lambda in place
    peeling, hierarchy = _incidence_fnd(3, 4, sup, ptr, comps,
                                        instrumentation)
    return peeling, hierarchy, triangles, degrees


def csr_fnd_decomposition(csr: CSRGraph, r: int, s: int,
                          instrumentation: FndInstrumentation | None = None,
                          ) -> tuple[PeelingResult, Hierarchy, CellView]:
    """Dispatch to the direct (r, s) FND; also builds the reporting view.

    The view construction is free for (1,2)/(2,3) and reuses the triangle
    enumeration the peel already materialised for (3,4) — no object graph,
    and no second pass over the cliques.
    """
    if (r, s) == (1, 2):
        peeling, hierarchy = csr_fnd_core(csr, instrumentation)
        return peeling, hierarchy, VertexView(csr)
    if (r, s) == (2, 3):
        peeling, hierarchy = csr_fnd_truss(csr, instrumentation)
        return peeling, hierarchy, CSREdgeView(csr)
    if (r, s) == (3, 4):
        peeling, hierarchy, triangles, degrees = csr_fnd_nucleus34(
            csr, instrumentation)
        view = CSRTriangleView(csr, _enumeration=(triangles, degrees))
        return peeling, hierarchy, view
    raise InvalidParameterError(
        f"no direct CSR FND for (r, s) = ({r}, {s}); supported: {CSR_FND_RS}")
