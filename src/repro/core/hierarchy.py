"""Hierarchy-skeleton and condensed nucleus tree — the common output type.

Every hierarchy algorithm (Naive, DFT, FND, LCPS) produces a
:class:`Hierarchy`:

* a list of *skeleton nodes* (the paper's ``subnucleus`` structs), each with
  a λ value and a permanent ``parent`` pointer;
* ``comp`` — for every cell (r-clique), the skeleton node it belongs to;
* a distinguished *root* node with λ = 0 representing the whole graph.

For DFT the skeleton nodes are exactly the sub-(r,s) nuclei T_{r,s}; for FND
they are the non-maximal T*_{r,s}; for LCPS and Naive they are already whole
nuclei.  Whatever the granularity, *condensing* the skeleton — contracting
parent edges that join nodes of equal λ — yields the tree of k-(r,s) nuclei,
and further dropping member-less single-child chain nodes yields a canonical
form that is identical across all four algorithms (the basis of the
equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.disjoint_set import DisjointSetForest

__all__ = ["Hierarchy", "NucleusNode", "NucleusTree"]


@dataclass
class NucleusNode:
    """One k-(r,s) nucleus in the condensed tree."""

    id: int
    k: int
    parent: int | None
    children: list[int] = field(default_factory=list)
    own_cells: list[int] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent is None


class NucleusTree:
    """Condensed hierarchy: one node per nucleus, root = whole graph."""

    def __init__(self, nodes: list[NucleusNode], root: int):
        self.nodes = nodes
        self.root = root
        self._cell_nodes: list[int] | None = None

    def __len__(self) -> int:
        return len(self.nodes)

    def cell_nodes(self) -> list[int]:
        """``cell → node id`` for every cell, built once and cached.

        Cells are dense ``0 .. C-1`` (every cell is some node's own cell),
        so the map is a flat list — the common input to every query index.
        """
        if self._cell_nodes is None:
            total = sum(len(node.own_cells) for node in self.nodes)
            mapping = [self.root] * total
            for node in self.nodes:
                for cell in node.own_cells:
                    mapping[cell] = node.id
            self._cell_nodes = mapping
        return self._cell_nodes

    def __getitem__(self, node_id: int) -> NucleusNode:
        return self.nodes[node_id]

    def subtree_cells(self, node_id: int) -> list[int]:
        """All cells of the nucleus: own cells plus every descendant's."""
        out: list[int] = []
        stack = [node_id]
        while stack:
            node = self.nodes[stack.pop()]
            out.extend(node.own_cells)
            stack.extend(node.children)
        return out

    def nuclei(self, min_k: int = 1) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(k, cells)`` for every nucleus with k >= min_k.

        Member lists include descendants; the root (k=0, whole graph) is
        yielded only when ``min_k == 0``.
        """
        for node in self.nodes:
            if node.k >= min_k and (node.id != self.root or min_k == 0):
                yield node.k, self.subtree_cells(node.id)

    def canonical_nuclei(self) -> set[tuple[int, frozenset[int]]]:
        """Canonical nucleus family used for cross-algorithm equivalence.

        Chain nodes with no own cells and a single child describe the same
        cell set as their child at a smaller k; some algorithms materialise
        them (LCPS builds one node per level) and some do not, so they are
        dropped here.
        """
        out: set[tuple[int, frozenset[int]]] = set()
        for node in self.nodes:
            if node.id == self.root:
                continue
            if not node.own_cells and len(node.children) == 1:
                continue
            out.add((node.k, frozenset(self.subtree_cells(node.id))))
        return out

    def leaves(self) -> list[NucleusNode]:
        """Nuclei with no denser nucleus inside them."""
        return [n for n in self.nodes if not n.children]

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (root alone = 0)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node_id, d = stack.pop()
            best = max(best, d)
            stack.extend((c, d + 1) for c in self.nodes[node_id].children)
        return best

    def format(self, max_nodes: int = 200, label=None) -> str:
        """ASCII rendering of the tree (breadth-limited for big graphs)."""
        lines: list[str] = []
        emitted = 0

        def walk(node_id: int, indent: str) -> None:
            nonlocal emitted
            if emitted >= max_nodes:
                return
            node = self.nodes[node_id]
            extra = f" {label(node)}" if label else ""
            size = len(self.subtree_cells(node_id))
            lines.append(f"{indent}k={node.k} cells={size}{extra}")
            emitted += 1
            for child in sorted(node.children, key=lambda c: self.nodes[c].k):
                walk(child, indent + "  ")

        walk(self.root, "")
        if emitted >= max_nodes:
            lines.append("... (truncated)")
        return "\n".join(lines)


class Hierarchy:
    """Hierarchy-skeleton produced by a decomposition algorithm.

    Parameters mirror the paper's data layout: ``node_lambda[i]`` is the λ of
    skeleton node ``i``; ``parent[i]`` its permanent parent pointer (``None``
    only for the root); ``comp[c]`` maps cell ``c`` to its skeleton node
    (cells with λ = 0 map to the root).
    """

    def __init__(self, r: int, s: int, lam: list[int], node_lambda: list[int],
                 parent: list[int | None], comp: list[int], root: int,
                 algorithm: str = ""):
        self.r = r
        self.s = s
        self.lam = lam
        self.node_lambda = node_lambda
        self.parent = parent
        self.comp = comp
        self.root = root
        self.algorithm = algorithm
        self._members: list[list[int]] | None = None
        self._condensed: NucleusTree | None = None

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.lam)

    @property
    def num_nodes(self) -> int:
        """Number of skeleton nodes, root included."""
        return len(self.node_lambda)

    @property
    def num_subnuclei(self) -> int:
        """Skeleton nodes excluding the root: |T| for DFT, |T*| for FND."""
        return len(self.node_lambda) - 1

    @property
    def max_lambda(self) -> int:
        return max(self.lam, default=0)

    def members(self, node: int) -> list[int]:
        """Cells directly assigned to a skeleton node."""
        if self._members is None:
            members: list[list[int]] = [[] for _ in range(self.num_nodes)]
            for cell, node_id in enumerate(self.comp):
                members[node_id].append(cell)
            self._members = members
        return self._members[node]

    def children_lists(self) -> list[list[int]]:
        """Skeleton children per node."""
        children: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for node, par in enumerate(self.parent):
            if par is not None:
                children[par].append(node)
        return children

    # ------------------------------------------------------------------
    def condense(self) -> NucleusTree:
        """Contract equal-λ parent edges → the tree of k-(r,s) nuclei."""
        if self._condensed is not None:
            return self._condensed
        n_nodes = self.num_nodes
        dsu = DisjointSetForest(n_nodes)
        for node in range(n_nodes):
            par = self.parent[node]
            if par is not None and self.node_lambda[node] == self.node_lambda[par]:
                dsu.union(node, par)
        group_id: dict[int, int] = {}
        for node in range(n_nodes):
            rep = dsu.find(node)
            if rep not in group_id:
                group_id[rep] = len(group_id)
        nodes = [NucleusNode(id=i, k=-1, parent=None) for i in range(len(group_id))]
        for node in range(n_nodes):
            gid = group_id[dsu.find(node)]
            nodes[gid].k = self.node_lambda[node]
            par = self.parent[node]
            if par is not None and self.node_lambda[par] != self.node_lambda[node]:
                parent_gid = group_id[dsu.find(par)]
                nodes[gid].parent = parent_gid
        for cell, node_id in enumerate(self.comp):
            nodes[group_id[dsu.find(node_id)]].own_cells.append(cell)
        for node in nodes:
            if node.parent is not None:
                nodes[node.parent].children.append(node.id)
        root_gid = group_id[dsu.find(self.root)]
        self._condensed = NucleusTree(nodes, root_gid)
        return self._condensed

    def canonical_nuclei(self) -> set[tuple[int, frozenset[int]]]:
        """Canonical nucleus family; equal across all algorithms."""
        return self.condense().canonical_nuclei()

    def nucleus_of_cell(self, cell: int, k: int | None = None) -> list[int]:
        """Cells of the maximum k-(r,s) nucleus of ``cell``.

        With ``k=None`` uses k = λ(cell) (the *maximum* nucleus of the cell,
        Definition 3).  Otherwise returns the k-nucleus containing the cell,
        for any 1 <= k <= λ(cell).
        """
        target = self.lam[cell] if k is None else k
        if target > self.lam[cell]:
            raise ValueError(
                f"cell {cell} has lambda {self.lam[cell]} < requested k {target}")
        tree = self.condense()
        # locate the condensed node of the cell, then climb until k <= target
        node_id = tree.cell_nodes()[cell]
        while True:
            node = tree[node_id]
            par = node.parent
            if node.k <= target or par is None:
                break
            if tree[par].k < target:
                break
            node_id = par
        return tree.subtree_cells(node_id)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Internal-consistency checks; raises AssertionError on violation."""
        assert self.node_lambda[self.root] == 0, "root must have lambda 0"
        assert self.parent[self.root] is None, "root must be parentless"
        for node in range(self.num_nodes):
            par = self.parent[node]
            if node != self.root:
                assert par is not None, f"non-root node {node} lacks a parent"
                assert self.node_lambda[par] <= self.node_lambda[node], (
                    f"parent lambda exceeds child lambda at node {node}")
        for cell, node_id in enumerate(self.comp):
            assert 0 <= node_id < self.num_nodes, f"cell {cell} points nowhere"
            if node_id != self.root:
                assert self.node_lambda[node_id] == self.lam[cell], (
                    f"cell {cell} (lambda {self.lam[cell]}) assigned to node "
                    f"of lambda {self.node_lambda[node_id]}")
            else:
                assert self.lam[cell] == 0, (
                    f"cell {cell} with positive lambda assigned to root")
        # the skeleton must be acyclic (each node reaches the root)
        for node in range(self.num_nodes):
            seen = 0
            cur: int | None = node
            while cur is not None:
                cur = self.parent[cur]
                seen += 1
                assert seen <= self.num_nodes + 1, "cycle in hierarchy skeleton"

    def __repr__(self) -> str:
        return (f"<Hierarchy ({self.r},{self.s}) algorithm={self.algorithm!r} "
                f"cells={self.num_cells} subnuclei={self.num_subnuclei} "
                f"max_lambda={self.max_lambda}>")
