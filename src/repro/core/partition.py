"""Component-wise decomposition: split, decompose, merge hierarchies.

The paper's closing remark points at parallel peeling as future work.  The
embarrassingly-parallel slice of that is by connected component: nuclei
never span components, so each component's hierarchy can be built
independently and grafted under a single shared root.  This module
implements the split/merge machinery (and optional process-based
parallelism); the merged result is bit-identical in meaning to a
whole-graph run, which the tests assert via canonical nucleus families.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.decomposition import Decomposition, nucleus_decomposition
from repro.core.hierarchy import Hierarchy
from repro.core.views import build_view
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.components import connected_components

__all__ = ["decompose_by_components", "merge_hierarchies"]


def merge_hierarchies(parts: Sequence[tuple[Hierarchy, list[int]]],
                      r: int, s: int, num_cells: int,
                      algorithm: str = "merged") -> Hierarchy:
    """Merge per-component hierarchies into one over the full cell space.

    ``parts`` pairs each component hierarchy with ``cell_map``, the list
    translating that component's local cell ids to global ones.  Each
    component's skeleton is copied under a fresh shared root; component
    roots themselves are dropped (they were per-component placeholders).
    """
    node_lambda: list[int] = []
    parent: list[int | None] = []
    lam = [0] * num_cells
    comp = [-1] * num_cells
    pending_root: list[int] = []

    for hierarchy, cell_map in parts:
        if len(cell_map) != hierarchy.num_cells:
            raise InvalidParameterError(
                "cell_map size does not match the component hierarchy")
        offset = len(node_lambda)
        local_root = hierarchy.root
        # copy nodes except the local root, remembering the id shift
        shifted: dict[int, int] = {}
        for node in range(hierarchy.num_nodes):
            if node == local_root:
                continue
            shifted[node] = offset + len(shifted)
        for node in range(hierarchy.num_nodes):
            if node == local_root:
                continue
            node_lambda.append(hierarchy.node_lambda[node])
            par = hierarchy.parent[node]
            if par is None or par == local_root:
                parent.append(None)  # grafted to the global root later
                pending_root.append(shifted[node])
            else:
                parent.append(shifted[par])
        for local_cell, global_cell in enumerate(cell_map):
            lam[global_cell] = hierarchy.lam[local_cell]
            node = hierarchy.comp[local_cell]
            comp[global_cell] = shifted[node] if node != local_root else -1

    root = len(node_lambda)
    node_lambda.append(0)
    parent.append(None)
    for node in pending_root:
        parent[node] = root
    for cell in range(num_cells):
        if comp[cell] == -1:
            comp[cell] = root
    return Hierarchy(r, s, lam, node_lambda, parent, comp, root,
                     algorithm=algorithm)


def _component_cell_map(graph: Graph, component: list[int], sub: Graph,
                        r: int, s: int) -> list[int]:
    """Global cell ids for each local cell of the component subgraph."""
    if r == 1:
        return list(component)
    back = {i: v for i, v in enumerate(component)}
    view = build_view(sub, r, s)
    global_view = build_view(graph, r, s)
    # map by vertex tuples; build a lookup from tuple -> global cell id
    global_ids = {tuple(global_view.cell_vertices(c)): c
                  for c in range(global_view.num_cells)}
    out = []
    for cell in range(view.num_cells):
        vertices = tuple(sorted(back[v] for v in view.cell_vertices(cell)))
        out.append(global_ids[vertices])
    return out


def decompose_by_components(graph: Graph, r: int = 1, s: int = 2,
                            algorithm: str = "fnd",
                            processes: int | None = None) -> Decomposition:
    """Decompose each connected component separately and merge.

    With ``processes`` > 1 components are decomposed in a process pool
    (fork-based; falls back to sequential execution if multiprocessing is
    unavailable).  Equivalent to a whole-graph run — useful when the input
    is a union of many archives/snapshots, and a building block for the
    parallel peeling the paper leaves as future work.
    """
    components = connected_components(graph)
    jobs = [(graph.subgraph(component), component) for component in components]

    if processes and processes > 1 and len(jobs) > 1:
        import multiprocessing as mp
        with mp.get_context("fork").Pool(processes) as pool:
            results = pool.starmap(
                _decompose_subgraph, [(sub, r, s, algorithm) for sub, _ in jobs])
    else:
        results = [_decompose_subgraph(sub, r, s, algorithm)
                   for sub, _ in jobs]

    global_view = build_view(graph, r, s)
    parts = []
    peel_s = post_s = 0.0
    for (sub, component), result in zip(jobs, results, strict=True):
        assert result.hierarchy is not None
        cell_map = _component_cell_map(graph, component, sub, r, s)
        parts.append((result.hierarchy, cell_map))
        peel_s += result.peel_seconds
        post_s += result.post_seconds
    merged = merge_hierarchies(parts, r, s, global_view.num_cells,
                               algorithm=f"{algorithm}+components")
    return Decomposition(graph, r, s, f"{algorithm}+components", merged.lam,
                         merged, global_view, peel_s, post_s)


def _decompose_subgraph(sub: Graph, r: int, s: int,
                        algorithm: str) -> Decomposition:
    return nucleus_decomposition(sub, r, s, algorithm=algorithm)
