"""One peel kernel, every decomposition: the generic flat-array peel.

The paper's central observation is that k-core, k-truss, every (r, s)
nucleus — and the survey's weighted/directed/uncertain/temporal
adaptations — are the *same* peel-and-link skeleton with different cell
and degree definitions.  :func:`generic_peel` is that skeleton over flat
arrays, parameterised by

* the **initial cell values** (degrees ω of whatever the cells are),
* the **decrement rule** — either a *unit rule* (each spent s-clique
  lowers a neighbour cell by exactly one, the Batagelj–Zaversnik regime)
  or a *revalue rule* (the cell's value is recomputed outright, as
  weighted degrees and η-degrees require), and
* the **bucket kind** — the allocation-free flat block-swap layout for
  unit decrements, or lazy-invalidation queues (a float-capable heap, or
  the int :class:`~repro.core.bucket.MinBucketQueue`) for revalues.

The tuned direct peels in :mod:`repro.core.csr_peel` remain the
production hot paths; :func:`kernel_core_peel`, :func:`kernel_truss_peel`
and :func:`kernel_nucleus34_peel` re-derive them as kernel instances and
the test suite proves λ parity element for element.  The scenario
variants in :mod:`repro.kcore` build their fast engines on the same
kernel, so every future scenario is fast by construction.
"""

from __future__ import annotations

import heapq
import operator
from typing import Callable, Iterable, Union

from repro.core.bucket import MinBucketQueue
from repro.core.csr_peel import (
    bucket_order,
    nucleus34_incidence,
    truss_incidence,
)
from repro.core.peeling import PeelingResult
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

__all__ = [
    "BUCKET_KINDS",
    "generic_peel",
    "kernel_core_peel",
    "kernel_nucleus34_peel",
    "kernel_truss_peel",
]

#: ``"flat"`` — Batagelj–Zaversnik block-swap arrays (unit rules only);
#: ``"heap"`` — lazy-invalidation binary heap, int or float values;
#: ``"bucket"`` — lazy-invalidation :class:`MinBucketQueue`, int values;
#: ``"auto"`` — ``"flat"`` for unit rules, ``"heap"`` for revalue rules.
BUCKET_KINDS = ("auto", "flat", "heap", "bucket")

#: ``unit_rule(cell, peeled)`` yields the cells sharing a live s-clique
#: with ``cell``; the kernel applies the clamped unit decrement to each.
UnitRule = Callable[[int, bytearray], Iterable[int]]

#: ``revalue_rule(cell, k, peeled, current)`` yields ``(other, value)``
#: pairs re-deriving the degree of each affected live cell from scratch;
#: ``peeled[cell]`` is already set when the rule runs.
RevalueRule = Callable[
    [int, Union[int, float], bytearray, list],
    Iterable[tuple[int, Union[int, float]]],
]


def generic_peel(values: Iterable[Union[int, float]], *,
                 unit_rule: UnitRule | None = None,
                 revalue_rule: RevalueRule | None = None,
                 bucket: str = "auto") -> PeelingResult:
    """Run the parameterised peel and return λ of every cell.

    Exactly one of ``unit_rule`` / ``revalue_rule`` selects the decrement
    regime.  λ is the Matula–Beck running maximum of the minimum value at
    removal time, which for unit rules coincides with the settled
    clamped values — both conventions produce the unique core function,
    so parity with any reference engine is elementwise.
    """
    if (unit_rule is None) == (revalue_rule is None):
        raise InvalidParameterError(
            "generic_peel needs exactly one of unit_rule= / revalue_rule=")
    if bucket not in BUCKET_KINDS:
        raise InvalidParameterError(
            f"unknown bucket kind {bucket!r}; choose from {BUCKET_KINDS}")
    if unit_rule is not None:
        if bucket not in ("auto", "flat"):
            raise InvalidParameterError(
                "unit decrement rules run on the flat bucket layout; "
                f"bucket {bucket!r} applies to revalue rules")
        return _peel_flat(values, unit_rule)
    assert revalue_rule is not None  # the XOR guard above ensures it
    if bucket == "flat":
        raise InvalidParameterError(
            "revalue rules need a lazy queue (bucket 'heap' or 'bucket'); "
            "the flat layout supports unit decrements only")
    if bucket == "bucket":
        return _peel_lazy_bucket(values, revalue_rule)
    return _peel_heap(values, revalue_rule)


def _int_values(values: Iterable[Union[int, float]]) -> list[int]:
    """Cell values coerced to non-negative python ints (bucket indices)."""
    try:
        # floats intentionally reach index() and raise the TypeError below
        vals = [operator.index(v) for v in values]  # type: ignore[arg-type]
    except TypeError:
        raise InvalidParameterError(
            "integer cell values required for this bucket kind; use "
            "bucket='heap' for real-valued degrees") from None
    if vals and min(vals) < 0:
        raise InvalidParameterError("cell values must be non-negative")
    return vals


def _peel_flat(values: Iterable[Union[int, float]],
               rule: UnitRule) -> PeelingResult:
    """Unit-decrement peel on the Batagelj–Zaversnik block-swap arrays.

    The clamp ``value > k`` both spends each s-clique at most once per
    surviving cell and keeps pop values non-decreasing, so the array of
    settled values *is* λ (exactly as in the tuned direct peels).
    """
    vals = _int_values(values)
    n = len(vals)
    bins, vert, pos = bucket_order(vals)
    peeled = bytearray(n)
    max_lambda = 0
    for i in range(n):
        cell = vert[i]
        k = vals[cell]
        if k > max_lambda:
            max_lambda = k
        for other in rule(cell, peeled):
            d = vals[other]
            if d > k:
                first = bins[d]
                head = vert[first]
                if head != other:
                    slot = pos[other]
                    vert[first] = other
                    vert[slot] = head
                    pos[other] = first
                    pos[head] = slot
                bins[d] = first + 1
                vals[other] = d - 1
        peeled[cell] = 1
    return PeelingResult(lam=vals, max_lambda=max_lambda, order=vert)


def _peel_heap(values: Iterable[Union[int, float]],
               rule: RevalueRule) -> PeelingResult:
    """Revalue peel on a lazy-invalidation heap (int or float values)."""
    current = list(values)
    n = len(current)
    zero = 0.0 if any(isinstance(v, float) for v in current) else 0
    lam: list = [zero] * n
    running = zero
    order: list[int] = []
    peeled = bytearray(n)
    heap = [(current[cell], cell) for cell in range(n)]
    heapq.heapify(heap)
    while heap:
        d, cell = heapq.heappop(heap)
        if peeled[cell] or d != current[cell]:
            continue
        peeled[cell] = 1
        order.append(cell)
        if d > running:
            running = d
        lam[cell] = running
        for other, value in rule(cell, d, peeled, current):
            if peeled[other] or value == current[other]:
                continue
            current[other] = value
            heapq.heappush(heap, (value, other))
    # revalue rules may settle float λ; PeelingResult declares the int case
    return PeelingResult(lam=lam, max_lambda=running,  # type: ignore[arg-type]
                         order=order)


def _peel_lazy_bucket(values: Iterable[Union[int, float]],
                      rule: RevalueRule) -> PeelingResult:
    """Revalue peel on the lazy int :class:`MinBucketQueue`."""
    current = _int_values(values)
    n = len(current)
    queue = MinBucketQueue(list(current))
    lam = [0] * n
    running = 0
    order: list[int] = []
    peeled = bytearray(n)
    while (popped := queue.pop()) is not None:
        cell, d = popped
        peeled[cell] = 1
        order.append(cell)
        if d > running:
            running = d
        lam[cell] = running
        for other, value in rule(cell, d, peeled, current):
            if peeled[other] or value == current[other]:
                continue
            current[other] = value
            queue.update(other, value)
    return PeelingResult(lam=lam, max_lambda=running, order=order)


def kernel_core_peel(csr: CSRGraph) -> PeelingResult:
    """(1,2) peel as a kernel instance: unit rule over the adjacency runs.

    λ (and even the peel order) matches :func:`repro.core.csr_peel.
    csr_core_peel` — the clamp excludes processed vertices without a
    ``peeled`` check, exactly as in the tuned loop.
    """
    indptr, indices, _ = csr.hot_arrays()

    def incident(v: int, peeled: bytearray) -> Iterable[int]:
        return (indices[p] for p in range(indptr[v], indptr[v + 1]))

    return generic_peel(list(csr.degrees()), unit_rule=incident)


def kernel_truss_peel(csr: CSRGraph) -> PeelingResult:
    """(2,3) peel as a kernel instance: unit rule over the materialised
    edge→triangle incidence (a triangle is spent once any of its edges is
    peeled, hence the companion ``peeled`` checks in the rule)."""
    sup, ptr, comp1, comp2 = truss_incidence(csr)

    def incident(e: int, peeled: bytearray) -> Iterable[int]:
        for slot in range(ptr[e], ptr[e + 1]):
            ea = comp1[slot]
            eb = comp2[slot]
            if peeled[ea] or peeled[eb]:
                continue
            yield ea
            yield eb

    return generic_peel(sup, unit_rule=incident)


def kernel_nucleus34_peel(csr: CSRGraph) -> PeelingResult:
    """(3,4) peel as a kernel instance: unit rule over the triangle→K₄
    incidence, three companions per K₄."""
    _, sup, ptr, (c1, c2, c3) = nucleus34_incidence(csr)

    def incident(t: int, peeled: bytearray) -> Iterable[int]:
        for slot in range(ptr[t], ptr[t + 1]):
            ta = c1[slot]
            if peeled[ta]:
                continue
            tb = c2[slot]
            if peeled[tb]:
                continue
            tc = c3[slot]
            if peeled[tc]:
                continue
            yield ta
            yield tb
            yield tc

    return generic_peel(sup, unit_rule=incident)
