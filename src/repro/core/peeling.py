"""The peeling phase: Set-λ (paper Algorithm 1), generic over cell views.

Repeatedly extract an unprocessed cell ``u`` of minimum s-clique degree ω,
fix ``λ(u) = ω(u)``, and decrement the degree of every unprocessed cell that
shares an s-clique with ``u`` — but only for s-cliques none of whose cells
has been processed yet (a processed cell means the s-clique was already
"spent" when that cell was peeled).

This is the classic Matula–Beck / Batagelj–Zaversnik bucket algorithm when
(r,s) = (1,2), the truss decomposition when (2,3), and the generic nucleus
peeling otherwise.  All hierarchy algorithms share this exact function, so
benchmark comparisons isolate the hierarchy-construction cost — same
methodology as the paper ("peeling phases of Hypo, Naive, DFT, and LCPS are
same").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.bucket import FlatBucketQueue, MinBucketQueue
from repro.core.views import CellView
from repro.errors import InvalidParameterError

__all__ = ["PeelingResult", "peel"]


@dataclass
class PeelingResult:
    """Output of the peeling phase.

    Attributes:
        lam: λ_s of every cell (the max k such that the cell is in some
            k-(r,s) nucleus); 0 for cells in no s-clique.
        max_lambda: largest λ value (0 on s-clique-free graphs).
        order: cells in processing (peeling) order — the degeneracy order
            for (1,2).
    """

    lam: list[int]
    max_lambda: int
    order: list[int]


class _HeapQueue:
    """heapq-backed drop-in for MinBucketQueue — the ablation the paper's
    bucket-sort choice is measured against (see benchmarks/bench_ablation)."""

    __slots__ = ("_heap", "_current")

    def __init__(self, priorities: list[int]):
        self._current = list(priorities)
        self._heap = [(p, item) for item, p in enumerate(priorities)]
        heapq.heapify(self._heap)

    def update(self, item: int, priority: int) -> None:
        self._current[item] = priority
        heapq.heappush(self._heap, (priority, item))

    def pop(self) -> tuple[int, int] | None:
        heap = self._heap
        current = self._current
        while heap:
            priority, item = heapq.heappop(heap)
            if current[item] == priority:
                current[item] = -1
                return item, priority
        return None


def peel(view: CellView, queue_kind: str = "bucket") -> PeelingResult:
    """Run Set-λ (Alg. 1) on a cell view and return all λ values.

    ``queue_kind`` selects the priority structure: ``"bucket"`` (the
    paper's choice, O(1) per operation with lazy invalidation), ``"flat"``
    (the allocation-free Batagelj–Zaversnik array layout — same asymptotics,
    smaller constants) or ``"heap"`` (O(log n), kept as an ablation
    baseline).
    """
    degrees = view.initial_degrees()
    lam = [0] * view.num_cells
    processed = [False] * view.num_cells
    order: list[int] = []
    if queue_kind == "bucket":
        queue = MinBucketQueue(degrees)
    elif queue_kind == "flat":
        queue = FlatBucketQueue(degrees)
    elif queue_kind == "heap":
        queue = _HeapQueue(degrees)
    else:
        raise InvalidParameterError(
            f"queue_kind must be 'bucket', 'flat' or 'heap', got {queue_kind!r}")
    max_lambda = 0

    while True:
        popped = queue.pop()
        if popped is None:
            break
        u, k = popped
        lam[u] = k
        if k > max_lambda:
            max_lambda = k
        order.append(u)
        for others in view.cofaces(u):
            if any(processed[v] for v in others):
                continue  # this s-clique was consumed by an earlier peel
            for v in others:
                if degrees[v] > k:
                    degrees[v] -= 1
                    queue.update(v, degrees[v])
        processed[u] = True

    return PeelingResult(lam=lam, max_lambda=max_lambda, order=order)
