"""FastNucleusDecomposition: hierarchy without traversal (Alg. 8/9).

The peeling loop already visits every s-clique around the cell being
processed; FND additionally inspects the *processed* cells it finds there.
Since λ values are assigned in non-decreasing order, a processed neighbour
``w`` satisfies λ(w) <= λ(u):

* λ(w) = λ(u): ``u`` and ``w`` are strongly connected at this level — assign
  ``u`` to ``w``'s (non-maximal) sub-nucleus or merge the two with Union-r;
* λ(w) < λ(u): ``u``'s structure is contained in the nucleus that will form
  around ``w`` — record the pair in ``ADJ`` for deferred processing.

Only the minimum-λ processed cell of each s-clique matters: relations among
the other processed cells were recorded when *they* were peeled, and the
s-clique connects structures precisely at its minimum λ.

``BuildHierarchy`` then bins the ADJ pairs by the λ of the lower endpoint and
replays them bottom-up (decreasing λ), using the same attach/merge discipline
as DF-traversal.  The skeleton nodes here are *non-maximal* sub-nuclei
T*_{r,s}; condensation yields exactly the same nuclei (paper Table 3 reports
|T*| only ~24% above |T| on real graphs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.bucket import FlatBucketQueue, MinBucketQueue
from repro.core.disjoint_set import ArrayRootedForest
from repro.core.hierarchy import Hierarchy
from repro.core.peeling import PeelingResult
from repro.core.views import CellView
from repro.errors import InvalidParameterError

__all__ = ["fnd_decomposition", "FndInstrumentation"]

#: the queue structures the extended peel accepts
QUEUE_KINDS = ("flat", "bucket")


@dataclass
class FndInstrumentation:
    """Counters exposed for Table 3: |T*_{r,s}| and |c↓(T*_{r,s})|.

    ``build_seconds`` records the BuildHierarchy (post-processing) share of
    the run, which is what Figure 6 plots for FND.
    """

    num_subnuclei: int = 0
    num_downward_connections: int = 0
    build_seconds: float = 0.0


def fnd_decomposition(
    view: CellView,
    instrumentation: FndInstrumentation | None = None,
    queue_kind: str = "flat",
) -> tuple[PeelingResult, Hierarchy]:
    """Run FND end-to-end: extended peeling, then BuildHierarchy.

    Returns the peeling result (λ values) and the hierarchy, computed in one
    pass without any traversal phase.  ``queue_kind`` is ``"flat"`` (the
    allocation-free array queue) or ``"bucket"`` (lazy bucket lists).
    """
    if queue_kind not in QUEUE_KINDS:
        raise InvalidParameterError(
            f"queue_kind must be one of {QUEUE_KINDS}, got {queue_kind!r}")
    n_cells = view.num_cells
    degrees = view.initial_degrees()
    lam = [0] * n_cells
    processed = [False] * n_cells
    order: list[int] = []
    comp = [-1] * n_cells
    forest = ArrayRootedForest()
    node_lambda: list[int] = []
    adj: list[tuple[int, int]] = []  # (higher-lambda node, lower-lambda node)
    queue = (FlatBucketQueue(degrees) if queue_kind == "flat"
             else MinBucketQueue(degrees))
    max_lambda = 0

    while True:
        popped = queue.pop()
        if popped is None:
            break
        u, k = popped
        lam[u] = k
        if k > max_lambda:
            max_lambda = k
        order.append(u)
        pending_lower: list[int] = []  # lower-lambda nodes seen before comp(u) exists
        for others in view.cofaces(u):
            w = -1  # processed cell of minimum lambda in this s-clique
            for v in others:
                if processed[v] and (w == -1 or lam[v] < lam[w]):
                    w = v
            if w == -1:
                for v in others:  # fresh s-clique: standard peeling decrement
                    if degrees[v] > k:
                        degrees[v] -= 1
                        queue.update(v, degrees[v])
            elif lam[w] == k:
                if comp[u] == -1:
                    comp[u] = comp[w]
                elif comp[u] != comp[w]:
                    forest.union(comp[u], comp[w])
            else:  # 1 <= lam[w] < k: defer the containment relation
                pending_lower.append(comp[w])
        if comp[u] == -1 and k >= 1:
            comp[u] = forest.make_node()
            node_lambda.append(k)
        for lower in pending_lower:
            adj.append((comp[u], lower))
        processed[u] = True

    build_start = time.perf_counter()
    _build_hierarchy(adj, forest, node_lambda, max_lambda)
    build_seconds = time.perf_counter() - build_start

    if instrumentation is not None:
        instrumentation.num_subnuclei = len(node_lambda)
        instrumentation.num_downward_connections = len(adj)
        instrumentation.build_seconds = build_seconds

    root = forest.make_node()
    node_lambda.append(0)
    for node in range(root):
        if forest.parent[node] < 0:
            forest.parent[node] = root
    for cell in range(n_cells):
        if comp[cell] == -1:
            comp[cell] = root
    hierarchy = Hierarchy(view.r, view.s, lam, node_lambda,
                          forest.parents_or_none(), comp, root,
                          algorithm="fnd")
    peeling = PeelingResult(lam=lam, max_lambda=max_lambda, order=order)
    return peeling, hierarchy


def _build_hierarchy(adj: list[tuple[int, int]], forest: ArrayRootedForest,
                     node_lambda: list[int], max_lambda: int) -> None:
    """BuildHierarchy (Alg. 9): replay ADJ pairs bottom-up, binned by λ."""
    bins: list[list[tuple[int, int]]] = [[] for _ in range(max_lambda + 1)]
    for s, t in adj:
        bins[node_lambda[t]].append((s, t))
    for level in range(max_lambda, 0, -1):
        merge: list[tuple[int, int]] = []
        for s, t in bins[level]:
            top_s = forest.find(s)
            top_t = forest.find(t)
            if top_s == top_t:
                continue
            if node_lambda[top_s] > node_lambda[top_t]:
                forest.attach(top_s, top_t)
            else:
                merge.append((top_s, top_t))
        for a, b in merge:
            forest.union(a, b)
