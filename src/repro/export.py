"""Hierarchy persistence and visualisation exports.

The paper's closing discussion (§6) suggests the hierarchy-skeleton itself —
not only the condensed nuclei — is an analysis object.  These helpers make
both portable:

* :func:`hierarchy_to_json` / :func:`hierarchy_from_json` — lossless
  round-trip of a :class:`~repro.core.hierarchy.Hierarchy`;
* :func:`tree_to_dot` — Graphviz rendering of the condensed nucleus tree;
* :func:`skeleton_to_dot` — Graphviz rendering of the raw skeleton
  (sub-nuclei and their parent links), the structure in the paper's Fig. 5.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.hierarchy import Hierarchy, NucleusTree
from repro.errors import GraphFormatError

__all__ = [
    "hierarchy_to_json",
    "hierarchy_from_json",
    "save_hierarchy",
    "load_hierarchy",
    "tree_to_dot",
    "skeleton_to_dot",
]


def hierarchy_to_json(hierarchy: Hierarchy) -> str:
    """Serialise a hierarchy (λ values, skeleton, membership) to JSON."""
    payload = {
        "r": hierarchy.r,
        "s": hierarchy.s,
        "algorithm": hierarchy.algorithm,
        "lam": hierarchy.lam,
        "node_lambda": hierarchy.node_lambda,
        "parent": [-1 if p is None else p for p in hierarchy.parent],
        "comp": hierarchy.comp,
        "root": hierarchy.root,
    }
    return json.dumps(payload)


def hierarchy_from_json(text: str) -> Hierarchy:
    """Inverse of :func:`hierarchy_to_json`."""
    try:
        payload = json.loads(text)
        hierarchy = Hierarchy(
            r=int(payload["r"]),
            s=int(payload["s"]),
            lam=[int(x) for x in payload["lam"]],
            node_lambda=[int(x) for x in payload["node_lambda"]],
            parent=[None if p == -1 else int(p) for p in payload["parent"]],
            comp=[int(x) for x in payload["comp"]],
            root=int(payload["root"]),
            algorithm=str(payload.get("algorithm", "")),
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"malformed hierarchy JSON: {exc}") from exc
    return hierarchy


def save_hierarchy(hierarchy: Hierarchy, path: str | Path) -> None:
    """Write a hierarchy to a JSON file."""
    Path(path).write_text(hierarchy_to_json(hierarchy))


def load_hierarchy(path: str | Path) -> Hierarchy:
    """Read a hierarchy from a JSON file."""
    return hierarchy_from_json(Path(path).read_text())


def tree_to_dot(tree: NucleusTree, name: str = "nuclei") -> str:
    """Graphviz DOT for the condensed nucleus tree.

    Node labels show k and the nucleus size (own + descendant cells);
    deeper nuclei are darker.
    """
    top = max((node.k for node in tree.nodes), default=1) or 1
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  node [shape=box, style=filled, fontname="Helvetica"];']
    for node in tree.nodes:
        size = len(tree.subtree_cells(node.id))
        share = node.k / top
        gray = int(95 - 55 * share)
        label = "root" if node.id == tree.root else f"k={node.k}\\n{size} cells"
        lines.append(f'  n{node.id} [label="{label}", fillcolor="gray{gray}"];')
    for node in tree.nodes:
        if node.parent is not None:
            lines.append(f"  n{node.parent} -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def skeleton_to_dot(hierarchy: Hierarchy, name: str = "skeleton") -> str:
    """Graphviz DOT for the raw hierarchy-skeleton (paper Fig. 5 style).

    Equal-λ parent links (disjoint-set 'thin edges') are drawn dashed;
    containment links solid.
    """
    lines = [f"digraph {name} {{", "  rankdir=BT;",
             '  node [shape=ellipse, fontname="Helvetica"];']
    for node in range(hierarchy.num_nodes):
        members = len(hierarchy.members(node))
        label = ("root" if node == hierarchy.root
                 else f"λ={hierarchy.node_lambda[node]} ({members})")
        lines.append(f'  n{node} [label="{label}"];')
    for node, parent in enumerate(hierarchy.parent):
        if parent is None:
            continue
        style = ("dashed"
                 if hierarchy.node_lambda[node] == hierarchy.node_lambda[parent]
                 else "solid")
        lines.append(f"  n{node} -> n{parent} [style={style}];")
    lines.append("}")
    return "\n".join(lines)
