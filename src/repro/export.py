"""Hierarchy persistence and visualisation exports.

The paper's closing discussion (§6) suggests the hierarchy-skeleton itself —
not only the condensed nuclei — is an analysis object.  These helpers make
both portable:

* :func:`hierarchy_to_json` / :func:`hierarchy_from_json` — lossless
  round-trip of a :class:`~repro.core.hierarchy.Hierarchy`;
* :func:`save_hierarchy_npz` / :func:`load_hierarchy_npz` — the same
  round-trip as flat binary arrays (fast to load, no JSON parse), the
  build-once half of the build-once/serve-many workflow —
  :func:`save_hierarchy` / :func:`load_hierarchy` dispatch on the
  ``.npz`` suffix;
* :func:`tree_to_dot` — Graphviz rendering of the condensed nucleus tree;
* :func:`skeleton_to_dot` — Graphviz rendering of the raw skeleton
  (sub-nuclei and their parent links), the structure in the paper's Fig. 5.
"""

from __future__ import annotations

import json
from pathlib import Path
from zipfile import BadZipFile

from repro.core.hierarchy import Hierarchy, NucleusTree
from repro.errors import GraphFormatError, InvalidParameterError

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = [
    "hierarchy_to_json",
    "hierarchy_from_json",
    "save_hierarchy",
    "load_hierarchy",
    "save_hierarchy_npz",
    "load_hierarchy_npz",
    "tree_to_dot",
    "skeleton_to_dot",
]

#: on-disk schema version of the ``.npz`` hierarchy payload
HIERARCHY_NPZ_FORMAT = 1

_NPZ_KEYS = ("format", "r", "s", "algorithm", "lam", "node_lambda",
             "parent", "comp", "root")


def hierarchy_to_json(hierarchy: Hierarchy) -> str:
    """Serialise a hierarchy (λ values, skeleton, membership) to JSON."""
    payload = {
        "r": hierarchy.r,
        "s": hierarchy.s,
        "algorithm": hierarchy.algorithm,
        "lam": hierarchy.lam,
        "node_lambda": hierarchy.node_lambda,
        "parent": [-1 if p is None else p for p in hierarchy.parent],
        "comp": hierarchy.comp,
        "root": hierarchy.root,
    }
    return json.dumps(payload)


def hierarchy_from_json(text: str) -> Hierarchy:
    """Inverse of :func:`hierarchy_to_json`."""
    try:
        payload = json.loads(text)
        hierarchy = Hierarchy(
            r=int(payload["r"]),
            s=int(payload["s"]),
            lam=[int(x) for x in payload["lam"]],
            node_lambda=[int(x) for x in payload["node_lambda"]],
            parent=[None if p == -1 else int(p) for p in payload["parent"]],
            comp=[int(x) for x in payload["comp"]],
            root=int(payload["root"]),
            algorithm=str(payload.get("algorithm", "")),
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"malformed hierarchy JSON: {exc}") from exc
    return hierarchy


def save_hierarchy(hierarchy: Hierarchy, path: str | Path) -> None:
    """Write a hierarchy to disk (``.npz`` → binary, anything else JSON)."""
    path = Path(path)
    if path.suffix == ".npz":
        save_hierarchy_npz(hierarchy, path)
        return
    path.write_text(hierarchy_to_json(hierarchy))


def load_hierarchy(path: str | Path) -> Hierarchy:
    """Read a hierarchy from disk (``.npz`` → binary, anything else JSON)."""
    path = Path(path)
    if path.suffix == ".npz":
        return load_hierarchy_npz(path)
    return hierarchy_from_json(path.read_text())


def save_hierarchy_npz(hierarchy: Hierarchy, path: str | Path) -> None:
    """Persist a hierarchy-skeleton as flat binary arrays (``.npz``).

    The payload is an uncompressed zip of ``.npy`` members — one
    contiguous binary blob per array, so loading is an ``fread`` per
    array instead of a JSON parse over every int.
    """
    if _np is None:
        raise InvalidParameterError(
            "hierarchy .npz persistence requires numpy (use the JSON "
            "format instead)")
    with open(path, "wb") as handle:  # savez would append ".npz"
        _save_hierarchy_arrays(handle, hierarchy)


def _save_hierarchy_arrays(handle, hierarchy: Hierarchy) -> None:
    _np.savez(
        handle,
        format=_np.int64(HIERARCHY_NPZ_FORMAT),
        r=_np.int64(hierarchy.r),
        s=_np.int64(hierarchy.s),
        algorithm=_np.str_(hierarchy.algorithm),
        lam=_np.asarray(hierarchy.lam, dtype=_np.int64),
        node_lambda=_np.asarray(hierarchy.node_lambda, dtype=_np.int64),
        parent=_np.asarray(
            [-1 if p is None else p for p in hierarchy.parent],
            dtype=_np.int64),
        comp=_np.asarray(hierarchy.comp, dtype=_np.int64),
        root=_np.int64(hierarchy.root),
    )


def load_hierarchy_npz(path: str | Path) -> Hierarchy:
    """Inverse of :func:`save_hierarchy_npz`."""
    if _np is None:
        raise InvalidParameterError(
            "hierarchy .npz persistence requires numpy (use the JSON "
            "format instead)")
    try:
        with _np.load(path, allow_pickle=False) as payload:
            missing = [key for key in _NPZ_KEYS if key not in payload.files]
            if missing:
                raise GraphFormatError(
                    f"{path}: not a hierarchy .npz "
                    f"(missing {', '.join(missing)})")
            version = int(payload["format"])
            if version != HIERARCHY_NPZ_FORMAT:
                raise GraphFormatError(
                    f"{path}: unsupported hierarchy format {version} "
                    f"(this build reads {HIERARCHY_NPZ_FORMAT})")
            return Hierarchy(
                r=int(payload["r"]),
                s=int(payload["s"]),
                lam=payload["lam"].tolist(),
                node_lambda=payload["node_lambda"].tolist(),
                parent=[None if p == -1 else p
                        for p in payload["parent"].tolist()],
                comp=payload["comp"].tolist(),
                root=int(payload["root"]),
                algorithm=str(payload["algorithm"]),
            )
    except (OSError, ValueError, BadZipFile) as exc:
        raise GraphFormatError(
            f"{path}: malformed hierarchy .npz: {exc}") from exc


def tree_to_dot(tree: NucleusTree, name: str = "nuclei") -> str:
    """Graphviz DOT for the condensed nucleus tree.

    Node labels show k and the nucleus size (own + descendant cells);
    deeper nuclei are darker.
    """
    top = max((node.k for node in tree.nodes), default=1) or 1
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  node [shape=box, style=filled, fontname="Helvetica"];']
    for node in tree.nodes:
        size = len(tree.subtree_cells(node.id))
        share = node.k / top
        gray = int(95 - 55 * share)
        label = "root" if node.id == tree.root else f"k={node.k}\\n{size} cells"
        lines.append(f'  n{node.id} [label="{label}", fillcolor="gray{gray}"];')
    for node in tree.nodes:
        if node.parent is not None:
            lines.append(f"  n{node.parent} -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def skeleton_to_dot(hierarchy: Hierarchy, name: str = "skeleton") -> str:
    """Graphviz DOT for the raw hierarchy-skeleton (paper Fig. 5 style).

    Equal-λ parent links (disjoint-set 'thin edges') are drawn dashed;
    containment links solid.
    """
    lines = [f"digraph {name} {{", "  rankdir=BT;",
             '  node [shape=ellipse, fontname="Helvetica"];']
    for node in range(hierarchy.num_nodes):
        members = len(hierarchy.members(node))
        label = ("root" if node == hierarchy.root
                 else f"λ={hierarchy.node_lambda[node]} ({members})")
        lines.append(f'  n{node} [label="{label}"];')
    for node, parent in enumerate(hierarchy.parent):
        if parent is None:
            continue
        style = ("dashed"
                 if hierarchy.node_lambda[node] == hierarchy.node_lambda[parent]
                 else "solid")
        lines.append(f"  n{node} -> n{parent} [style={style}];")
    lines.append("}")
    return "\n".join(lines)
