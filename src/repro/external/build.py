"""Out-of-core construction of ``.diskcsr`` directories.

The builder turns an edge *stream* — an iterable of endpoint pairs, or an
edge-list file parsed line by line — into the five flat CSR arrays without
ever materialising the graph in RAM:

1. **Chunk.** Up to ``chunk_edges`` pairs are buffered, normalised to
   ``lo < hi``, packed into int64 keys (``lo << 32 | hi``), sorted and
   deduplicated (``np.unique``), and spilled as one sorted *run* file.
2. **Merge.** The runs are k-way merged (``heapq.merge`` over block-buffered
   readers) with inline cross-run dedup into a single sorted unique key
   file; degrees accumulate block-wise via ``np.bincount``.  A single run
   skips the Python merge entirely and streams numpy blocks.
3. **Scatter.** ``indptr`` is the degree cumsum; a second block-wise pass
   over the merged keys writes ``indices``/``eids``/``esrc``/``etgt``
   through write-mode memmaps with a persistent per-vertex cursor.  Keys
   are globally sorted, so every adjacency run comes out ascending and the
   edge-id order is lexicographic — **byte-identical** to the arrays
   :class:`~repro.graph.csr.CSRGraph` builds in RAM (the parity tests
   assert this array-for-array).

Peak memory is O(n + chunk) — the degree/cursor vectors plus one chunk
buffer — independent of |E|.  ``meta.json`` is written last, so a build
that dies mid-way leaves a directory that
:class:`~repro.external.diskcsr.DiskCSRGraph` refuses to open.

File parsing mirrors :func:`repro.graph.io.load_edge_list` +
:func:`~repro.graph.io.relabel_edges` exactly (comment prefixes, first-seen
dense relabelling, silent self-loop drop, :class:`GraphFormatError` on bad
lines), so ``build_diskcsr(path)`` and ``CSRGraph`` built via
``load_edge_list(path)`` agree on every array.
"""

from __future__ import annotations

import heapq
import json
import shutil
import tempfile
from pathlib import Path
from typing import Any, BinaryIO, Iterable, Iterator

from repro.errors import GraphFormatError, InvalidGraphError, InvalidParameterError
from repro.external.diskcsr import (
    DEFAULT_BLOCK_INTS,
    DEFAULT_CACHE_BLOCKS,
    DISKCSR_FORMAT,
    DiskCSRGraph,
    diskcsr_array_specs,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]

__all__ = ["DEFAULT_CHUNK_EDGES", "build_diskcsr"]

#: edges buffered per sort chunk (~16 MiB of int64 keys at the default)
DEFAULT_CHUNK_EDGES = 1 << 20

#: int64 keys per block in the merge/scatter streaming passes
_MERGE_BLOCK = 1 << 16

_COMMENT_PREFIXES = ("#", "%")

_KEY_BITS = 32
_KEY_MASK = (1 << _KEY_BITS) - 1


def _parse_edge_file(path: Path, ids: dict) -> Iterator[tuple[int, int]]:
    """Stream dense endpoint pairs from an edge-list file.

    Mirrors ``load_edge_list`` + ``relabel_edges``: raw tokens get dense
    first-seen ids (accumulated into ``ids``, which the caller reads for
    ``n`` after exhaustion), self loops are dropped silently, malformed
    lines raise :class:`GraphFormatError`.  Duplicate edges pass through —
    the external sort deduplicates them.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}")
            raw_u, raw_v = parts[0], parts[1]
            if raw_u == raw_v:
                continue
            u = ids.setdefault(raw_u, len(ids))
            v = ids.setdefault(raw_v, len(ids))
            yield u, v


def _key_blocks(path: Path, count: int) -> Iterator:
    """Yield the int64 key file at ``path`` as numpy blocks."""
    with open(path, "rb") as handle:
        done = 0
        while done < count:
            take = min(_MERGE_BLOCK, count - done)
            block = np.fromfile(handle, dtype=np.int64, count=take)
            if len(block) != take:
                raise GraphFormatError(
                    f"{path}: truncated sort run ({done + len(block)} of "
                    f"{count} keys)")
            done += take
            yield block


def _key_values(path: Path, count: int) -> Iterator[int]:
    for block in _key_blocks(path, count):
        yield from block.tolist()


class _ChunkSorter:
    """Buffer endpoint pairs; spill sorted unique key runs to disk."""

    def __init__(self, workdir: Path, chunk_edges: int):
        self.workdir = workdir
        self.chunk_edges = chunk_edges
        self.buf_u: list[int] = []
        self.buf_v: list[int] = []
        self.runs: list[tuple[Path, int]] = []

    def add(self, u: int, v: int) -> None:
        self.buf_u.append(u)
        self.buf_v.append(v)
        if len(self.buf_u) >= self.chunk_edges:
            self.flush()

    def flush(self) -> None:
        if not self.buf_u:
            return
        us = np.array(self.buf_u, dtype=np.int64)
        vs = np.array(self.buf_v, dtype=np.int64)
        self.buf_u.clear()
        self.buf_v.clear()
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = np.unique((lo << _KEY_BITS) | hi)
        path = self.workdir / f"run-{len(self.runs):05d}.bin"
        keys.tofile(path)
        self.runs.append((path, len(keys)))


def _merge_runs(runs: list[tuple[Path, int]], out_path: Path,
                n: int) -> tuple[int, "np.ndarray"]:
    """K-way merge the sorted runs into one unique key file.

    Returns ``(m, degrees)``; degrees accumulate block-wise so the merge
    itself stays O(n + block) in memory.
    """
    deg = np.zeros(n, dtype=np.int64)
    m = 0

    def tally(block: np.ndarray) -> None:
        nonlocal m, deg
        m += len(block)
        deg += np.bincount(block >> _KEY_BITS, minlength=n)
        deg += np.bincount(block & _KEY_MASK, minlength=n)

    if len(runs) == 1 and runs[0][0] == out_path:
        # a single run is already sorted and unique, and the caller has
        # renamed it into place: only the degree tally remains
        for block in _key_blocks(out_path, runs[0][1]):
            tally(block)
        return m, deg

    def absorb(block: np.ndarray, out_handle: BinaryIO) -> None:
        block.tofile(out_handle)
        tally(block)

    with open(out_path, "wb") as out_handle:
        streams = [_key_values(path, count) for path, count in runs]
        buf: list[int] = []
        last = None
        for key in heapq.merge(*streams):
            if key == last:
                continue
            last = key
            buf.append(key)
            if len(buf) >= _MERGE_BLOCK:
                absorb(np.array(buf, dtype=np.int64), out_handle)
                buf.clear()
        if buf:
            absorb(np.array(buf, dtype=np.int64), out_handle)
    return m, deg


class _OutputArray:
    """A write-mode ``.npy`` output: memmapped, or eager when empty
    (``np.memmap`` rejects zero-length maps)."""

    def __init__(self, path: Path, dtype: Any, count: int):
        self.count = count
        self.mm: np.memmap | None
        if count == 0:
            np.save(path, np.empty(0, dtype=dtype))
            self.mm = None
        else:
            self.mm = np.lib.format.open_memmap(
                str(path), mode="w+", dtype=dtype, shape=(count,))

    def write(self, positions: slice | np.ndarray,
              values: np.ndarray) -> None:
        if self.mm is not None:
            self.mm[positions] = values

    def close(self) -> None:
        if self.mm is not None:
            self.mm.flush()
            del self.mm
            self.mm = None


def _scatter(key_path: Path, m: int, n: int, indptr: np.ndarray,
             directory: Path) -> None:
    """Second pass: merged keys → ``indices``/``eids``/``esrc``/``etgt``."""
    specs = diskcsr_array_specs(n, m)
    outs = {key: _OutputArray(directory / f"{key}.npy", *specs[key])
            for key in ("indices", "eids", "esrc", "etgt")}
    cursor = indptr[:-1].copy()
    eid_base = 0
    for block in _key_blocks(key_path, m):
        k = len(block)
        lo = block >> _KEY_BITS
        hi = block & _KEY_MASK
        eids = np.arange(eid_base, eid_base + k, dtype=np.int64)
        outs["esrc"].write(slice(eid_base, eid_base + k), lo.astype(np.int32))
        outs["etgt"].write(slice(eid_base, eid_base + k), hi.astype(np.int32))
        # each edge occupies one slot in both endpoint rows; the global
        # (lo, hi) key order makes every per-vertex run come out ascending
        # (neighbours below v arrive while v is still a hi endpoint)
        owners = np.stack([lo, hi], axis=1).ravel()
        targets = np.stack([hi, lo], axis=1).ravel()
        slot_eids = np.repeat(eids, 2)
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        change = np.empty(len(sorted_owners), dtype=bool)
        if len(change):
            change[0] = True
            change[1:] = sorted_owners[1:] != sorted_owners[:-1]
        starts = np.flatnonzero(change)
        group = np.cumsum(change) - 1
        within = np.arange(len(sorted_owners), dtype=np.int64) - starts[group]
        pos = cursor[sorted_owners] + within
        outs["indices"].write(pos, targets[order].astype(np.int32))
        outs["eids"].write(pos, slot_eids[order].astype(np.int32))
        uniq = sorted_owners[starts]
        counts = np.diff(np.append(starts, len(sorted_owners)))
        cursor[uniq] += counts
        eid_base += k
    for out in outs.values():
        out.close()


def build_diskcsr(source: str | Path | Iterable[tuple[int, int]],
                  directory: str | Path | None = None, *,
                  n: int | None = None, name: str = "",
                  chunk_edges: int | None = None,
                  block_ints: int = DEFAULT_BLOCK_INTS,
                  cache_blocks: int = DEFAULT_CACHE_BLOCKS) -> DiskCSRGraph:
    """Build a ``.diskcsr`` directory out-of-core and open it.

    ``source`` is either a path to an edge-list file (parsed with the
    exact :func:`~repro.graph.io.load_edge_list` semantics) or an iterable
    of ``(u, v)`` integer pairs (validated with the exact
    :class:`~repro.graph.csr.CSRGraph` semantics: self loops and
    out-of-range endpoints raise :class:`InvalidGraphError`).  ``n`` may
    be omitted — it is then inferred (dense relabel size for files,
    ``max + 1`` for pairs).

    When ``directory`` is ``None`` the graph is built into a temporary
    directory it owns and removes on ``close()``; otherwise the directory
    persists for reopening in later processes.
    """
    if np is None:
        raise InvalidParameterError(
            "build_diskcsr requires numpy (the external sort and the "
            "memmapped outputs are array-native)")
    if chunk_edges is None:
        chunk_edges = DEFAULT_CHUNK_EDGES
    if chunk_edges < 1:
        raise InvalidParameterError(
            f"chunk_edges must be positive, got {chunk_edges}")
    if directory is None:
        directory = Path(tempfile.mkdtemp(prefix="repro-diskcsr-"))
        owns = True
    else:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        owns = False
    # no marker until the build finishes: a stale meta.json must not make
    # a half-written rebuild look openable
    (directory / "meta.json").unlink(missing_ok=True)
    workdir = Path(tempfile.mkdtemp(prefix="sort-", dir=str(directory)))
    try:
        sorter = _ChunkSorter(workdir, chunk_edges)
        if isinstance(source, (str, Path)):
            path = Path(source)
            ids: dict = {}
            if not name:
                name = path.stem
            for u, v in _parse_edge_file(path, ids):
                sorter.add(u, v)
            inferred = len(ids)
        else:
            max_id = -1
            for u, v in source:
                u = int(u)
                v = int(v)
                if u == v:
                    raise InvalidGraphError(
                        f"self loop on vertex {u} is not allowed")
                if u < 0 or v < 0:
                    raise InvalidGraphError(
                        f"edge ({u}, {v}) has a negative endpoint")
                if n is not None and (u >= n or v >= n):
                    raise InvalidGraphError(
                        f"edge ({u}, {v}) out of range for n={n}")
                if u > max_id:
                    max_id = u
                if v > max_id:
                    max_id = v
                sorter.add(u, v)
            inferred = max_id + 1
        sorter.flush()
        if n is None:
            n = inferred
        elif inferred > n:
            raise InvalidGraphError(
                f"edge list uses {inferred} vertices but n={n}")
        if n >= 1 << (_KEY_BITS - 1):
            raise InvalidGraphError(
                f"n={n} exceeds the int32 vertex-id range")

        key_path = workdir / "keys.bin"
        if len(sorter.runs) == 1:
            # a single run is already the merged unique key sequence
            sorter.runs[0][0].rename(key_path)
            sorter.runs = [(key_path, sorter.runs[0][1])]
        m, deg = _merge_runs(sorter.runs, key_path, n)

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        indptr_out = _OutputArray(directory / "indptr.npy", np.int64, n + 1)
        indptr_out.write(slice(0, n + 1), indptr)
        indptr_out.close()
        _scatter(key_path, m, n, indptr, directory)

        meta = {"format": DISKCSR_FORMAT, "n": int(n), "m": int(m),
                "name": name}
        (directory / "meta.json").write_text(json.dumps(meta))
    except BaseException:
        if owns:
            shutil.rmtree(directory, ignore_errors=True)
        else:
            shutil.rmtree(workdir, ignore_errors=True)
        raise
    shutil.rmtree(workdir, ignore_errors=True)
    return DiskCSRGraph(directory, block_ints=block_ints,
                        cache_blocks=cache_blocks, _owns_directory=owns)
