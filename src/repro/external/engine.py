"""Disk-backed decomposition engine: the CSR algorithms over windowed IO.

The direct CSR loops only ever touch a graph through ``n``/``m``/
``degrees()``/``hot_arrays()`` with scalar indexing, so
:func:`~repro.core.csr_fnd.csr_fnd_core` and
:func:`~repro.core.csr_peel.csr_core_peel` run **unchanged** on a
:class:`~repro.external.diskcsr.DiskCSRGraph` — λ and hierarchy are
identical to the in-RAM backend by construction, every access metered.
What this module adds is the part that would otherwise blow the memory
budget: the (2,3)/(3,4) *incidence*, which is Θ(s·|K_s|) and can dwarf the
graph itself.  The builders here enumerate triangles / K₄s with the same
merge-scan order as :mod:`repro.core.csr_peel`'s reference builders, but
**spool the cliques to a scratch file** and cursor-scatter them into
on-disk companion arrays (write-mode memmaps, re-opened as windowed
:class:`~repro.external.diskcsr.BlockedArray` readers).  RAM stays at the
semi-external budget — O(#cells) peeling state plus O(|V|) pointers — for
every supported (r, s), and the shared extended-peel loop
(:func:`~repro.core.csr_fnd._incidence_fnd`) replays the incidence slot
for slot.

Per-phase IO lands on ``disk.io`` with ``start``/``peel``/``post``
snapshots, extending the §3.1 accounting beyond (1,2): FND performs *zero*
post-peel IO at every (r, s) because BuildHierarchy works entirely on the
in-memory sub-nucleus forest.
"""

from __future__ import annotations

import tempfile
import time
from bisect import bisect_left
from pathlib import Path
from typing import Iterator

from repro.core.csr_fnd import CSR_FND_RS, _incidence_fnd, csr_fnd_core
from repro.core.csr_peel import bucket_order, csr_core_peel
from repro.core.decomposition import ALGORITHMS, Decomposition
from repro.core.dft import dft_hierarchy
from repro.core.fnd import FndInstrumentation
from repro.core.hierarchy import Hierarchy
from repro.core.hypo import hypo_traversal
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import PeelingResult, peel
from repro.core.traversal import naive_hierarchy
from repro.core.views import CellView, CSREdgeView, CSRTriangleView, VertexView
from repro.errors import InvalidParameterError, UnknownAlgorithmError
from repro.external.disk import IOStats
from repro.external.diskcsr import BlockedArray, DiskCSRGraph
from repro.graph.csr import csr_triangles

try:
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]

__all__ = [
    "disk_core_peel",
    "disk_decomposition",
    "disk_fnd_decomposition",
    "disk_nucleus34_peel",
    "disk_truss_peel",
]

#: clique records buffered before a spool flush
_SPOOL_FLUSH = 1 << 16


class _CliqueSpool:
    """Fixed-width int32 clique records streamed to a scratch file.

    Accumulates the per-cell membership counts (``sup``) block-wise as a
    side effect, so one enumeration pass yields both the degrees and the
    spooled occurrence list the scatter pass replays.
    """

    def __init__(self, path: Path, width: int, size: int):
        self.path = path
        self.width = width
        self.size = size
        self.sup = np.zeros(size, dtype=np.int64)
        self.count = 0
        self._buf: list[int] = []
        self._handle = open(path, "wb")

    def add(self, *cells: int) -> None:
        self._buf.extend(cells)
        self.count += 1
        if self.count % _SPOOL_FLUSH == 0:
            self._flush()

    def _flush(self) -> None:
        if self._buf:
            block = np.array(self._buf, dtype=np.int32)
            block.tofile(self._handle)
            self.sup += np.bincount(block, minlength=self.size)
            self._buf.clear()

    def finish(self) -> None:
        self._flush()
        self._handle.close()

    def blocks(self) -> Iterator[np.ndarray]:
        """Replay the spool as ``(records, width)`` int32 blocks."""
        with open(self.path, "rb") as handle:
            remaining = self.count
            while remaining:
                take = min(_SPOOL_FLUSH, remaining)
                block = np.fromfile(handle, dtype=np.int32,
                                    count=take * self.width)
                yield block.reshape(take, self.width)
                remaining -= take


def _scatter_spool(spool: _CliqueSpool, ptr: np.ndarray, directory: Path,
                   io: IOStats) -> tuple[BlockedArray, ...]:
    """Cursor-scatter the spooled cliques into on-disk companion arrays.

    Record-major owner order plus a stable argsort reproduces the
    sequential cursor fill of the in-RAM incidence builders slot for slot
    (same discipline as ``fill_incidence``).  Returns the ``width - 1``
    companion columns re-opened as metered :class:`BlockedArray` readers.
    """
    width = spool.width
    total = int(ptr[-1])
    paths = [directory / f"comp{k}.npy" for k in range(width - 1)]
    if total == 0:
        for path in paths:
            np.save(path, np.empty(0, dtype=np.int32))
        return tuple(BlockedArray(path, np.int32, 0, io) for path in paths)
    mms = [np.lib.format.open_memmap(str(path), mode="w+", dtype=np.int32,
                                     shape=(total,)) for path in paths]
    # companion column k of the occurrence owned by record column j is the
    # k-th of the other record columns, in record order — matching the
    # (ea→eb,ec / a→b,c,d …) layout of the reference cursor fills
    companion_cols = [[c for c in range(width) if c != j]
                      for j in range(width)]
    cursor = ptr[:-1].astype(np.int64).copy()
    for block in spool.blocks():
        owners = block.ravel()
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        change = np.empty(len(sorted_owners), dtype=bool)
        change[0] = True
        change[1:] = sorted_owners[1:] != sorted_owners[:-1]
        starts = np.flatnonzero(change)
        group = np.cumsum(change) - 1
        within = np.arange(len(sorted_owners), dtype=np.int64) - starts[group]
        pos = cursor[sorted_owners] + within
        for k, mm in enumerate(mms):
            vals = np.stack([block[:, companion_cols[j][k]]
                             for j in range(width)], axis=1).ravel()
            mm[pos] = vals[order]
        uniq = sorted_owners[starts]
        counts = np.diff(np.append(starts, len(sorted_owners)))
        cursor[uniq] += counts
    for mm in mms:
        mm.flush()
    del mms
    return tuple(BlockedArray(path, np.int32, total, io) for path in paths)


def _cell_pointers(sup: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Degree cumsum as ``(ptr_numpy, ptr_list)``."""
    ptr = np.zeros(len(sup) + 1, dtype=np.int64)
    np.cumsum(sup, out=ptr[1:])
    return ptr, ptr.tolist()


def _disk_truss_incidence(
        disk: DiskCSRGraph, workdir: Path,
) -> tuple[list[int], list[int], tuple[BlockedArray, ...]]:
    """Streamed edge→triangle incidence: ``(sup, ptr, comps)``.

    Same enumeration order as the reference
    :func:`~repro.core.csr_peel.truss_incidence` fallback (ascending lowest
    vertex, merge scan of the two suffix runs), but each triple goes to the
    spool instead of a RAM list.  Row fetches are metered on ``disk.io``.
    """
    indptr, _, _ = disk.hot_arrays()
    indices = disk._indices
    eids = disk._eids
    spool = _CliqueSpool(workdir / "triangles.bin", 3, disk.m)
    for u in range(disk.n):
        lo, hi = indptr[u], indptr[u + 1]
        row = indices.fetch(lo, hi)
        row_e = eids.fetch(lo, hi)
        for pu in range(bisect_left(row, u), len(row)):
            v = row[pu]
            e_uv = row_e[pu]
            vrow = indices.fetch(indptr[v], indptr[v + 1])
            vrow_e = eids.fetch(indptr[v], indptr[v + 1])
            i = pu + 1
            j = bisect_left(vrow, v)
            row_len = len(row)
            vrow_len = len(vrow)
            while i < row_len and j < vrow_len:
                a = row[i]
                b = vrow[j]
                if a < b:
                    i += 1
                elif b < a:
                    j += 1
                else:
                    spool.add(e_uv, row_e[i], vrow_e[j])
                    i += 1
                    j += 1
    spool.finish()
    ptr, ptr_list = _cell_pointers(spool.sup)
    comps = _scatter_spool(spool, ptr, workdir, disk.io)
    return spool.sup.tolist(), ptr_list, comps


def _disk_nucleus34_incidence(
        disk: DiskCSRGraph, workdir: Path,
) -> tuple[list[tuple[int, int, int]], list[int], list[int],
           tuple[BlockedArray, ...]]:
    """Streamed triangle→K₄ incidence: ``(triangles, sup, ptr, comps)``.

    The triangle list is cell-scale (it *is* the cell table for (3,4), the
    semi-external model's in-memory side); K₄ discovery then runs entirely
    on that list — runs sharing their lowest edge, one id-map probe per
    candidate pair, exactly the reference
    :func:`~repro.graph.csr.csr_k4_triangle_ids` enumeration — with the
    quads spooled to disk instead of held in RAM.
    """
    n = disk.n
    # DiskCSRGraph duck-types the CSR read surface these loops touch
    triangles = list(csr_triangles(disk))  # type: ignore[arg-type]
    num_tris = len(triangles)
    tri_id = {(a * n + b) * n + c: tid
              for tid, (a, b, c) in enumerate(triangles)}
    get = tri_id.get
    spool = _CliqueSpool(workdir / "quads.bin", 4, num_tris)
    base = 0
    while base < num_tris:
        u, v, _w = triangles[base]
        end = base + 1
        while end < num_tris:
            tu, tv, _x = triangles[end]
            if tu != u or tv != v:
                break
            end += 1
        for i in range(base, end - 1):
            w = triangles[i][2]
            uw = (u * n + w) * n
            vw = (v * n + w) * n
            for j in range(i + 1, end):
                x = triangles[j][2]
                t_uwx = get(uw + x)
                if t_uwx is not None:
                    spool.add(i, j, t_uwx, tri_id[vw + x])
        base = end
    spool.finish()
    ptr, ptr_list = _cell_pointers(spool.sup)
    comps = _scatter_spool(spool, ptr, workdir, disk.io)
    return triangles, spool.sup.tolist(), ptr_list, comps


def _incidence_replay_peel(sup: list[int], ptr: list[int],
                           comps: tuple) -> PeelingResult:
    """Replay peel over a (possibly disk-resident) incidence.

    The generic form of ``_truss_peel_replay``/``csr_nucleus34_peel``: an
    s-clique is spent once any companion is processed, otherwise every
    companion above the current level gets the O(1) block-swap decrement.
    """
    t = len(sup)
    bins, vert, pos = bucket_order(sup)
    processed = bytearray(t)
    max_lambda = 0
    for i in range(t):
        u = vert[i]
        k = sup[u]
        if k > max_lambda:
            max_lambda = k
        for slot in range(ptr[u], ptr[u + 1]):
            cells = [arr[slot] for arr in comps]
            if any(processed[c] for c in cells):
                continue
            for v in cells:
                d = sup[v]
                if d > k:
                    first = bins[d]
                    other = vert[first]
                    if other != v:
                        swap = pos[v]
                        vert[first] = v
                        vert[swap] = other
                        pos[v] = first
                        pos[other] = swap
                    bins[d] = first + 1
                    sup[v] = d - 1
        processed[u] = 1
    return PeelingResult(lam=sup, max_lambda=max_lambda, order=vert)


def _workdir(disk: DiskCSRGraph) -> tempfile.TemporaryDirectory:
    """Scratch space for the incidence, preferably beside the graph."""
    try:
        return tempfile.TemporaryDirectory(prefix="incidence-",
                                           dir=str(disk.directory))
    except OSError:  # read-only graph directory: fall back to system tmp
        return tempfile.TemporaryDirectory(prefix="repro-incidence-")


def disk_core_peel(disk: DiskCSRGraph) -> PeelingResult:
    """(1,2) peel on disk: the in-RAM loop over windowed arrays."""
    return csr_core_peel(disk)  # type: ignore[arg-type]


def disk_truss_peel(disk: DiskCSRGraph) -> PeelingResult:
    """(2,3) peel on disk: streamed incidence + generic replay."""
    with _workdir(disk) as tmp:
        sup, ptr, comps = _disk_truss_incidence(disk, Path(tmp))
        return _incidence_replay_peel(sup, ptr, comps)


def disk_nucleus34_peel(disk: DiskCSRGraph) -> PeelingResult:
    """(3,4) peel on disk: streamed incidence + generic replay."""
    with _workdir(disk) as tmp:
        _, sup, ptr, comps = _disk_nucleus34_incidence(disk, Path(tmp))
        return _incidence_replay_peel(sup, ptr, comps)


def disk_fnd_decomposition(disk: DiskCSRGraph, r: int, s: int,
                           instrumentation: FndInstrumentation | None = None,
                           ) -> tuple[PeelingResult, Hierarchy, CellView]:
    """Direct FND on disk for the evaluated (r, s): ``(peeling, hierarchy,
    view)``, output identical to the in-RAM CSR path."""
    if (r, s) == (1, 2):
        peeling, hierarchy = csr_fnd_core(disk, instrumentation)  # type: ignore[arg-type]
        return peeling, hierarchy, VertexView(disk)  # type: ignore[arg-type]
    if (r, s) == (2, 3):
        with _workdir(disk) as tmp:
            sup, ptr, comps = _disk_truss_incidence(disk, Path(tmp))
            peeling, hierarchy = _incidence_fnd(2, 3, sup, ptr, comps,  # type: ignore[arg-type]
                                                instrumentation)
        return peeling, hierarchy, CSREdgeView(disk)  # type: ignore[arg-type]
    if (r, s) == (3, 4):
        with _workdir(disk) as tmp:
            triangles, sup, ptr, comps = _disk_nucleus34_incidence(
                disk, Path(tmp))
            degrees = list(sup)  # the peel settles sup into λ in place
            peeling, hierarchy = _incidence_fnd(3, 4, sup, ptr, comps,  # type: ignore[arg-type]
                                                instrumentation)
        view = CSRTriangleView(disk,  # type: ignore[arg-type]
                               _enumeration=(triangles, degrees))
        return peeling, hierarchy, view
    raise InvalidParameterError(
        f"no disk FND for (r, s) = ({r}, {s}); supported: {CSR_FND_RS}")


def disk_decomposition(disk: DiskCSRGraph, r: int, s: int,
                       algorithm: str = "fnd",
                       instrumentation: FndInstrumentation | None = None,
                       ) -> Decomposition:
    """Full decomposition on the disk backend, with per-phase IO snapshots.

    FND covers all of :data:`~repro.core.csr_fnd.CSR_FND_RS`; the
    traversal algorithms (``naive``/``dft``/``lcps``/``hypo``) run (1,2),
    where their post-peel passes re-read the on-disk adjacency — the IO
    the §3.1 accounting exists to expose.  Snapshots ``start``/``peel``/
    ``post`` land on ``disk.io``.
    """
    if algorithm not in ALGORITHMS:
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    hierarchy: Hierarchy | None
    disk.io.snapshot("start")
    if algorithm == "fnd":
        if (r, s) not in CSR_FND_RS:
            raise InvalidParameterError(
                f"no disk FND for (r, s) = ({r}, {s}); "
                f"supported: {CSR_FND_RS}")
        stats = (FndInstrumentation() if instrumentation is None
                 else instrumentation)
        start = time.perf_counter()
        peeling, hierarchy, view = disk_fnd_decomposition(disk, r, s, stats)
        total = time.perf_counter() - start
        # FND's single fused pass does everything: zero post-peel IO
        disk.io.snapshot("peel")
        disk.io.snapshot("post")
        post_s = min(stats.build_seconds, total)
        return Decomposition(disk, r, s, "fnd", peeling.lam,  # type: ignore[arg-type]
                             hierarchy, view, total - post_s, post_s,
                             fnd_stats=stats)
    if (r, s) != (1, 2):
        raise InvalidParameterError(
            f"the disk backend runs {algorithm!r} for (1, 2) only; "
            f"use algorithm='fnd' for any of {CSR_FND_RS}")
    view = VertexView(disk)  # type: ignore[arg-type]
    start = time.perf_counter()
    peeling = peel(view)
    peel_s = time.perf_counter() - start
    disk.io.snapshot("peel")

    start = time.perf_counter()
    if algorithm == "naive":
        hierarchy = naive_hierarchy(view, peeling)
    elif algorithm == "dft":
        hierarchy = dft_hierarchy(view, peeling)
    elif algorithm == "lcps":
        hierarchy = lcps_hierarchy(disk, peeling)  # type: ignore[arg-type]
    else:  # hypo
        hypo_traversal(view, peeling)
        hierarchy = None
    post_s = time.perf_counter() - start
    disk.io.snapshot("post")
    return Decomposition(disk, 1, 2, algorithm, peeling.lam,  # type: ignore[arg-type]
                         hierarchy, view, peel_s, post_s)
