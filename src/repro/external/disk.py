"""Semi-external-memory substrate with IO accounting.

Paper §3.1 argues that external-memory k-core algorithms (Cheng et al.,
Wen et al., Khaouid et al.) "only focused on how to compute the λ values"
and that "the additional traversal operation in external memory ... is at
least as expensive as finding λ values".  That claim is about IO, which
in-memory benchmarks cannot show — so this module builds the substrate to
*measure* it:

* :class:`DiskAdjacency` stores adjacency lists in a binary file (the
  semi-external model: O(|V|) arrays in memory, edges on disk) and counts
  every read;
* :class:`DiskVertexView` plugs that storage into the ordinary (1,2) cell
  view, so **the exact same peeling / naive / DFT / FND / LCPS code** runs
  against disk, with every neighbourhood access metered.

``benchmarks/bench_external.py`` turns this into the IO table the paper's
argument predicts: one "pass" (2|E| reads) for peeling, another for DFT's
traversal, maxλ passes for Naive — and no second pass at all for FND.
"""

from __future__ import annotations

import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.core.views import CellView
from repro.errors import InvalidGraphError
from repro.graph.adjacency import Graph

__all__ = ["IOStats", "DiskAdjacency", "DiskVertexView"]

_INT = struct.Struct("<i")


@dataclass
class IOStats:
    """Read accounting for a :class:`DiskAdjacency`."""

    reads: int = 0            # neighbourhood fetches (seek + read)
    ints_read: int = 0        # total vertex ids transferred
    per_phase: dict[str, tuple[int, int]] = field(default_factory=dict)

    def snapshot(self, phase: str) -> None:
        """Record cumulative counters under a phase label."""
        self.per_phase[phase] = (self.reads, self.ints_read)

    def phase_delta(self, before: str, after: str) -> tuple[int, int]:
        """(reads, ints) between two snapshots."""
        b = self.per_phase[before]
        a = self.per_phase[after]
        return a[0] - b[0], a[1] - b[1]


class DiskAdjacency:
    """Adjacency lists in a binary file; O(|V|) index kept in memory.

    The file layout is the concatenation of each vertex's sorted neighbour
    list as little-endian int32; ``_offsets``/``_lengths`` (in memory, as
    the semi-external model allows) locate each list.  Every
    :meth:`neighbors` call performs a real seek+read against the file and
    bumps :attr:`io`.
    """

    def __init__(self, graph: Graph, directory: str | Path | None = None):
        self._n = graph.n
        self._degrees = graph.degrees()
        self._offsets: list[int] = []
        self._lengths: list[int] = []
        self.io = IOStats()
        self._file = tempfile.NamedTemporaryFile(
            prefix="repro-adj-", suffix=".bin",
            dir=str(directory) if directory else None, delete=False)
        offset = 0
        for v in graph.vertices():
            neighbors = graph.neighbors(v)
            self._offsets.append(offset)
            self._lengths.append(len(neighbors))
            payload = b"".join(_INT.pack(w) for w in neighbors)
            self._file.write(payload)
            offset += len(payload)
        self._file.flush()
        self._handle = open(self._file.name, "rb")
        self.name = graph.name

    # -- Graph-compatible surface (what (1,2) algorithms touch) ----------
    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return sum(self._degrees) // 2

    def degree(self, v: int) -> int:
        return self._degrees[v]

    def degrees(self) -> list[int]:
        return list(self._degrees)

    def neighbors(self, v: int) -> list[int]:
        """Fetch a neighbour list from disk (counted)."""
        if not 0 <= v < self._n:
            raise InvalidGraphError(f"vertex {v} out of range")
        length = self._lengths[v]
        self.io.reads += 1
        self.io.ints_read += length
        if length == 0:
            return []
        self._handle.seek(self._offsets[v])
        payload = self._handle.read(length * _INT.size)
        return [_INT.unpack_from(payload, i * _INT.size)[0]
                for i in range(length)]

    def vertices(self) -> range:
        return range(self._n)

    def close(self) -> None:
        """Close and delete the backing file."""
        self._handle.close()
        self._file.close()
        Path(self._file.name).unlink(missing_ok=True)

    def __enter__(self) -> "DiskAdjacency":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<DiskAdjacency n={self._n} m={self.m} "
                f"reads={self.io.reads}>")


class DiskVertexView(CellView):
    """(1,2) cell view backed by :class:`DiskAdjacency`.

    Drop-in for :class:`repro.core.views.VertexView`: peeling, naive
    traversal, DFT and FND run unmodified, every coface enumeration
    becoming a metered disk read.
    """

    r, s = 1, 2

    def __init__(self, disk: DiskAdjacency):
        self.graph = disk  # type: ignore[assignment]  # Graph-compatible
        self.disk = disk

    @property
    def num_cells(self) -> int:
        return self.disk.n

    def initial_degrees(self) -> list[int]:
        return self.disk.degrees()

    def cofaces(self, cell: int) -> Iterator[tuple[int, ...]]:
        for w in self.disk.neighbors(cell):
            yield (w,)

    def cell_vertices(self, cell: int) -> tuple[int, ...]:
        return (cell,)
