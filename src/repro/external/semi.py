"""Semi-external nucleus decomposition with per-phase IO measurement.

Runs the library's algorithms with the flat CSR arrays on disk
(:class:`~repro.external.diskcsr.DiskCSRGraph`, served through windowed
block reads) and reports IO per phase, producing the evidence for the
paper's §3.1 claim: hierarchy construction by traversal costs another
full pass (or maxλ passes, for Naive) over the on-disk adjacency, while
FND needs none.  The runs route through :func:`repro.backends.decompose`
with ``backend="disk"`` — the same engine the CLI's ``--backend disk``
uses — so the measured IO is the engine's real IO, not a model of it.

Unlike the retired object-adjacency substrate, this accounting covers
all three evaluated (r, s) pairs: (2,3) and (3,4) spool their incidence
to scratch files during the peel phase, and FND still finishes with zero
post-peel IO.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.backends import decompose
from repro.core.hierarchy import Hierarchy
from repro.graph.adjacency import Graph

__all__ = [
    "SemiExternalResult",
    "semi_external_core_decomposition",
    "semi_external_decomposition",
]


@dataclass
class SemiExternalResult:
    """Outcome of a semi-external run.

    ``peel_reads``/``post_reads`` count block fetches per phase;
    ``peel_ints``/``post_ints`` count cell ids transferred.  One "pass"
    over the graph costs 2|E| ints (for (2,3)/(3,4) the peel phase also
    streams the spooled incidence, so its int count is incidence-scale
    rather than adjacency-scale — the post counts stay comparable).
    """

    algorithm: str
    hierarchy: Hierarchy | None
    lam: list[int]
    peel_reads: int
    peel_ints: int
    post_reads: int
    post_ints: int
    r: int = 1
    s: int = 2

    def passes(self, ints_per_pass: int) -> tuple[float, float]:
        """(peel, post) phases expressed in full-graph passes."""
        if ints_per_pass == 0:
            return (0.0, 0.0)
        return (self.peel_ints / ints_per_pass,
                self.post_ints / ints_per_pass)


def semi_external_decomposition(graph: Graph, r: int = 1, s: int = 2,
                                algorithm: str = "fnd",
                                directory: str | Path | None = None,
                                chunk_edges: int | None = None,
                                ) -> SemiExternalResult:
    """Decompose with the CSR arrays on disk; returns per-phase IO counts.

    ``graph`` is built into a ``.diskcsr`` directory (a temporary one,
    removed afterwards, unless ``directory`` names a persistent location)
    through the out-of-core builder, then decomposed on the disk backend.
    FND covers (1,2)/(2,3)/(3,4); the traversal algorithms
    (``naive``/``dft``/``lcps``/``hypo``) run (1,2), where their post-peel
    passes re-read the on-disk adjacency — the IO this accounting exists
    to expose.
    """
    from repro.external.diskcsr import as_diskcsr

    disk = as_diskcsr(graph, directory=directory, chunk_edges=chunk_edges)
    try:
        # build IO (the external sort) is not the measured phase: reset
        # before the engine snapshots start/peel/post on disk.io
        result = decompose(disk, r, s, algorithm=algorithm, backend="disk")
        peel_reads, peel_ints = disk.io.phase_delta("start", "peel")
        post_reads, post_ints = disk.io.phase_delta("peel", "post")
    finally:
        disk.close()
    return SemiExternalResult(
        algorithm=algorithm, hierarchy=result.hierarchy, lam=result.lam,
        peel_reads=peel_reads, peel_ints=peel_ints,
        post_reads=post_reads, post_ints=post_ints, r=r, s=s)


def semi_external_core_decomposition(graph: Graph, algorithm: str = "fnd",
                                     directory: str | Path | None = None,
                                     ) -> SemiExternalResult:
    """(1,2) semi-external run — thin wrapper over
    :func:`semi_external_decomposition` kept for the original k-core
    entry point."""
    return semi_external_decomposition(graph, 1, 2, algorithm=algorithm,
                                       directory=directory)
