"""Semi-external k-core decomposition with per-phase IO measurement.

Runs the library's (1,2) algorithms against :class:`DiskAdjacency` and
reports IO per phase, producing the evidence for the paper's §3.1 claim:
hierarchy construction by traversal costs another full pass (or maxλ
passes, for Naive) over the on-disk adjacency, while FND needs none.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dft import dft_hierarchy
from repro.core.fnd import fnd_decomposition
from repro.core.hierarchy import Hierarchy
from repro.core.hypo import hypo_traversal
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import peel
from repro.core.traversal import naive_hierarchy
from repro.errors import UnknownAlgorithmError
from repro.external.disk import DiskAdjacency, DiskVertexView
from repro.graph.adjacency import Graph

__all__ = ["SemiExternalResult", "semi_external_core_decomposition"]


@dataclass
class SemiExternalResult:
    """Outcome of a semi-external run.

    ``peel_reads``/``post_reads`` count neighbourhood fetches per phase;
    ``peel_ints``/``post_ints`` count vertex ids transferred.  One "pass"
    over the graph costs |V| reads / 2|E| ints.
    """

    algorithm: str
    hierarchy: Hierarchy | None
    lam: list[int]
    peel_reads: int
    peel_ints: int
    post_reads: int
    post_ints: int

    def passes(self, ints_per_pass: int) -> tuple[float, float]:
        """(peel, post) phases expressed in full-graph passes."""
        if ints_per_pass == 0:
            return (0.0, 0.0)
        return (self.peel_ints / ints_per_pass,
                self.post_ints / ints_per_pass)


def semi_external_core_decomposition(graph: Graph, algorithm: str = "fnd",
                                     directory=None) -> SemiExternalResult:
    """Decompose with adjacency on disk; returns per-phase IO counts."""
    with DiskAdjacency(graph, directory=directory) as disk:
        view = DiskVertexView(disk)
        disk.io.snapshot("start")
        if algorithm == "fnd":
            peeling, hierarchy = fnd_decomposition(view)
            disk.io.snapshot("peel")   # FND's single pass does everything
            disk.io.snapshot("post")
            lam = peeling.lam
        elif algorithm in ("naive", "dft", "lcps", "hypo"):
            peeling = peel(view)
            disk.io.snapshot("peel")
            if algorithm == "naive":
                hierarchy = naive_hierarchy(view, peeling)
            elif algorithm == "dft":
                hierarchy = dft_hierarchy(view, peeling)
            elif algorithm == "lcps":
                hierarchy = lcps_hierarchy(disk, peeling)  # type: ignore[arg-type]
            else:
                hypo_traversal(view, peeling)
                hierarchy = None
            disk.io.snapshot("post")
            lam = peeling.lam
        else:
            raise UnknownAlgorithmError(
                f"unknown algorithm {algorithm!r} for semi-external runs")
        peel_reads, peel_ints = disk.io.phase_delta("start", "peel")
        post_reads, post_ints = disk.io.phase_delta("peel", "post")
    return SemiExternalResult(
        algorithm=algorithm, hierarchy=hierarchy, lam=lam,
        peel_reads=peel_reads, peel_ints=peel_ints,
        post_reads=post_reads, post_ints=post_ints)
