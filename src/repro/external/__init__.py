"""Semi-external-memory substrate and IO-metered decompositions."""

from repro.external.disk import DiskAdjacency, DiskVertexView, IOStats
from repro.external.semi import SemiExternalResult, semi_external_core_decomposition

__all__ = [
    "DiskAdjacency",
    "DiskVertexView",
    "IOStats",
    "SemiExternalResult",
    "semi_external_core_decomposition",
]
