"""Out-of-core substrate: disk-backed CSR graphs, the external-sort
builder, the disk peeling engine, and IO-metered decompositions.

The heavy pieces (``diskcsr``/``build``/``engine`` need numpy) import
lazily so the IO-stats plumbing stays importable everywhere.
"""

from repro.external.disk import DiskAdjacency, DiskVertexView, IOStats
from repro.external.semi import (
    SemiExternalResult,
    semi_external_core_decomposition,
    semi_external_decomposition,
)

__all__ = [
    "DiskAdjacency",
    "DiskVertexView",
    "IOStats",
    "SemiExternalResult",
    "semi_external_core_decomposition",
    "semi_external_decomposition",
]
