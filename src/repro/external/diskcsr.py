"""Disk-backed CSR storage: the flat-array layout, memory-mapped in windows.

:class:`~repro.graph.csr.CSRGraph` keeps ``indptr``/``indices``/``eids``
(plus the edge-endpoint columns ``esrc``/``etgt``) in RAM.  This module
stores the *same five arrays* as ``.npy`` files inside a ``.diskcsr``
directory and serves them through :class:`BlockedArray` — fixed-size
``np.memmap`` windows behind a small LRU cache — so the peak *address
space* of a decomposition is bounded by the window-cache size, not by the
graph.  Only the O(|V|) ``indptr`` (and, per the semi-external model, the
O(#cells) peeling state) lives in memory.

The point of the layout discipline: :class:`DiskCSRGraph` duck-types the
read surface the direct engines actually touch (``n``/``m``/``degrees``/
``hot_arrays``/``endpoints``), so ``csr_fnd_core``, ``csr_core_peel`` and
the CSR cell views run **unchanged** over disk-resident arrays — the
ROADMAP's "storage-backend swap, not an algorithm rewrite".  Every access
is metered on :attr:`DiskCSRGraph.io` (an
:class:`~repro.external.disk.IOStats`): ``reads`` counts physical fetches
(range fetches and window misses), ``ints_read`` counts ids served, so the
§3.1 per-phase IO accounting extends beyond (1,2).

Directory format (``meta.json`` is written last and doubles as the
valid-build marker)::

    graph.diskcsr/
        meta.json     {"format": 1, "n": ..., "m": ..., "name": ...}
        indptr.npy    int64, n + 1
        indices.npy   int32, 2m   (concatenated sorted adjacency runs)
        eids.npy      int32, 2m   (edge id aligned with indices)
        esrc.npy      int32, m    (lexicographic edge endpoints, lo)
        etgt.npy      int32, m    (lexicographic edge endpoints, hi)

Malformed directories (missing files, foreign dtypes, truncated payloads)
raise :class:`~repro.errors.GraphFormatError` at open time, matching the
flat-index loader's contract.
"""

from __future__ import annotations

import json
import shutil
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.errors import GraphFormatError, InvalidGraphError, InvalidParameterError
from repro.external.disk import IOStats

if TYPE_CHECKING:
    from repro.graph.adjacency import Graph

try:  # the disk CSR is array-native; there is no object fallback
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]

__all__ = [
    "DISKCSR_FORMAT",
    "BlockedArray",
    "DiskCSRGraph",
    "as_diskcsr",
    "diskcsr_array_specs",
]

#: on-disk schema version of a ``.diskcsr`` directory
DISKCSR_FORMAT = 1

_META_NAME = "meta.json"

#: int32 elements per memmap window (1 MiB) — small enough that a handful
#: of cached windows never threatens an address-space cap, large enough
#: that sequential scans amortise the mmap/munmap churn
DEFAULT_BLOCK_INTS = 1 << 18

#: windows kept alive per array; peak mapped bytes per array is
#: ``cache_blocks * block_ints * itemsize``
DEFAULT_CACHE_BLOCKS = 8


def _require_numpy() -> None:
    if np is None:
        raise InvalidParameterError(
            "DiskCSRGraph requires numpy (np.memmap backs the on-disk "
            "arrays; use DiskAdjacency for the object-engine substrate)")


def diskcsr_array_specs(n: int, m: int) -> dict:
    """``name -> (dtype, length)`` of the five on-disk arrays."""
    return {
        "indptr": (np.int64, n + 1),
        "indices": (np.int32, 2 * m),
        "eids": (np.int32, 2 * m),
        "esrc": (np.int32, m),
        "etgt": (np.int32, m),
    }


def _npy_payload(path: Path, dtype: Any, count: int) -> int:
    """Validate the ``.npy`` header at ``path``; return the data offset.

    Raises :class:`GraphFormatError` on a missing file, a foreign magic /
    dtype / shape, or a payload shorter than the header promises (the
    truncated-file case a killed build leaves behind).
    """
    if not path.is_file():
        raise GraphFormatError(f"{path}: missing disk-CSR array file")
    with open(path, "rb") as handle:
        try:
            version = np.lib.format.read_magic(handle)
            reader = getattr(
                np.lib.format,
                f"read_array_header_{version[0]}_{version[1]}", None)
            if reader is None:  # pragma: no cover - future .npy versions
                raise ValueError(f"unsupported .npy version {version}")
            shape, fortran, found = reader(handle)
        except ValueError as exc:
            raise GraphFormatError(
                f"{path}: not a valid .npy file: {exc}") from exc
        offset = handle.tell()
    expected = np.dtype(dtype)
    if found != expected:
        raise GraphFormatError(
            f"{path}: expected dtype {expected}, found {found}")
    if fortran or shape != (count,):
        raise GraphFormatError(
            f"{path}: expected a C-order array of shape ({count},), "
            f"found shape {shape}")
    need = offset + count * expected.itemsize
    have = path.stat().st_size
    if have < need:
        raise GraphFormatError(
            f"{path}: truncated payload ({have} bytes on disk, "
            f"{need} required)")
    return offset


class BlockedArray:
    """Windowed reads over one on-disk array, with metered IO.

    Supports ``len`` plus scalar ``[]`` (returns a plain ``int``, so the
    sequential engine loops and ``bisect`` run on it unchanged) and
    :meth:`fetch` for contiguous ranges as lists.  At most
    ``cache_blocks`` windows of ``block_ints`` elements are mapped at any
    time — the address-space bound the out-of-core CI job enforces.

    Accounting on the shared :class:`~repro.external.disk.IOStats`:
    ``ints_read`` counts every element served; ``reads`` counts physical
    fetches — one per :meth:`fetch` call, one per window miss on scalar
    access.
    """

    __slots__ = ("_path", "_dtype", "_offset", "_count", "_itemsize",
                 "_io", "_block", "_cache", "_cache_cap")

    def __init__(self, path: str | Path, dtype: Any, count: int, io: IOStats,
                 offset: int | None = None,
                 block_ints: int = DEFAULT_BLOCK_INTS,
                 cache_blocks: int = DEFAULT_CACHE_BLOCKS):
        _require_numpy()
        self._path = Path(path)
        self._dtype = np.dtype(dtype)
        self._count = count
        self._itemsize = self._dtype.itemsize
        self._offset = (_npy_payload(self._path, self._dtype, count)
                        if offset is None else offset)
        self._io = io
        self._block = max(1, block_ints)
        self._cache: OrderedDict[int, np.memmap] = OrderedDict()
        self._cache_cap = max(1, cache_blocks)

    def __len__(self) -> int:
        return self._count

    def _window(self, bid: int) -> np.memmap:
        """Map (or revisit) window ``bid``; eviction drops the oldest map."""
        start = bid * self._block
        window = np.memmap(
            self._path, dtype=self._dtype, mode="r",
            offset=self._offset + start * self._itemsize,
            shape=(min(self._block, self._count - start),))
        self._cache[bid] = window
        while len(self._cache) > self._cache_cap:
            self._cache.popitem(last=False)
        return window

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise IndexError(
                f"index {index} out of range for {self._count} elements")
        io = self._io
        io.ints_read += 1
        bid = index // self._block
        window = self._cache.get(bid)
        if window is None:
            io.reads += 1
            window = self._window(bid)
        else:
            self._cache.move_to_end(bid)
        return int(window[index - bid * self._block])

    def fetch(self, lo: int, hi: int) -> list[int]:
        """``[lo, hi)`` as a plain list: one metered fetch, any length."""
        if not 0 <= lo <= hi <= self._count:
            raise IndexError(
                f"range [{lo}, {hi}) out of bounds for {self._count} elements")
        if lo == hi:
            return []
        io = self._io
        io.reads += 1
        io.ints_read += hi - lo
        out: list[int] = []
        bid = lo // self._block
        while lo < hi:
            stop = min(hi, (bid + 1) * self._block)
            window = self._cache.get(bid)
            if window is None:
                window = self._window(bid)
            else:
                self._cache.move_to_end(bid)
            base = bid * self._block
            out.extend(window[lo - base:stop - base].tolist())
            lo = stop
            bid += 1
        return out

    def drop_cache(self) -> None:
        """Unmap every cached window."""
        self._cache.clear()


class DiskCSRGraph:
    """The CSR read surface over a ``.diskcsr`` directory.

    ``indptr`` is loaded into a plain list (O(|V|), as the semi-external
    model allows); the four bulk arrays stay on disk behind
    :class:`BlockedArray` windows.  ``hot_arrays()`` therefore hands the
    direct peels ``(list, BlockedArray, BlockedArray)`` — same indexing
    contract, bounded residency.  All reads are metered on :attr:`io`.

    The ``esrc``/``etgt`` *properties* return whole-file read-only
    memmaps: they exist for reporting/index-build paths (e.g. the flat
    query index's vertex map reads them via the buffer protocol) and are
    page-cache backed, not window-bounded — the decomposition loops never
    touch them.
    """

    def __init__(self, directory: str | Path,
                 block_ints: int = DEFAULT_BLOCK_INTS,
                 cache_blocks: int = DEFAULT_CACHE_BLOCKS,
                 _owns_directory: bool = False):
        _require_numpy()
        self.directory = Path(directory)
        self._owns_directory = _owns_directory
        meta_path = self.directory / _META_NAME
        if not meta_path.is_file():
            raise GraphFormatError(
                f"{self.directory}: not a .diskcsr directory ({_META_NAME} "
                "missing — an interrupted build leaves no marker)")
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError as exc:
            raise GraphFormatError(
                f"{meta_path}: malformed metadata: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("format") != DISKCSR_FORMAT:
            raise GraphFormatError(
                f"{meta_path}: unsupported disk-CSR format "
                f"{meta.get('format') if isinstance(meta, dict) else meta!r} "
                f"(this build reads format {DISKCSR_FORMAT})")
        try:
            n = int(meta["n"])
            m = int(meta["m"])
        except (KeyError, TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"{meta_path}: metadata must carry integer 'n' and 'm': "
                f"{exc}") from exc
        if n < 0 or m < 0:
            raise GraphFormatError(
                f"{meta_path}: negative sizes n={n} m={m}")
        self._n = n
        self._m = m
        self.name = str(meta.get("name", ""))
        self.io = IOStats()
        specs = diskcsr_array_specs(n, m)

        dtype, count = specs["indptr"]
        indptr_path = self.directory / "indptr.npy"
        offset = _npy_payload(indptr_path, dtype, count)
        with open(indptr_path, "rb") as handle:
            handle.seek(offset)
            indptr = np.fromfile(handle, dtype=dtype, count=count)
        if len(indptr) != count or (count and int(indptr[-1]) != 2 * m):
            raise GraphFormatError(
                f"{indptr_path}: inconsistent indptr (expected to end at "
                f"{2 * m})")
        self._indptr: list[int] = indptr.tolist()

        def blocked(key: str) -> BlockedArray:
            dtype, count = specs[key]
            return BlockedArray(self.directory / f"{key}.npy", dtype, count,
                                self.io, block_ints=block_ints,
                                cache_blocks=cache_blocks)

        self._indices = blocked("indices")
        self._eids = blocked("eids")
        self._esrc = blocked("esrc")
        self._etgt = blocked("etgt")
        self._esrc_map: np.ndarray | None = None
        self._etgt_map: np.ndarray | None = None
        self._closed = False

    # -- basic accessors (Graph/CSRGraph-compatible read surface) --------
    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._m

    @property
    def indptr(self) -> list[int]:
        """The in-memory row-pointer list (O(|V|))."""
        return self._indptr

    def degree(self, v: int) -> int:
        return self._indptr[v + 1] - self._indptr[v]

    def degrees(self) -> list[int]:
        indptr = self._indptr
        return [indptr[v + 1] - indptr[v] for v in range(self._n)]

    def neighbors(self, v: int) -> list[int]:
        """Sorted neighbours of ``v``, fetched from disk (counted)."""
        if not 0 <= v < self._n:
            raise InvalidGraphError(f"vertex {v} out of range")
        return self._indices.fetch(self._indptr[v], self._indptr[v + 1])

    def neighbor_set(self, v: int) -> set[int]:
        return set(self.neighbors(v))

    def vertices(self) -> range:
        return range(self._n)

    def hot_arrays(self) -> tuple[list[int], BlockedArray, BlockedArray]:
        """``(indptr, indices, eids)`` with the engine indexing contract:
        the row pointers as a list, the bulk arrays as windowed
        :class:`BlockedArray` readers."""
        return self._indptr, self._indices, self._eids

    def endpoints(self, eid: int) -> tuple[int, int]:
        return self._esrc[eid], self._etgt[eid]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as sorted pairs, lexicographically, block-wise."""
        step = DEFAULT_BLOCK_INTS
        for lo in range(0, self._m, step):
            hi = min(self._m, lo + step)
            src = self._esrc.fetch(lo, hi)
            tgt = self._etgt.fetch(lo, hi)
            yield from zip(src, tgt, strict=True)

    def has_edge(self, u: int, v: int) -> bool:
        if not 0 <= u < self._n:
            return False
        row = self.neighbors(u)
        from bisect import bisect_left
        p = bisect_left(row, v)
        return p < len(row) and row[p] == v

    def edge_id(self, u: int, v: int) -> int | None:
        if not 0 <= u < self._n:
            return None
        lo, hi = self._indptr[u], self._indptr[u + 1]
        row = self._indices.fetch(lo, hi)
        from bisect import bisect_left
        p = bisect_left(row, v)
        if p < len(row) and row[p] == v:
            return self._eids[lo + p]
        return None

    def common_neighbors(self, u: int, v: int) -> list[int]:
        a = self.neighbors(u)
        b = self.neighbors(v)
        out: list[int] = []
        i = j = 0
        while i < len(a) and j < len(b):
            x, y = a[i], b[j]
            if x < y:
                i += 1
            elif y < x:
                j += 1
            else:
                out.append(x)
                i += 1
                j += 1
        return out

    def common_neighbor_count(self, u: int, v: int) -> int:
        return len(self.common_neighbors(u, v))

    # -- reporting surface (whole-file maps, page-cache backed) ----------
    def _full_map(self, key: str) -> np.ndarray:
        dtype, count = diskcsr_array_specs(self._n, self._m)[key]
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.lib.format.open_memmap(
            str(self.directory / f"{key}.npy"), mode="r")

    @property
    def esrc(self) -> np.ndarray:
        """Edge sources (lo endpoints) as a read-only whole-file memmap."""
        if self._esrc_map is None:
            self._esrc_map = self._full_map("esrc")
        return self._esrc_map

    @property
    def etgt(self) -> np.ndarray:
        """Edge targets (hi endpoints) as a read-only whole-file memmap."""
        if self._etgt_map is None:
            self._etgt_map = self._full_map("etgt")
        return self._etgt_map

    def to_object(self) -> Graph:
        """Materialise as an object :class:`~repro.graph.adjacency.Graph`
        (reporting path: RAM-resident by definition)."""
        from repro.graph.adjacency import Graph

        return Graph(self._n, list(self.edges()), name=self.name)

    def subgraph(self, vertices: Iterable[int],
                 relabel: bool = True) -> Graph:
        return self.to_object().subgraph(vertices, relabel=relabel)

    def edge_subgraph(self, edge_ids: Iterable[int],
                      relabel: bool = False) -> Graph:
        return self.to_object().edge_subgraph(edge_ids, relabel=relabel)

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Drop every cached window; remove the directory if owned."""
        if self._closed:
            return
        self._closed = True
        for reader in (self._indices, self._eids, self._esrc, self._etgt):
            reader.drop_cache()
        self._esrc_map = None
        self._etgt_map = None
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "DiskCSRGraph":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"<DiskCSRGraph{label} n={self._n} m={self._m} "
                f"dir={str(self.directory)!r} reads={self.io.reads}>")


def as_diskcsr(graph: Any, directory: str | Path | None = None,
               chunk_edges: int | None = None,
               name: str | None = None) -> DiskCSRGraph:
    """``graph`` as a :class:`DiskCSRGraph`.

    A disk graph passes through unchanged (the caller keeps ownership);
    any other representation is spooled through the out-of-core builder
    (:func:`repro.external.build.build_diskcsr`) into ``directory`` — or a
    temporary directory the returned graph owns and removes on ``close()``.
    """
    if isinstance(graph, DiskCSRGraph):
        return graph
    from repro.external.build import build_diskcsr

    return build_diskcsr(
        graph.edges(), directory=directory, n=graph.n,
        name=graph.name if name is None else name, chunk_edges=chunk_edges)
