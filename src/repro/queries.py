"""Community-search queries over a precomputed hierarchy.

The motivating application for k-truss communities (Huang et al.) is
*query* workloads: "which dense communities does this user belong to, at
which strengths?"  With the full hierarchy computed once by this library,
those queries reduce to tree walks.  :class:`HierarchyIndex` builds the
needed inverse maps once and then answers:

* :meth:`max_nucleus` / :meth:`nucleus_at` — community of a cell at its
  own λ or at a chosen k;
* :meth:`communities_of_vertex` — for r >= 2, the nuclei any of whose
  cells touch a vertex (the TCP query, answered from the hierarchy);
* :meth:`profile` — a vertex's chain of nested communities from the root
  to its densest nucleus, with sizes and densities (community "zoom").

For serving workloads, :class:`repro.flatindex.FlatHierarchyIndex` answers
the same queries (identically) from flat numpy arrays, adds vectorised
batch variants, and persists to ``.npz`` for build-once/serve-many.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.density import edge_density
from repro.core.decomposition import Decomposition
from repro.errors import InvalidParameterError

__all__ = ["CommunityLevel", "HierarchyIndex"]


@dataclass
class CommunityLevel:
    """One step of a vertex's community profile."""

    k: int
    node_id: int
    num_vertices: int
    num_edges: int
    density: float

    def __str__(self) -> str:
        return (f"k={self.k}: {self.num_vertices} vertices, "
                f"{self.num_edges} edges, density {self.density:.3f}")


class HierarchyIndex:
    """Reusable query index over a :class:`Decomposition`.

    The inverse maps (cell → condensed node, vertex → condensed nodes) are
    built lazily on first use and cached: constructing the index is O(1),
    so building one per request — or purely for cell-level queries — no
    longer pays the O(n·depth) set-up that used to dominate query time.
    """

    def __init__(self, decomposition: Decomposition):
        if decomposition.hierarchy is None:
            raise InvalidParameterError(
                f"{decomposition.algorithm} produced no hierarchy to index")
        self.decomposition = decomposition
        self.view = decomposition.view
        self._tree = None
        self._vertex_map: dict[int, set[int]] | None = None

    @property
    def tree(self):
        """Condensed nucleus tree (cached on the hierarchy itself)."""
        if self._tree is None:
            self._tree = self.decomposition.hierarchy.condense()
        return self._tree

    @property
    def _node_of_cell(self) -> list[int]:
        """cell → condensed node id (shared cache on the tree)."""
        return self.tree.cell_nodes()

    @property
    def _nodes_of_vertex(self) -> dict[int, set[int]]:
        if self._vertex_map is None:
            mapping: dict[int, set[int]] = {}
            cell_nodes = self._node_of_cell
            for cell in range(self.view.num_cells):
                node = cell_nodes[cell]
                for vertex in self.view.cell_vertices(cell):
                    mapping.setdefault(vertex, set()).add(node)
            self._vertex_map = mapping
        return self._vertex_map

    # ------------------------------------------------------------------
    def node_of_cell(self, cell: int) -> int:
        """Condensed-tree node holding the cell directly."""
        return self._node_of_cell[cell]

    def max_nucleus(self, cell: int) -> list[int]:
        """Cells of the maximum nucleus of ``cell`` (Definition 3)."""
        return self.tree.subtree_cells(self._node_of_cell[cell])

    def nucleus_at(self, cell: int, k: int) -> list[int]:
        """Cells of the k-nucleus containing ``cell`` (k <= λ(cell))."""
        hierarchy = self.decomposition.hierarchy
        assert hierarchy is not None
        if k > hierarchy.lam[cell]:
            raise InvalidParameterError(
                f"cell {cell} has lambda {hierarchy.lam[cell]} < k={k}")
        node_id = self._node_of_cell[cell]
        while True:
            node = self.tree[node_id]
            parent = node.parent
            if node.k <= k or parent is None or self.tree[parent].k < k:
                return self.tree.subtree_cells(node_id)
            node_id = parent

    def communities_of_vertex(self, vertex: int, k: int) -> list[list[int]]:
        """All maximal k-level nuclei touching ``vertex`` (cell lists).

        For (2,3) with ``k = trussness - 2`` this answers the same query
        as the TCP index, from the hierarchy instead of per-vertex forests.
        """
        found: dict[int, list[int]] = {}
        for node_id in self._nodes_of_vertex.get(vertex, ()):
            # climb to the shallowest ancestor still at level >= k
            current = node_id
            if self.tree[current].k < k:
                continue
            while True:
                parent = self.tree[current].parent
                if parent is None or self.tree[parent].k < k:
                    break
                current = parent
            found.setdefault(current, self.tree.subtree_cells(current))
        return [sorted(cells) for _, cells in sorted(found.items())]

    def profile(self, vertex: int) -> list[CommunityLevel]:
        """Root-to-densest chain of communities containing ``vertex``."""
        nodes = self._nodes_of_vertex.get(vertex)
        if not nodes:
            return []
        # deterministic tie-break: deepest level, then smallest node id
        deepest = max(nodes, key=lambda n: (self.tree[n].k, -n))
        chain: list[int] = []
        current: int | None = deepest
        while current is not None:
            chain.append(current)
            current = self.tree[current].parent
        chain.reverse()
        graph = self.decomposition.graph
        out: list[CommunityLevel] = []
        for node_id in chain:
            node = self.tree[node_id]
            if node_id == self.tree.root:
                continue
            vertices = self.view.vertices_of_cells(
                self.tree.subtree_cells(node_id))
            sub = graph.subgraph(vertices)
            out.append(CommunityLevel(
                k=node.k, node_id=node_id, num_vertices=sub.n,
                num_edges=sub.m, density=edge_density(sub)))
        return out
