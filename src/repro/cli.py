"""Command-line interface: decompose a graph file and inspect the hierarchy.

Examples::

    repro-nucleus stats graph.txt
    repro-nucleus decompose graph.txt --r 2 --s 3 --algorithm fnd --tree
    repro-nucleus dataset stanford3 --size small --r 1 --s 2
    repro-nucleus densest graph.txt --r 2 --s 3 --top 5
    repro-nucleus query graph.txt --r 2 --s 3 --save-index graph.npz
    repro-nucleus build-index graph.txt graph.npz --r 2 --s 3
    repro-nucleus query graph.npz --vertices 0,5,9 --k 2
    repro-nucleus serve graph.npz --port 8765 --workers 4
    repro-nucleus serve web=web.npz social=social.npz --coalesce-window 2

Every subcommand is documented in ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.density import densest_nuclei
from repro.analysis.stats import hierarchy_stats
from repro.backends import BACKENDS, decompose, resolve_backend
from repro.core.decomposition import ALGORITHMS
from repro.errors import ReproError
from repro.graph.adjacency import Graph
from repro.graph.cliques import triangle_count
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.io import load_graph

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nucleus",
        description="k-(r,s) nucleus decomposition with full hierarchy "
                    "(Sariyuce & Pinar, VLDB 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="basic statistics of a graph file")
    stats.add_argument("path")

    def add_decomposition_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--r", type=int, default=1)
        p.add_argument("--s", type=int, default=2)
        p.add_argument("--algorithm", choices=ALGORITHMS, default="fnd")
        p.add_argument("--backend", choices=BACKENDS, default=None,
                       help="graph engine: 'object' (set/list adjacency), "
                            "'csr' (flat-array peeling), 'csr-parallel' "
                            "(shared-memory workers: sharded set-up, bulk "
                            "peel and parallel hierarchy construction) or "
                            "'disk' (out-of-core: memmap'd CSR files, "
                            "spooled incidence, memory bounded by the "
                            "block cache); "
                            "default: follow the input representation (auto)")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for the csr-parallel backend "
                            "(default: $REPRO_WORKERS, else 1 = sequential)")
        p.add_argument("--tree", action="store_true",
                       help="print the condensed nucleus tree")
        p.add_argument("--max-nodes", type=int, default=60)

    decompose = sub.add_parser("decompose", help="decompose a graph file")
    decompose.add_argument("path")
    add_decomposition_arguments(decompose)
    decompose.add_argument(
        "--variant", default="plain",
        choices=["plain", "weighted", "directed", "uncertain", "temporal",
                 "temporal-profile"],
        help="scenario variant: 'weighted'/'uncertain' read per-edge "
             "values from --edge-values; 'directed' treats each file "
             "line as an arc; 'temporal'/'temporal-profile' treat each "
             "line as a timestamped interaction 'u v [t]' "
             "(default: the plain (r,s) nucleus decomposition)")
    decompose.add_argument(
        "--edge-values", metavar="PATH", default=None,
        help="file with one weight/probability per line, in "
             "lexicographic edge-id order (variants weighted/uncertain)")
    decompose.add_argument(
        "--eta", type=float, default=0.5,
        help="tail-probability threshold for --variant uncertain "
             "(default 0.5)")
    decompose.add_argument(
        "--h", type=int, default=1, dest="h",
        help="interaction threshold for --variant temporal (default 1)")

    dataset = sub.add_parser("dataset", help="decompose a built-in stand-in dataset")
    dataset.add_argument("name", choices=dataset_names())
    dataset.add_argument("--size", default="small",
                         choices=["tiny", "small", "medium"])
    add_decomposition_arguments(dataset)

    densest = sub.add_parser("densest", help="report the densest nuclei")
    densest.add_argument("path")
    densest.add_argument("--r", type=int, default=2)
    densest.add_argument("--s", type=int, default=3)
    densest.add_argument("--top", type=int, default=10)
    densest.add_argument("--min-vertices", type=int, default=4)
    densest.add_argument("--backend", choices=BACKENDS, default=None)
    densest.add_argument("--workers", type=int, default=None)

    query = sub.add_parser(
        "query", help="build (or load) a flat query index and answer "
                      "community queries")
    query.add_argument("path",
                       help="a graph file to decompose and index, or a "
                            "persisted .npz index to serve from")
    query.add_argument("--r", type=int, default=1)
    query.add_argument("--s", type=int, default=2)
    query.add_argument("--backend", choices=BACKENDS, default=None)
    query.add_argument("--workers", type=int, default=None)
    query.add_argument("--save-index", metavar="PATH",
                       help="persist the index as .npz (build once, then "
                            "serve it with `query PATH`)")
    query.add_argument("--vertices", metavar="V,V,...",
                       help="comma-separated vertex ids to query")
    query.add_argument("--k", type=int, default=1,
                       help="community strength for --vertices (default 1)")
    query.add_argument("--profile", action="store_true",
                       help="print each vertex's nested community profile "
                            "instead of its k-level communities")
    query.add_argument("--cells", action="store_true",
                       help="also print the cell ids of each community")

    build_index = sub.add_parser(
        "build-index",
        help="out-of-core build: stream an edge file into .diskcsr CSR "
             "files, decompose on the disk backend, and persist the flat "
             ".npz query index — without ever holding the graph in RAM")
    build_index.add_argument("path", help="edge-list file (one 'u v' per line)")
    build_index.add_argument("output", help="destination .npz index path")
    build_index.add_argument("--r", type=int, default=1)
    build_index.add_argument("--s", type=int, default=2)
    build_index.add_argument("--chunk-edges", type=int, default=None,
                             metavar="N",
                             help="edges sorted per in-memory chunk during "
                                  "the external-sort build (default 2**20); "
                                  "the peak build memory knob")
    build_index.add_argument("--csr-dir", metavar="DIR", default=None,
                             help="keep the built .diskcsr files in DIR for "
                                  "later backend='disk' runs (default: a "
                                  "temporary directory, removed after the "
                                  "index is saved)")
    build_index.add_argument("--no-stats", action="store_true",
                             help="skip precomputing per-node profile "
                                  "statistics in the saved index")

    serve = sub.add_parser(
        "serve", help="serve one or many persisted .npz indexes over TCP "
                      "(NDJSON + HTTP) from a long-lived async process")
    serve.add_argument("indexes", nargs="+", metavar="INDEX",
                       help="persisted .npz index paths, each optionally "
                            "as name=path (default name: the file stem; "
                            "the first index is the default route)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks a free one; the printed "
                            "'serving ...' line reports it)")
    serve.add_argument("--coalesce-window", type=float, default=0.0,
                       metavar="MS",
                       help="max milliseconds a scalar request waits to "
                            "be coalesced into a batch kernel call "
                            "(default 0: batch whatever arrived by the "
                            "next event-loop tick)")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="flush a coalescer bucket early at this many "
                            "requests (default 512)")
    serve.add_argument("--workers", type=int, default=1,
                       help="accept-loop processes sharing the listening "
                            "socket and the mmap'd index pages (default 1)")
    serve.add_argument("--uncoalesced", action="store_true",
                       help="answer through the per-request scalar path "
                            "(the benchmark's reference mode)")
    serve.add_argument("--no-mmap", action="store_true",
                       help="copy the index arrays into each process "
                            "instead of memory-mapping them")

    export = sub.add_parser(
        "export", help="decompose and export the hierarchy (json/dot)")
    export.add_argument("path")
    export.add_argument("output")
    export.add_argument("--r", type=int, default=1)
    export.add_argument("--s", type=int, default=2)
    export.add_argument("--backend", choices=BACKENDS, default=None)
    export.add_argument("--workers", type=int, default=None)
    export.add_argument("--format", choices=["json", "dot", "skeleton-dot"],
                        default="json")
    return parser


def _print_decomposition(graph: Graph, r: int, s: int, algorithm: str,
                         show_tree: bool, max_nodes: int,
                         backend: str | None = None,
                         workers: int | None = None) -> None:
    result = decompose(graph, r, s, algorithm=algorithm, backend=backend,
                       workers=workers)
    shown = resolve_backend(graph, backend)
    if backend is None:
        shown += " (auto)"
    elif backend == "csr-parallel" and workers is not None:
        shown += f" ({workers} workers)"
    print(f"graph      : {graph!r}")
    print(f"parameters : ({r},{s}) nucleus, algorithm={algorithm}, "
          f"backend={shown}")
    print(f"max lambda : {result.max_lambda}")
    print(f"peel       : {result.peel_seconds:.4f}s")
    print(f"postprocess: {result.post_seconds:.4f}s")
    if result.hierarchy is not None:
        summary = hierarchy_stats(result)
        print(f"subnuclei  : {summary.num_subnuclei}")
        print(f"nuclei     : {summary.num_nuclei}")
        print(f"tree depth : {summary.depth}, leaves: {summary.num_leaves}")
        if show_tree:
            print(result.hierarchy.condense().format(max_nodes=max_nodes))
    else:
        print("hierarchy  : (hypo baseline builds none)")


def _read_floats(path: str) -> list[float]:
    with open(path) as handle:
        return [float(line) for line in handle if line.strip()]


def _read_int_rows(path: str) -> list[list[int]]:
    rows = []
    with open(path) as handle:
        for line in handle:
            fields = line.split()
            if fields and not fields[0].startswith("#"):
                rows.append([int(tok) for tok in fields])
    return rows


def _run_variant(args: argparse.Namespace) -> int:
    from repro.api import decompose as unified_decompose

    variant = args.variant
    shown = args.backend or "auto"
    if variant in ("weighted", "uncertain"):
        if not args.edge_values:
            raise ReproError(
                f"--variant {variant} needs --edge-values FILE "
                "(one value per line, edge-id order)")
        graph = load_graph(args.path)
        values = _read_floats(args.edge_values)
        params = ({"weights": values} if variant == "weighted"
                  else {"probabilities": values, "eta": args.eta})
        lam = unified_decompose(graph, 1, 2, variant=variant,
                                backend=args.backend, workers=args.workers,
                                **params)
        print(f"graph      : {graph!r}")
        print(f"variant    : {variant} (backend {shown})")
        if variant == "uncertain":
            print(f"eta        : {args.eta}")
        print(f"max lambda : {max(lam, default=0)}")
        return 0
    if variant == "directed":
        rows = _read_int_rows(args.path)
        arcs = [(u, v) for u, v, *_rest in rows]
        n = max((max(u, v) for u, v in arcs), default=-1) + 1
        from repro.graph.directed import DirectedGraph

        graph = DirectedGraph(n, arcs)
        in_core, out_core = unified_decompose(
            graph, 1, 2, variant="directed",
            backend=args.backend, workers=args.workers)
        print(f"graph      : {graph!r}")
        print(f"variant    : directed (backend {shown})")
        print(f"max in-core : {max(in_core, default=0)}")
        print(f"max out-core: {max(out_core, default=0)}")
        return 0
    # temporal / temporal-profile: lines are 'u v [t]' interaction events
    rows = _read_int_rows(args.path)
    events = [(row[0], row[1], row[2] if len(row) > 2 else i)
              for i, row in enumerate(rows)]
    n = max((max(u, v) for u, v, _t in events), default=-1) + 1
    from repro.graph.temporal import TemporalGraph

    graph = TemporalGraph(n, events)
    print(f"graph      : {graph!r}")
    print(f"variant    : {variant} (backend {shown})")
    if variant == "temporal":
        lam = unified_decompose(graph, 1, 2, variant="temporal", h=args.h,
                                backend=args.backend, workers=args.workers)
        print(f"h          : {args.h}")
        print(f"max lambda : {max(lam, default=0)}")
        return 0
    profile = unified_decompose(graph, 1, 2, variant="temporal-profile",
                                backend=args.backend, workers=args.workers)
    for h in sorted(profile):
        print(f"h={h}: max lambda {max(profile[h], default=0)}")
    return 0


def _run_query(args: argparse.Namespace) -> int:
    from repro.backends import build_query_index, load_query_index

    if args.path.endswith(".npz"):
        # registry-style mmap load: read-only page-cache views, no copy
        index = load_query_index(args.path, mmap_mode="r")
        print(f"loaded : {index!r} "
              f"({'mmap' if index.mmapped else 'eager'})")
    else:
        index = build_query_index(load_graph(args.path), args.r, args.s,
                                  backend=args.backend, workers=args.workers)
        print(f"built  : {index!r}")
    if args.save_index:
        index.save(args.save_index)
        print(f"saved  : {args.save_index}")
    if not args.vertices:
        return 0
    try:
        vertices = [int(tok) for tok in args.vertices.split(",") if tok]
    except ValueError as exc:
        raise ReproError(f"bad --vertices list: {exc}") from None
    if args.profile:
        for vertex, levels in zip(vertices,
                                      index.profile_batch(vertices),
                                      strict=True):
            print(f"vertex {vertex}:")
            for level in levels:
                print(f"  {level}")
            if not levels:
                print("  (no communities)")
        return 0
    answers = index.communities_of_vertex_batch(vertices, args.k)
    for vertex, communities in zip(vertices, answers, strict=True):
        sizes = ", ".join(str(len(c)) for c in communities) or "none"
        print(f"vertex {vertex}: {len(communities)} communities at k={args.k} "
              f"(cells: {sizes})")
        if args.cells:
            for cells in communities:
                print(f"  {cells.tolist()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    try:
        return _run(build_parser().parse_args(argv))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.command == "stats":
        graph = load_graph(args.path)
        print(f"graph    : {graph!r}")
        print(f"vertices : {graph.n}")
        print(f"edges    : {graph.m}")
        print(f"triangles: {triangle_count(graph)}")
        return 0
    if args.command == "decompose":
        if args.variant != "plain":
            return _run_variant(args)
        _print_decomposition(load_graph(args.path), args.r, args.s,
                             args.algorithm, args.tree, args.max_nodes,
                             backend=args.backend, workers=args.workers)
        return 0
    if args.command == "dataset":
        graph = load_dataset(args.name, args.size)
        _print_decomposition(graph, args.r, args.s, args.algorithm,
                             args.tree, args.max_nodes, backend=args.backend,
                             workers=args.workers)
        return 0
    if args.command == "densest":
        graph = load_graph(args.path)
        result = decompose(graph, args.r, args.s, algorithm="fnd",
                           backend=args.backend, workers=args.workers)
        for report in densest_nuclei(result, min_vertices=args.min_vertices,
                                     limit=args.top):
            print(report)
        return 0
    if args.command == "query":
        return _run_query(args)
    if args.command == "build-index":
        from repro.backends import build_query_index
        from repro.external.build import build_diskcsr

        disk = build_diskcsr(args.path, directory=args.csr_dir,
                             chunk_edges=args.chunk_edges)
        try:
            print(f"built  : {disk!r}")
            index = build_query_index(disk, args.r, args.s, backend="disk")
            index.save(args.output, stats=not args.no_stats)
        finally:
            disk.close()
        print(f"saved  : {args.output}")
        return 0
    if args.command == "serve":
        from repro.serve.server import ServerConfig, run_server

        config = ServerConfig(
            host=args.host, port=args.port,
            coalesce_window=args.coalesce_window / 1000.0,
            max_batch=args.max_batch, uncoalesced=args.uncoalesced,
            workers=args.workers)
        return run_server(args.indexes, config, mmap=not args.no_mmap)
    if args.command == "export":
        from repro.export import save_hierarchy, skeleton_to_dot, tree_to_dot

        graph = load_graph(args.path)
        result = decompose(graph, args.r, args.s, algorithm="fnd",
                           backend=args.backend, workers=args.workers)
        hierarchy = result.hierarchy
        assert hierarchy is not None
        if args.format == "json":
            save_hierarchy(hierarchy, args.output)
        else:
            text = (tree_to_dot(hierarchy.condense()) if args.format == "dot"
                    else skeleton_to_dot(hierarchy))
            with open(args.output, "w") as handle:
                handle.write(text)
        print(f"wrote {args.format} hierarchy to {args.output}")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
