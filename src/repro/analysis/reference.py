"""Definition-driven reference implementations (test oracles).

These compute λ values and nuclei straight from Definition 2 by repeated
global scans — no bucket queues, no disjoint sets, no traversal tricks — so
they share no code (and hence no bugs) with the optimised algorithms they
validate.  Complexity is O(maxλ · |cells| · |cofaces|); use on small graphs
only.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.views import CellView
from repro.graph.cliques import cliques
from repro.graph.adjacency import Graph

__all__ = [
    "enumerate_s_cliques",
    "reference_lambda",
    "reference_nuclei",
    "reference_core_numbers",
]


def enumerate_s_cliques(graph: Graph, view: CellView) -> list[tuple[int, ...]]:
    """All s-cliques as tuples of *cell ids* (each r-subset's id)."""
    cell_id: dict[tuple[int, ...], int] = {}
    for cell in range(view.num_cells):
        cell_id[tuple(sorted(view.cell_vertices(cell)))] = cell
    out: list[tuple[int, ...]] = []
    for s_clique in cliques(graph, view.s):
        out.append(tuple(cell_id[sub] for sub in combinations(s_clique, view.r)))
    return out


def reference_lambda(graph: Graph, view: CellView) -> list[int]:
    """λ of every cell, by iterated k-closure.

    For k = 1, 2, ...: repeatedly delete cells contained in fewer than k
    surviving s-cliques (an s-clique survives while all its cells do).
    Cells alive when the loop for k stabilises have λ >= k.
    """
    s_cliques = enumerate_s_cliques(graph, view)
    lam = [0] * view.num_cells
    alive = [True] * view.num_cells
    k = 1
    while any(alive):
        # shrink to the k-closure
        changed = True
        while changed:
            changed = False
            degree = [0] * view.num_cells
            for members in s_cliques:
                if all(alive[c] for c in members):
                    for c in members:
                        degree[c] += 1
            for cell in range(view.num_cells):
                if alive[cell] and degree[cell] < k:
                    alive[cell] = False
                    changed = True
        for cell in range(view.num_cells):
            if alive[cell]:
                lam[cell] = k
        k += 1
    return lam


def reference_nuclei(graph: Graph, view: CellView,
                     lam: list[int] | None = None) -> set[tuple[int, frozenset[int]]]:
    """Canonical nucleus family {(k, cells)} straight from Corollary 1.

    At level k, cells with λ >= k are joined whenever they share an s-clique
    whose minimum λ is >= k; connected components that contain at least one
    cell with λ exactly k are the (canonical) k-(r,s) nuclei.
    """
    if lam is None:
        lam = reference_lambda(graph, view)
    s_cliques = enumerate_s_cliques(graph, view)
    max_lambda = max(lam, default=0)
    out: set[tuple[int, frozenset[int]]] = set()
    for k in range(1, max_lambda + 1):
        parent = {c: c for c in range(view.num_cells) if lam[c] >= k}

        def find(c: int) -> int:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        for members in s_cliques:
            if min(lam[c] for c in members) >= k:
                first = find(members[0])
                for other in members[1:]:
                    parent[find(other)] = first
        groups: dict[int, set[int]] = {}
        for c in parent:
            groups.setdefault(find(c), set()).add(c)
        for group in groups.values():
            if any(lam[c] == k for c in group):
                out.add((k, frozenset(group)))
    return out


def reference_core_numbers(graph: Graph) -> list[int]:
    """Independent O(n²) core numbers: delete min-degree vertices directly."""
    degree = graph.degrees()
    alive = [True] * graph.n
    lam = [0] * graph.n
    current = 0
    for _ in range(graph.n):
        best, best_degree = -1, None
        for v in range(graph.n):
            if alive[v] and (best_degree is None or degree[v] < best_degree):
                best, best_degree = v, degree[v]
        if best == -1:
            break
        current = max(current, best_degree)  # type: ignore[arg-type]
        lam[best] = current
        alive[best] = False
        for w in graph.neighbors(best):
            if alive[w]:
                degree[w] -= 1
    return lam
