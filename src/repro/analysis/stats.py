"""Dataset and hierarchy statistics — everything Table 3 reports.

For each graph the paper lists |V|, |E|, |△|, |K4|, the density ratios, the
number of sub-(r,s) nuclei |T_{r,s}| (true maximal sub-nuclei, produced by
DFT), the non-maximal count |T*_{r,s}| (FND's artefact), and |c↓(T*)| — the
downward connections FND's ADJ list records.  :func:`table3_row` computes a
full row; :func:`hierarchy_stats` summarises any decomposition's tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import nucleus_decomposition
from repro.core.views import build_view
from repro.graph.adjacency import Graph
from repro.graph.cliques import four_clique_count, triangle_count

__all__ = ["Table3Row", "table3_row", "HierarchyStats", "hierarchy_stats"]


@dataclass
class Table3Row:
    """One dataset row of the paper's Table 3."""

    name: str
    num_vertices: int
    num_edges: int
    num_triangles: int
    num_four_cliques: int
    t12: int
    t12_star: int
    t23: int
    t23_star: int
    t34: int
    t34_star: int
    c_down_23: int
    c_down_34: int

    @property
    def edge_density(self) -> float:
        """|E| / |V| (column 6)."""
        return self.num_edges / self.num_vertices if self.num_vertices else 0.0

    @property
    def triangle_density(self) -> float:
        """|△| / |E| (column 7)."""
        return self.num_triangles / self.num_edges if self.num_edges else 0.0

    @property
    def k4_density(self) -> float:
        """|K4| / |△| (column 8)."""
        return self.num_four_cliques / self.num_triangles if self.num_triangles else 0.0

    def as_tuple(self) -> tuple:
        return (self.name, self.num_vertices, self.num_edges,
                self.num_triangles, self.num_four_cliques,
                round(self.edge_density, 2), round(self.triangle_density, 2),
                round(self.k4_density, 2), self.t12, self.t12_star,
                self.t23, self.t23_star, self.t34, self.t34_star,
                self.c_down_23, self.c_down_34)


def table3_row(graph: Graph, include_34: bool = True) -> Table3Row:
    """Compute a Table 3 row: clique counts and sub-nucleus statistics.

    |T_{r,s}| comes from DFT (maximal sub-nuclei are its skeleton nodes);
    |T*_{r,s}| and |c↓| come from FND instrumentation.  ``include_34=False``
    skips the (3,4) columns (zeros) for very dense graphs.
    """
    pairs = [(1, 2), (2, 3)] + ([(3, 4)] if include_34 else [])
    t: dict[tuple[int, int], int] = {}
    t_star: dict[tuple[int, int], int] = {}
    c_down: dict[tuple[int, int], int] = {}
    for r, s in pairs:
        view = build_view(graph, r, s)
        # deliberate direct engine calls: this is an instrumented A/B of
        # the dft and fnd algorithms over one shared view, not a
        # backend-dispatched decomposition
        dft = nucleus_decomposition(graph, r, s, algorithm="dft",
                                    view=view)  # repro-lint: disable=backend-parity
        fnd = nucleus_decomposition(graph, r, s, algorithm="fnd",
                                    view=view)  # repro-lint: disable=backend-parity
        assert dft.hierarchy is not None and fnd.fnd_stats is not None
        t[(r, s)] = dft.hierarchy.num_subnuclei
        t_star[(r, s)] = fnd.fnd_stats.num_subnuclei
        c_down[(r, s)] = fnd.fnd_stats.num_downward_connections
    return Table3Row(
        name=graph.name or "graph",
        num_vertices=graph.n,
        num_edges=graph.m,
        num_triangles=triangle_count(graph),
        num_four_cliques=four_clique_count(graph),
        t12=t[(1, 2)], t12_star=t_star[(1, 2)],
        t23=t[(2, 3)], t23_star=t_star[(2, 3)],
        t34=t.get((3, 4), 0), t34_star=t_star.get((3, 4), 0),
        c_down_23=c_down[(2, 3)], c_down_34=c_down.get((3, 4), 0),
    )


@dataclass
class HierarchyStats:
    """Shape summary of a hierarchy tree."""

    num_subnuclei: int
    num_nuclei: int
    max_lambda: int
    depth: int
    num_leaves: int
    largest_leaf: int


def hierarchy_stats(decomposition) -> HierarchyStats:
    """Summarise a :class:`~repro.core.decomposition.Decomposition`'s tree."""
    hierarchy = decomposition.hierarchy
    if hierarchy is None:
        raise ValueError(f"{decomposition.algorithm} produced no hierarchy")
    tree = hierarchy.condense()
    leaves = tree.leaves()
    return HierarchyStats(
        num_subnuclei=hierarchy.num_subnuclei,
        num_nuclei=len(tree) - 1,
        max_lambda=hierarchy.max_lambda,
        depth=tree.depth(),
        num_leaves=len(leaves),
        largest_leaf=max((len(tree.subtree_cells(leaf.id)) for leaf in leaves),
                         default=0),
    )
