"""Density measures and dense-subgraph reports.

The motivation for nucleus decompositions is dense subgraph *discovery*:
given the hierarchy, walk its nuclei and report the densest ones.  These
helpers turn a :class:`~repro.core.decomposition.Decomposition` into the
kind of density report the nucleus papers print (size vs edge density of
each nucleus), which the examples use on the social-network scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import Decomposition
from repro.graph.adjacency import Graph

__all__ = ["edge_density", "average_degree", "NucleusReport", "densest_nuclei"]


def edge_density(graph: Graph) -> float:
    """2|E| / (|V|·(|V|-1)) — 1.0 for a clique, 0.0 for an empty graph."""
    if graph.n < 2:
        return 0.0
    return 2.0 * graph.m / (graph.n * (graph.n - 1))


def average_degree(graph: Graph) -> float:
    """2|E| / |V|."""
    return 2.0 * graph.m / graph.n if graph.n else 0.0


@dataclass
class NucleusReport:
    """One nucleus in a density report."""

    node_id: int
    k: int
    num_vertices: int
    num_edges: int
    density: float

    def __str__(self) -> str:
        return (f"nucleus[{self.node_id}] k={self.k} |V|={self.num_vertices} "
                f"|E|={self.num_edges} density={self.density:.3f}")


def densest_nuclei(decomposition: Decomposition, min_vertices: int = 4,
                   limit: int = 20) -> list[NucleusReport]:
    """The densest nuclei in a hierarchy, largest density first.

    Only nuclei with at least ``min_vertices`` vertices are reported (tiny
    cliques are trivially dense and uninteresting).
    """
    hierarchy = decomposition.hierarchy
    if hierarchy is None:
        raise ValueError(f"{decomposition.algorithm} produced no hierarchy")
    tree = hierarchy.condense()
    reports: list[NucleusReport] = []
    for node in tree.nodes:
        if node.id == tree.root:
            continue
        vertices = decomposition.view.vertices_of_cells(tree.subtree_cells(node.id))
        if len(vertices) < min_vertices:
            continue
        sub = decomposition.graph.subgraph(vertices)
        reports.append(NucleusReport(
            node_id=node.id, k=node.k, num_vertices=sub.n, num_edges=sub.m,
            density=edge_density(sub)))
    reports.sort(key=lambda rep: (-rep.density, -rep.num_vertices))
    return reports[:limit]
