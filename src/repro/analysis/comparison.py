"""Comparing hierarchies and nucleus families.

Used three ways: (a) cross-algorithm regression — Naive/DFT/FND/LCPS must
score 1.0 against each other; (b) robustness studies — how much does a
hierarchy move when the graph is perturbed?; (c) evaluating stand-in
datasets against structural expectations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hierarchy import Hierarchy

__all__ = ["HierarchyComparison", "compare_hierarchies", "nucleus_jaccard"]


def nucleus_jaccard(a: frozenset[int], b: frozenset[int]) -> float:
    """Jaccard similarity of two cell sets."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass
class HierarchyComparison:
    """Similarity summary between two hierarchies of the same graph."""

    identical: bool
    num_nuclei_a: int
    num_nuclei_b: int
    shared_nuclei: int
    mean_best_jaccard: float  # each A-nucleus matched to its best B-peer

    @property
    def precision(self) -> float:
        """Fraction of A's nuclei found exactly in B."""
        return self.shared_nuclei / self.num_nuclei_a if self.num_nuclei_a else 1.0

    @property
    def recall(self) -> float:
        """Fraction of B's nuclei found exactly in A."""
        return self.shared_nuclei / self.num_nuclei_b if self.num_nuclei_b else 1.0


def compare_hierarchies(a: Hierarchy, b: Hierarchy) -> HierarchyComparison:
    """Compare two hierarchies via their canonical nucleus families.

    Exact matches are counted per (k, cell-set); the soft score matches
    every A-nucleus to the best-Jaccard B-nucleus *at the same level* so
    near-misses are visible when graphs differ slightly.
    """
    family_a = a.canonical_nuclei()
    family_b = b.canonical_nuclei()
    shared = family_a & family_b

    by_level_b: dict[int, list[frozenset[int]]] = {}
    for k, cells in family_b:
        by_level_b.setdefault(k, []).append(cells)

    scores: list[float] = []
    for k, cells in family_a:
        peers = by_level_b.get(k, [])
        scores.append(max((nucleus_jaccard(cells, other) for other in peers),
                          default=0.0))

    return HierarchyComparison(
        identical=family_a == family_b,
        num_nuclei_a=len(family_a),
        num_nuclei_b=len(family_b),
        shared_nuclei=len(shared),
        mean_best_jaccard=(sum(scores) / len(scores)) if scores else 1.0,
    )
