"""Analysis utilities: density reports, Table-3 statistics, test oracles."""

from repro.analysis.density import (
    NucleusReport,
    average_degree,
    densest_nuclei,
    edge_density,
)
from repro.analysis.reference import (
    reference_core_numbers,
    reference_lambda,
    reference_nuclei,
)
from repro.analysis.stats import (
    HierarchyStats,
    Table3Row,
    hierarchy_stats,
    table3_row,
)

__all__ = [
    "edge_density",
    "average_degree",
    "NucleusReport",
    "densest_nuclei",
    "reference_lambda",
    "reference_nuclei",
    "reference_core_numbers",
    "Table3Row",
    "table3_row",
    "HierarchyStats",
    "hierarchy_stats",
]
