"""Hierarchy-skeleton structure analysis (paper §6, open question 1).

The paper closes by suggesting that the sub-nuclei T_{r,s} — many more
numerous than the nuclei — "might reveal more insight about networks" and
that this "corresponds to the hierarchy-skeleton structure our algorithms
produce".  This module computes that per-level anatomy: how many
sub-nuclei exist at each λ, how large they are, how branchy the skeleton
is, and how much the non-maximal T* inflate over T.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hierarchy import Hierarchy

__all__ = ["LevelProfile", "SkeletonReport", "skeleton_report"]


@dataclass
class LevelProfile:
    """Sub-nucleus statistics at one λ level."""

    lam: int
    count: int
    total_cells: int
    largest: int
    smallest: int

    @property
    def mean_size(self) -> float:
        return self.total_cells / self.count if self.count else 0.0


@dataclass
class SkeletonReport:
    """Whole-skeleton anatomy."""

    num_subnuclei: int
    num_levels: int
    max_lambda: int
    levels: list[LevelProfile] = field(default_factory=list)
    max_branching: int = 0
    mean_branching: float = 0.0
    equal_lambda_edges: int = 0  # disjoint-set "thin" edges (Fig. 5)
    cross_lambda_edges: int = 0  # containment edges

    def level(self, lam: int) -> LevelProfile | None:
        for profile in self.levels:
            if profile.lam == lam:
                return profile
        return None

    def format(self) -> str:
        lines = [f"skeleton: {self.num_subnuclei} sub-nuclei across "
                 f"{self.num_levels} levels (max lambda {self.max_lambda})",
                 f"edges: {self.equal_lambda_edges} equal-lambda (merges), "
                 f"{self.cross_lambda_edges} containment",
                 f"branching: max {self.max_branching}, "
                 f"mean {self.mean_branching:.2f}",
                 f"{'lambda':>7s} {'count':>6s} {'cells':>7s} "
                 f"{'largest':>8s} {'mean':>7s}"]
        for profile in self.levels:
            lines.append(f"{profile.lam:7d} {profile.count:6d} "
                         f"{profile.total_cells:7d} {profile.largest:8d} "
                         f"{profile.mean_size:7.1f}")
        return "\n".join(lines)


def skeleton_report(hierarchy: Hierarchy) -> SkeletonReport:
    """Per-level anatomy of a hierarchy-skeleton."""
    by_level: dict[int, list[int]] = {}
    for node in range(hierarchy.num_nodes):
        if node == hierarchy.root:
            continue
        by_level.setdefault(hierarchy.node_lambda[node], []).append(node)

    levels: list[LevelProfile] = []
    for lam in sorted(by_level, reverse=True):
        sizes = [len(hierarchy.members(node)) for node in by_level[lam]]
        levels.append(LevelProfile(
            lam=lam, count=len(sizes), total_cells=sum(sizes),
            largest=max(sizes), smallest=min(sizes)))

    children = hierarchy.children_lists()
    internal = [len(children[node]) for node in range(hierarchy.num_nodes)
                if children[node]]
    equal = cross = 0
    for node, par in enumerate(hierarchy.parent):
        if par is None or par == hierarchy.root:
            continue
        if hierarchy.node_lambda[node] == hierarchy.node_lambda[par]:
            equal += 1
        else:
            cross += 1

    return SkeletonReport(
        num_subnuclei=hierarchy.num_subnuclei,
        num_levels=len(levels),
        max_lambda=hierarchy.max_lambda,
        levels=levels,
        max_branching=max(internal, default=0),
        mean_branching=(sum(internal) / len(internal)) if internal else 0.0,
        equal_lambda_edges=equal,
        cross_lambda_edges=cross,
    )
