"""Incremental k-core maintenance under edge insertions and removals.

The paper's sub-(1,2) nucleus T_{1,2} *is* the "subcore" of Sariyüce et
al., *Streaming algorithms for k-core decomposition* (PVLDB 6(6), 2013) —
reference [41], the only prior work the survey credits with handling
connectivity correctly.  This module implements that subcore algorithm so
the library covers the dynamic setting the paper positions itself against:

* a single edge insertion or removal changes any core number by **at most
  one** (the classic incremental invariant);
* only vertices in the *subcore* of the lower-λ endpoint can change;
* **insertion**: vertices of the subcore whose *candidate degree* (
  neighbours with λ > k, plus subcore neighbours that survive) stays > k
  after iterated pruning gain one;
* **removal**: subcore vertices are re-peeled locally; those whose
  restricted degree falls below k lose one.

`IncrementalCoreMaintainer` keeps a mutable adjacency plus the λ array and
exposes `insert_edge` / `remove_edge`; correctness is property-tested
against full recomputation on random edge streams.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.peeling import peel
from repro.core.views import VertexView
from repro.errors import InvalidGraphError
from repro.graph.adjacency import Graph

__all__ = ["IncrementalCoreMaintainer"]


class IncrementalCoreMaintainer:
    """Maintains λ₂ (core numbers) of a dynamic graph."""

    def __init__(self, graph: Graph | None = None, n: int = 0):
        if graph is not None:
            self._adjacency: list[set[int]] = [set(graph.neighbor_set(v))
                                               for v in graph.vertices()]
            self.lam: list[int] = peel(VertexView(graph)).lam
        else:
            self._adjacency = [set() for _ in range(n)]
            self.lam = [0] * n

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._adjacency)

    @property
    def m(self) -> int:
        return sum(len(adj) for adj in self._adjacency) // 2

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    def neighbors(self, v: int) -> set[int]:
        return self._adjacency[v]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency[u]

    def core_numbers(self) -> list[int]:
        """Current λ₂ of every vertex (a copy)."""
        return list(self.lam)

    def snapshot(self) -> Graph:
        """The current graph as an immutable :class:`Graph`."""
        edges = [(u, v) for u in range(self.n)
                 for v in self._adjacency[u] if u < v]
        return Graph(self.n, edges)

    def add_vertex(self) -> int:
        """Add an isolated vertex; returns its id."""
        self._adjacency.append(set())
        self.lam.append(0)
        return self.n - 1

    # ------------------------------------------------------------------
    # the subcore (T_{1,2}) of a vertex, in the *current* graph
    # ------------------------------------------------------------------
    def subcore(self, root: int) -> list[int]:
        """Vertices of λ = λ(root) reachable via vertices of λ >= λ(root).

        This is the paper's T_{1,2} containing ``root``: traversal steps on
        equal-λ vertices, where the connecting edge has min λ equal to k
        (i.e. the other endpoint has λ >= k).
        """
        k = self.lam[root]
        seen = {root}
        out = [root]
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for w in self._adjacency[u]:
                if self.lam[w] == k and w not in seen:
                    seen.add(w)
                    out.append(w)
                    queue.append(w)
        return out

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> list[int]:
        """Insert edge {u, v}; returns the vertices whose λ increased."""
        if u == v:
            raise InvalidGraphError(f"self loop on vertex {u} is not allowed")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise InvalidGraphError(f"edge ({u}, {v}) out of range for n={self.n}")
        if v in self._adjacency[u]:
            return []
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

        # Only the subcore of the lower-λ endpoint can gain; on a tie the
        # candidate region is the union of both subcores (they may merge).
        if self.lam[u] == self.lam[v]:
            candidates = set(self.subcore(u))
            candidates.update(self.subcore(v))
        else:
            root = u if self.lam[u] < self.lam[v] else v
            candidates = set(self.subcore(root))
        k = min(self.lam[u], self.lam[v])

        # candidate degree: neighbours that could support level k+1 —
        # λ > k always counts; λ == k counts only while still a candidate
        cd: dict[int, int] = {}
        for x in candidates:
            cd[x] = sum(1 for w in self._adjacency[x]
                        if self.lam[w] > k or w in candidates)
        # iterated pruning: a vertex needs cd > k (i.e. >= k+1) to gain
        stack = [x for x in candidates if cd[x] <= k]
        dropped = set()
        while stack:
            x = stack.pop()
            if x in dropped:
                continue
            dropped.add(x)
            for w in self._adjacency[x]:
                if w in candidates and w not in dropped and self.lam[w] == k:
                    cd[w] -= 1
                    if cd[w] <= k:
                        stack.append(w)
        gained = [x for x in candidates if x not in dropped]
        for x in gained:
            self.lam[x] = k + 1
        return sorted(gained)

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    def remove_edge(self, u: int, v: int) -> list[int]:
        """Remove edge {u, v}; returns the vertices whose λ decreased."""
        if v not in self._adjacency[u]:
            raise InvalidGraphError(f"edge ({u}, {v}) is not in the graph")
        self._adjacency[u].remove(v)
        self._adjacency[v].remove(u)

        k = min(self.lam[u], self.lam[v])
        if self.lam[u] == self.lam[v]:
            candidates = set(self.subcore(u))
            candidates.update(self.subcore(v))
        else:
            root = u if self.lam[u] < self.lam[v] else v
            candidates = set(self.subcore(root))

        # current support at level k: neighbours with λ >= k
        cd: dict[int, int] = {}
        for x in candidates:
            cd[x] = sum(1 for w in self._adjacency[x] if self.lam[w] >= k)
        stack = [x for x in candidates if cd[x] < k]
        dropped: set[int] = set()
        while stack:
            x = stack.pop()
            if x in dropped:
                continue
            dropped.add(x)
            self.lam[x] = k - 1
            for w in self._adjacency[x]:
                # x no longer supports level k for its neighbours
                if w in candidates and w not in dropped and cd.get(w, 0) >= k:
                    cd[w] -= 1
                    if cd[w] < k:
                        stack.append(w)
        return sorted(dropped)

    # ------------------------------------------------------------------
    def apply_stream(self, operations: Iterable[tuple[str, int, int]]) -> None:
        """Apply ('add'|'remove', u, v) operations in order."""
        for op, u, v in operations:
            if op == "add":
                self.insert_edge(u, v)
            elif op == "remove":
                self.remove_edge(u, v)
            else:
                raise InvalidGraphError(f"unknown stream operation {op!r}")

    def __repr__(self) -> str:
        return f"<IncrementalCoreMaintainer n={self.n} m={self.m}>"
