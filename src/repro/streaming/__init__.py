"""Dynamic-graph maintenance (the paper's reference [41] setting)."""

from repro.streaming.kcore import IncrementalCoreMaintainer

__all__ = ["IncrementalCoreMaintainer"]
