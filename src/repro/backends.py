"""Backend dispatch: run any decomposition on either graph representation.

Two backends implement the peeling engine:

* ``"object"`` — :class:`~repro.graph.adjacency.Graph`, per-vertex
  ``set``/``list`` adjacency.  Flexible, allocation-heavy.
* ``"csr"`` — :class:`~repro.graph.csr.CSRGraph`, flat ``indptr`` /
  ``indices`` / edge-id arrays with direct peels
  (:mod:`repro.core.csr_peel`) and merge-intersection cell views.

Callers pick per run: every function here takes ``backend=`` (or an
already-converted graph) and guarantees **identical λ output** across
backends — only speed differs.  Cell ids are representation-independent
(vertices are shared, edge and triangle ids are lexicographic on both
backends), so the λ arrays compare element-for-element.  The CLI exposes
the switch as ``--backend`` and the benchmark suite as the
``REPRO_BENCH_BACKEND`` environment variable.
"""

from __future__ import annotations

from repro.core.csr_peel import csr_core_peel, csr_truss_peel
from repro.core.decomposition import Decomposition, nucleus_decomposition
from repro.core.peeling import PeelingResult, peel
from repro.core.views import build_view
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "as_backend",
    "as_csr",
    "as_object",
    "backend_view",
    "core_peel",
    "decompose",
    "resolve_backend",
    "truss_peel",
]

BACKENDS = ("object", "csr")
DEFAULT_BACKEND = "object"


def _check(backend: str) -> None:
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")


def resolve_backend(graph: Graph | CSRGraph, backend: str | None) -> str:
    """Resolve a ``backend=None`` sentinel to the engine matching ``graph``.

    An explicit backend name is validated and returned untouched — passing
    ``backend="object"`` with a :class:`CSRGraph` really does convert and
    run the object engine (useful for A/B measurements).
    """
    if backend is None:
        return "csr" if isinstance(graph, CSRGraph) else "object"
    _check(backend)
    return backend


def as_csr(graph: Graph | CSRGraph) -> CSRGraph:
    """The CSR representation of ``graph`` (no-op if already CSR)."""
    if isinstance(graph, CSRGraph):
        return graph
    return CSRGraph.from_graph(graph)


def as_object(graph: Graph | CSRGraph) -> Graph:
    """The object representation of ``graph`` (no-op if already object)."""
    if isinstance(graph, Graph):
        return graph
    return graph.to_object()


def as_backend(graph: Graph | CSRGraph, backend: str) -> Graph | CSRGraph:
    """Convert ``graph`` to the representation the backend peels."""
    _check(backend)
    return as_csr(graph) if backend == "csr" else as_object(graph)


def backend_view(graph: Graph | CSRGraph, r: int, s: int, backend: str):
    """The (r, s) cell view over the chosen backend's representation."""
    return build_view(as_backend(graph, backend), r, s)


def core_peel(graph: Graph | CSRGraph,
              backend: str = DEFAULT_BACKEND) -> PeelingResult:
    """(1,2) peel — λ₂ (core numbers) plus degeneracy order.

    The CSR backend runs the direct Batagelj–Zaversnik array peel; the
    object backend the generic Set-λ over :class:`VertexView`.
    """
    _check(backend)
    if backend == "csr":
        return csr_core_peel(as_csr(graph))
    return peel(build_view(as_object(graph), 1, 2))


def truss_peel(graph: Graph | CSRGraph,
               backend: str = DEFAULT_BACKEND) -> PeelingResult:
    """(2,3) peel — λ₃ per edge id (ids are lexicographic on both backends,
    so the arrays compare element-for-element)."""
    _check(backend)
    if backend == "csr":
        return csr_truss_peel(as_csr(graph))
    return peel(build_view(as_object(graph), 2, 3))


def decompose(graph: Graph | CSRGraph, r: int = 1, s: int = 2,
              algorithm: str = "fnd",
              backend: str = DEFAULT_BACKEND) -> Decomposition:
    """Full nucleus decomposition with the chosen backend's cell views.

    The returned :class:`Decomposition` always carries the object
    :class:`Graph` (subgraph extraction and reporting live there); the
    backend choice decides which views feed the peeling and hierarchy
    phases.
    """
    _check(backend)
    obj = as_object(graph)
    if backend == "object":
        return nucleus_decomposition(obj, r, s, algorithm=algorithm)
    view = build_view(as_csr(graph), r, s)
    return nucleus_decomposition(obj, r, s, algorithm=algorithm, view=view)
