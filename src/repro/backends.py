"""Backend dispatch: run any decomposition on any graph engine.

Four backends implement the peeling engine:

* ``"object"`` — :class:`~repro.graph.adjacency.Graph`, per-vertex
  ``set``/``list`` adjacency.  Flexible, allocation-heavy.
* ``"csr"`` — :class:`~repro.graph.csr.CSRGraph`, flat ``indptr`` /
  ``indices`` / edge-id arrays with direct peels
  (:mod:`repro.core.csr_peel`), direct traversal-free hierarchy
  construction (:mod:`repro.core.csr_fnd`) and merge-intersection cell
  views.
* ``"csr-parallel"`` — the CSR arrays plus the shared-memory execution
  layer of :mod:`repro.parallel`: worker-sharded incidence set-up,
  round-synchronous bulk peels, and level-wise parallel hierarchy
  construction over the shared rooted forest.  Takes ``workers=N``
  (default: the ``REPRO_WORKERS`` environment variable, else 1);
  ``workers=1`` runs the sequential CSR engine with no process pool.
  Requires numpy.
* ``"disk"`` — :class:`~repro.external.diskcsr.DiskCSRGraph`, the same
  flat arrays stored in ``np.memmap``-backed ``.npy`` files and served
  through windowed block readers, with the incidence of (2,3)/(3,4)
  spooled to scratch files (:mod:`repro.external.engine`).  Peak memory
  is bounded by the window cache and the O(#cells) peeling state, not
  the graph — the out-of-core engine for graphs bigger than RAM.
  Requires numpy.

Callers pick per run: every function here takes ``backend=`` (or an
already-converted graph) and guarantees **identical λ output** across
backends — only speed differs.  ``backend=None`` (the default everywhere)
means *follow the representation passed in*: a :class:`CSRGraph` runs the
CSR engine, a :class:`Graph` the object engine, with no silent conversion
either way (the parallel engine is never auto-selected).  Cell ids are
representation-independent (vertices are shared, edge and triangle ids
are lexicographic on both backends), so the λ arrays compare
element-for-element, and the condensed hierarchies are identical.
The CLI exposes the switch as ``--backend`` (default: auto) plus
``--workers``, and the benchmark suite as the ``REPRO_BENCH_BACKEND``
environment variable.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, cast

from repro.core.csr_fnd import CSR_FND_RS, csr_fnd_decomposition
from repro.core.csr_peel import (
    csr_core_peel,
    csr_nucleus34_peel,
    csr_truss_peel,
)
from repro.core.decomposition import Decomposition, nucleus_decomposition
from repro.core.fnd import FndInstrumentation
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import PeelingResult, peel
from repro.core.views import build_view
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

if TYPE_CHECKING:
    from pathlib import Path

    from repro.external.diskcsr import DiskCSRGraph
    from repro.flatindex import FlatHierarchyIndex

    AnyGraph = Graph | CSRGraph | DiskCSRGraph

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "as_backend",
    "as_csr",
    "as_disk",
    "as_object",
    "backend_view",
    "build_query_index",
    "core_peel",
    "decompose",
    "directed_core_peel",
    "load_query_index",
    "nucleus34_peel",
    "resolve_backend",
    "temporal_core_peel",
    "temporal_core_sweep",
    "truss_peel",
    "uncertain_core_peel",
    "weighted_core_peel",
]

BACKENDS = ("object", "csr", "csr-parallel", "disk")

#: engine used when an object :class:`Graph` is passed with ``backend=None``
DEFAULT_BACKEND = "object"


def _check(backend: str) -> None:
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")


def _resolve_parallel_workers(workers: int | None) -> int:
    """Validated worker count for the ``csr-parallel`` engine (lazy import
    keeps the object/CSR engines importable without numpy)."""
    from repro.parallel import resolve_workers

    return resolve_workers(workers)


def _diskcsr_type() -> type | None:
    """The :class:`DiskCSRGraph` type, or ``None`` when numpy is absent
    (lazy import keeps the object/CSR engines importable without it)."""
    try:
        from repro.external.diskcsr import DiskCSRGraph
    except ImportError:  # pragma: no cover - diskcsr itself guards numpy
        return None
    return DiskCSRGraph


def resolve_backend(graph: AnyGraph, backend: str | None) -> str:
    """Resolve a ``backend=None`` sentinel to the engine matching ``graph``.

    An explicit backend name is validated and returned untouched — passing
    ``backend="object"`` with a :class:`CSRGraph` really does convert and
    run the object engine (useful for A/B measurements).
    """
    if backend is None:
        if isinstance(graph, CSRGraph):
            return "csr"
        disk_cls = _diskcsr_type()
        if disk_cls is not None and isinstance(graph, disk_cls):
            return "disk"
        return "object"
    _check(backend)
    return backend


def as_csr(graph: AnyGraph) -> CSRGraph:
    """The CSR representation of ``graph`` (no-op if already CSR)."""
    if isinstance(graph, CSRGraph):
        return graph
    if isinstance(graph, Graph):
        return CSRGraph.from_graph(graph)
    # disk (or any duck-typed flat) representation: edges stream sorted
    return CSRGraph(graph.n, graph.edges(), name=graph.name)


def as_object(graph: AnyGraph) -> Graph:
    """The object representation of ``graph`` (no-op if already object)."""
    if isinstance(graph, Graph):
        return graph
    return graph.to_object()


def as_disk(graph: AnyGraph) -> "DiskCSRGraph":
    """The disk-backed representation of ``graph`` (no-op if already disk).

    A converted graph lives in a temporary ``.diskcsr`` directory it owns
    and removes on ``close()``; build into a persistent directory with
    :func:`repro.external.build.build_diskcsr` instead.  Requires numpy.
    """
    from repro.external.diskcsr import as_diskcsr

    return as_diskcsr(graph)


def _ensure_disk(graph: AnyGraph) -> "tuple[DiskCSRGraph, bool]":
    """``(disk_graph, converted)`` — ``converted`` means this call built a
    temporary owned directory the caller must ``close()``."""
    disk_cls = _diskcsr_type()
    if disk_cls is not None and isinstance(graph, disk_cls):
        return cast("DiskCSRGraph", graph), False
    return as_disk(graph), True


def as_backend(graph: AnyGraph, backend: str) -> AnyGraph:
    """Convert ``graph`` to the representation the backend peels."""
    _check(backend)
    if backend == "object":
        return as_object(graph)
    if backend == "disk":
        return as_disk(graph)
    return as_csr(graph)


def backend_view(graph: AnyGraph, r: int, s: int,
                 backend: str) -> Any:
    """The (r, s) cell view over the chosen backend's representation."""
    return build_view(as_backend(graph, backend), r, s)


def core_peel(graph: AnyGraph, backend: str | None = None,
              workers: int | None = None) -> PeelingResult:
    """(1,2) peel — λ₂ (core numbers) plus degeneracy order.

    The CSR backend runs the direct Batagelj–Zaversnik array peel; the
    object backend the generic Set-λ over :class:`VertexView`; the disk
    backend the same array peel over windowed memmap reads; the
    parallel backend the round-synchronous bulk peel over ``workers``
    processes (``workers=1``: the sequential CSR peel, no pool).
    ``backend=None`` follows the representation passed in.
    """
    backend = resolve_backend(graph, backend)
    if backend == "disk":
        disk, converted = _ensure_disk(graph)
        try:
            from repro.external.engine import disk_core_peel

            return disk_core_peel(disk)
        finally:
            if converted:
                disk.close()
    if backend == "csr-parallel":
        count = _resolve_parallel_workers(workers)
        if count > 1:
            from repro.parallel import parallel_core_peel

            return parallel_core_peel(as_csr(graph), count)
        backend = "csr"
    if backend == "csr":
        return csr_core_peel(as_csr(graph))
    return peel(build_view(as_object(graph), 1, 2))


def truss_peel(graph: AnyGraph, backend: str | None = None,
               workers: int | None = None) -> PeelingResult:
    """(2,3) peel — λ₃ per edge id (ids are lexicographic on every backend,
    so the arrays compare element-for-element).  ``backend=None`` follows
    the representation passed in; the disk backend spools the triangle
    incidence to scratch files; the parallel backend shards the triangle
    listing and peels in bulk rounds over ``workers`` processes."""
    backend = resolve_backend(graph, backend)
    if backend == "disk":
        disk, converted = _ensure_disk(graph)
        try:
            from repro.external.engine import disk_truss_peel

            return disk_truss_peel(disk)
        finally:
            if converted:
                disk.close()
    if backend == "csr-parallel":
        count = _resolve_parallel_workers(workers)
        if count > 1:
            from repro.parallel import parallel_truss_peel

            return parallel_truss_peel(as_csr(graph), count)
        backend = "csr"
    if backend == "csr":
        return csr_truss_peel(as_csr(graph))
    return peel(build_view(as_object(graph), 2, 3))


def nucleus34_peel(graph: AnyGraph, backend: str | None = None,
                   workers: int | None = None) -> PeelingResult:
    """(3,4) peel — λ₄ per lexicographic triangle id.

    The CSR backend replays a materialised triangle→K₄ incidence; the
    object backend runs the generic Set-λ over :class:`TriangleView`; the
    disk backend replays the same incidence spooled to scratch files; the
    parallel backend shards the K₄ listing and peels in bulk rounds.
    ``backend=None`` follows the representation passed in."""
    backend = resolve_backend(graph, backend)
    if backend == "disk":
        disk, converted = _ensure_disk(graph)
        try:
            from repro.external.engine import disk_nucleus34_peel

            return disk_nucleus34_peel(disk)
        finally:
            if converted:
                disk.close()
    if backend == "csr-parallel":
        count = _resolve_parallel_workers(workers)
        if count > 1:
            from repro.parallel import parallel_nucleus34_peel

            return parallel_nucleus34_peel(as_csr(graph), count)
        backend = "csr"
    if backend == "csr":
        return csr_nucleus34_peel(as_csr(graph))
    return peel(build_view(as_object(graph), 3, 4))


def _variant_kernel_backend(backend: str | None, workers: int | None,
                            graph_kind: str) -> str:
    """Resolve the backend for the flat-native variant graphs
    (:class:`~repro.graph.directed.DirectedGraph`,
    :class:`~repro.graph.temporal.TemporalGraph`).

    Their native representation *is* the flat arrays, so ``backend=None``
    and ``"csr"`` run the generic kernel; ``"object"`` forces the
    set/heap reference engine; ``"csr-parallel"`` validates ``workers``
    and degrades to the sequential kernel (the variant peels are
    sequential); ``"disk"`` has no representation for these graphs.
    """
    if backend is None:
        return "kernel"
    _check(backend)
    if backend == "object":
        return "object"
    if backend == "disk":
        graph_cls = ("DirectedGraph" if graph_kind == "directed"
                     else "TemporalGraph")
        supported = tuple(name for name in BACKENDS if name != "disk")
        raise InvalidParameterError(
            f"backend 'disk' is not supported for {graph_kind} graphs "
            f"({graph_cls}); choose from {supported}")
    if backend == "csr-parallel":
        _resolve_parallel_workers(workers)
    return "kernel"


def weighted_core_peel(graph: AnyGraph, weights: Any,
                       backend: str | None = None,
                       workers: int | None = None) -> PeelingResult:
    """Weighted-degree peel — λʷ per vertex plus removal order.

    The object backend runs the reference heap peel over adjacency sets;
    the CSR and disk backends run the generic flat kernel
    (:mod:`repro.core.generic_peel`) with float heap buckets over the
    flat arrays (windowed memmap reads on disk).  ``csr-parallel``
    validates ``workers`` and degrades to the sequential kernel.
    ``weights`` is a mapping keyed by endpoint pair or a sequence indexed
    by lexicographic edge id — the same on every backend.
    """
    from repro.kcore import variants as _variants
    from repro.kcore.params import edge_values

    wlist = edge_values(graph, weights, kind="weight", lo=0.0)
    backend = resolve_backend(graph, backend)
    if backend == "csr-parallel":
        _resolve_parallel_workers(workers)
        backend = "csr"
    if backend == "object":
        return _variants._object_weighted_core(as_object(graph), wlist)
    if backend == "disk":
        disk, converted = _ensure_disk(graph)
        try:
            return _variants._kernel_weighted_core(disk, wlist)
        finally:
            if converted:
                disk.close()
    return _variants._kernel_weighted_core(as_csr(graph), wlist)


def uncertain_core_peel(graph: AnyGraph, probabilities: Any,
                        eta: float = 0.5,
                        backend: str | None = None,
                        workers: int | None = None) -> PeelingResult:
    """(k, η)-core peel — η-core number per vertex plus removal order.

    The object backend recomputes η-degrees through adjacency sets and an
    edge-index lookup per incident edge; the CSR and disk backends run
    the generic kernel with lazy int buckets and a capped downward
    η-degree search over the flat arrays.  ``csr-parallel`` validates
    ``workers`` and degrades to the sequential kernel.
    """
    from repro.kcore import uncertain as _uncertain
    from repro.kcore.params import edge_values, require_fraction

    require_fraction("eta", eta)
    plist = edge_values(graph, probabilities, kind="probability",
                        plural="probabilities", lo=0.0, hi=1.0)
    backend = resolve_backend(graph, backend)
    if backend == "csr-parallel":
        _resolve_parallel_workers(workers)
        backend = "csr"
    if backend == "object":
        return _uncertain._object_uncertain_core(as_object(graph), plist, eta)
    if backend == "disk":
        disk, converted = _ensure_disk(graph)
        try:
            return _uncertain._kernel_uncertain_core(disk, plist, eta)
        finally:
            if converted:
                disk.close()
    return _uncertain._kernel_uncertain_core(as_csr(graph), plist, eta)


def directed_core_peel(graph: Any, backend: str | None = None,
                       workers: int | None = None
                       ) -> tuple[PeelingResult, PeelingResult]:
    """D-core peels — independent ``(in, out)`` peeling results.

    Takes a :class:`~repro.graph.directed.DirectedGraph`; ``backend=None``
    runs the generic kernel over its flat successor/predecessor arrays,
    ``backend="object"`` the set-based reference engine.
    """
    from repro.graph.directed import DirectedGraph
    from repro.kcore import variants as _variants

    if not isinstance(graph, DirectedGraph):
        raise InvalidParameterError(
            "directed_core_peel needs a DirectedGraph "
            "(DirectedGraph(n, arcs))")
    mode = _variant_kernel_backend(backend, workers, "directed")
    if mode == "object":
        return _variants._object_directed_core(graph)
    return _variants._kernel_directed_core(graph)


def _require_temporal(graph: Any) -> None:
    from repro.graph.temporal import TemporalGraph

    if not isinstance(graph, TemporalGraph):
        raise InvalidParameterError(
            "temporal core dispatch needs a TemporalGraph "
            "(TemporalGraph(n, events))")


def temporal_core_peel(graph: Any, h: int = 1,
                       backend: str | None = None,
                       workers: int | None = None) -> PeelingResult:
    """(·, h)-core peel of a :class:`~repro.graph.temporal.TemporalGraph`.

    ``backend=None`` runs the generic kernel over the cached CSR of the
    distinct interacting pairs, skipping edges below the ``h`` threshold
    in the decrement rule — no per-threshold graph rebuild;
    ``backend="object"`` peels the materialised h-thresholded object
    graph through the reference Set-λ engine.
    """
    from repro.kcore import temporal as _temporal
    from repro.kcore.params import require_count

    _require_temporal(graph)
    require_count("interaction threshold h", h)
    mode = _variant_kernel_backend(backend, workers, "temporal")
    if mode == "object":
        return peel(build_view(graph.threshold(h), 1, 2))
    return _temporal._kernel_temporal_core(graph, h)


def temporal_core_sweep(graph: Any, backend: str | None = None,
                        workers: int | None = None
                        ) -> dict[int, PeelingResult]:
    """Peeling results for every ``h`` from 1 to the max interaction count.

    The kernel backend builds the pair CSR **once** and re-peels it per
    threshold (the rebuild-free sweep behind
    ``temporal_core_profile``); the object backend materialises a
    thresholded graph per ``h`` — the reference the parity suite checks
    against.
    """
    from repro.kcore import temporal as _temporal

    _require_temporal(graph)
    mode = _variant_kernel_backend(backend, workers, "temporal")
    top = max(graph.max_count, 1)
    if mode == "object":
        return {h: peel(build_view(graph.threshold(h), 1, 2))
                for h in range(1, top + 1)}
    return {h: _temporal._kernel_temporal_core(graph, h)
            for h in range(1, top + 1)}


def _disk_decompose(graph: AnyGraph, r: int, s: int,
                    algorithm: str) -> Decomposition:
    """Run :func:`repro.external.engine.disk_decomposition`, converting to a
    temporary ``.diskcsr`` directory when needed.  A converted run re-points
    the result at the caller's graph (and rebuilds the view over it) before
    removing the scratch directory, so the result never references deleted
    memmap files."""
    from repro.external.engine import disk_decomposition

    disk, converted = _ensure_disk(graph)
    try:
        result = disk_decomposition(disk, r, s, algorithm=algorithm)
        if not converted:
            return result
        if (r, s) == (3, 4):
            from repro.core.views import CSRTriangleView

            view: Any = CSRTriangleView(
                as_csr(graph),
                _enumeration=(result.view._vertices, result.view._degrees))
        else:
            view = build_view(graph, r, s)
        return Decomposition(graph, r, s, result.algorithm, result.lam,
                             result.hierarchy, view, result.peel_seconds,
                             result.post_seconds, fnd_stats=result.fnd_stats)
    finally:
        if converted:
            disk.close()


def decompose(graph: AnyGraph, r: int = 1, s: int = 2,
              algorithm: str = "fnd",
              backend: str | None = None,
              workers: int | None = None) -> Decomposition:
    """Full nucleus decomposition on the chosen backend.

    ``backend=None`` follows the representation passed in; naming a
    backend explicitly forces that *engine* (useful for A/B runs).  On the
    CSR backend, FND for the paper's evaluated (r, s) pairs and LCPS run
    *directly* on the flat arrays — peel, hierarchy construction and
    traversal never build an object graph; the remaining algorithms peel
    through the CSR cell views.  The parallel backend runs FND end-to-end
    over ``workers`` processes — sharded incidence set-up, bulk peel, and
    level-wise parallel hierarchy construction, with the condensed tree
    still node-for-node identical to the sequential engine; ``workers``
    is ignored by the other backends.  The disk backend streams the flat
    arrays (and, for (2,3)/(3,4), a spooled incidence) from files through
    windowed block reads — λ and the condensed hierarchy are identical to
    the CSR engine while peak memory stays bounded by the window cache.
    The returned :class:`Decomposition` carries the graph
    exactly as it was passed in, with one exception: running the object
    engine on a :class:`CSRGraph` input converts, since that engine's
    views and traversals need the object representation.
    """
    backend = resolve_backend(graph, backend)
    if backend == "object":
        return nucleus_decomposition(as_object(graph), r, s,
                                     algorithm=algorithm)
    if backend == "disk":
        return _disk_decompose(graph, r, s, algorithm)
    parallel_workers = 0
    if backend == "csr-parallel":
        count = _resolve_parallel_workers(workers)
        if count > 1 and algorithm == "fnd" and (r, s) in CSR_FND_RS:
            parallel_workers = count
    csr = as_csr(graph)
    if algorithm == "fnd" and (r, s) in CSR_FND_RS:
        stats = FndInstrumentation()
        start = time.perf_counter()
        if parallel_workers:
            from repro.parallel import parallel_fnd_decomposition

            peeling, hierarchy, view = parallel_fnd_decomposition(
                csr, r, s, parallel_workers, instrumentation=stats)
        else:
            peeling, hierarchy, view = csr_fnd_decomposition(
                csr, r, s, instrumentation=stats)
        total = time.perf_counter() - start
        post_s = min(stats.build_seconds, total)
        return Decomposition(graph, r, s, algorithm, peeling.lam, hierarchy,
                             view, total - post_s, post_s, fnd_stats=stats)
    if algorithm == "lcps":
        if (r, s) != (1, 2):
            raise InvalidParameterError("LCPS applies to (1,2) (k-core) only")
        start = time.perf_counter()
        peeling = csr_core_peel(csr)
        peel_s = time.perf_counter() - start
        start = time.perf_counter()
        hierarchy = lcps_hierarchy(csr, peeling)
        post_s = time.perf_counter() - start
        return Decomposition(graph, 1, 2, algorithm, peeling.lam, hierarchy,
                             build_view(csr, 1, 2), peel_s, post_s)
    # generic algorithms: peel through the CSR cell views; the carried
    # graph stays whatever representation the caller handed in (naive/dft/
    # hypo touch the graph only through the view)
    return nucleus_decomposition(graph, r, s, algorithm=algorithm,
                                 view=build_view(csr, r, s))


def build_query_index(graph: AnyGraph, r: int = 1, s: int = 2,
                      algorithm: str = "fnd",
                      backend: str | None = None,
                      workers: int | None = None) -> "FlatHierarchyIndex":
    """Decompose on the chosen backend and return the flat serving index.

    The build-once half of build-once/serve-many: runs :func:`decompose`
    (any backend, identical hierarchy) and lowers the condensed tree to a
    :class:`~repro.flatindex.FlatHierarchyIndex` — persist it with
    ``index.save(path)`` and a fresh process serves batch queries via
    ``FlatHierarchyIndex.load(path)`` without re-peeling.  Requires
    numpy (lazy import keeps the peeling engines numpy-optional).
    """
    from repro.flatindex import FlatHierarchyIndex

    return FlatHierarchyIndex(decompose(graph, r, s, algorithm=algorithm,
                                        backend=backend, workers=workers))


def load_query_index(path: str | Path, *, mmap_mode: str | None = "r",
                     graph: Any = None,
                     view: Any = None) -> "FlatHierarchyIndex":
    """Load a persisted ``.npz`` flat index — the serve-many half.

    ``mmap_mode="r"`` (the default) memory-maps the arrays read-only, so
    the index costs one page-cache copy no matter how many processes
    serve it (what ``repro-nucleus serve`` workers and the CLI ``query``
    subcommand use); ``mmap_mode=None`` copies them into the process.
    ``graph``/``view`` attach only when profile statistics were skipped
    at save time (``stats=False``).  See also
    :class:`repro.serve.IndexRegistry` for serving several indexes from
    one process.
    """
    from repro.flatindex import FlatHierarchyIndex

    return FlatHierarchyIndex.load(path, graph=graph, view=view,
                                   mmap_mode=mmap_mode)
