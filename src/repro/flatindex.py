"""Flat-array serving index over the condensed nucleus hierarchy.

The paper's promise is *build once, query forever*: after the hierarchy is
constructed, community-search queries are tree walks.  The object-based
:class:`~repro.queries.HierarchyIndex` answers those walks through Python
dicts-of-sets, which is fine for a handful of look-ups but not for serving
traffic.  :class:`FlatHierarchyIndex` lowers the condensed tree to numpy
arrays instead:

* ``node_k`` / ``node_parent`` — the condensed tree itself (node ids are
  exactly the :class:`~repro.core.hierarchy.NucleusTree` ids);
* ``tin`` / ``tout`` — Euler-tour (preorder interval) labels, so
  "is ``x`` inside nucleus ``a``" is two comparisons and a nucleus's cell
  set is one slice of the tour-ordered cell array;
* ``cell_node`` plus a tour-sorted cell permutation — ``subtree_cells`` by
  ``searchsorted`` instead of a tree walk;
* a CSR ``vertex → condensed nodes`` map — the TCP-style vertex queries
  batch over plain array gathers;
* per-``k`` *top* pointers (shallowest ancestor still at level ``>= k``),
  computed for all nodes at once by pointer doubling and cached.

Every query of :class:`~repro.queries.HierarchyIndex` has a scalar
equivalent here with identical answers (cell lists are returned sorted
ascending), plus a vectorised **batch** variant over arrays of vertices or
cells.  :meth:`FlatHierarchyIndex.save` persists the whole index as an
uncompressed ``.npz`` (one flat binary blob per array, loadable lazily), so
``decompose → save`` runs once and a fresh process serves queries with
:meth:`FlatHierarchyIndex.load` — no re-peeling, no graph needed.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path
from typing import Any, Iterable, Sequence
from zipfile import BadZipFile

from repro.analysis.density import edge_density
from repro.core.decomposition import Decomposition
from repro.core.hierarchy import Hierarchy
from repro.errors import GraphFormatError, InvalidParameterError
from repro.queries import CommunityLevel

try:  # the index is array-native; there is no object fallback
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]

__all__ = ["FlatHierarchyIndex", "FLAT_INDEX_FORMAT", "mmap_npz"]

#: on-disk schema version of the ``.npz`` payload
FLAT_INDEX_FORMAT = 1

#: arrays every persisted index must carry
_REQUIRED_KEYS = (
    "format", "r", "s", "n", "root", "algorithm",
    "node_k", "node_parent", "tin", "tout",
    "cell_node", "lam", "cells_in_tour", "cell_tin_sorted",
    "vert_indptr", "vert_nodes",
)

#: optional per-node profile statistics (written by ``save(stats=True)``)
_STAT_KEYS = ("node_nv", "node_ne", "node_density")


def _require_numpy() -> None:
    if np is None:
        raise InvalidParameterError(
            "FlatHierarchyIndex requires numpy (the flat query index has no "
            "object fallback; use repro.queries.HierarchyIndex instead)")


def _read_npy_header(handle: Any, version: tuple[int, int]) -> Any:
    """(shape, fortran_order, dtype) of the ``.npy`` stream at ``handle``."""
    reader = getattr(np.lib.format,
                     f"read_array_header_{version[0]}_{version[1]}", None)
    if reader is not None:
        return reader(handle)
    return np.lib.format._read_array_header(  # type: ignore[attr-defined]
        handle, version)


def mmap_npz(path: str | Path) -> dict | None:
    """Memory-map every array member of an **uncompressed** ``.npz``.

    ``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for
    zipped files, so this maps each member by hand: ``np.savez`` stores
    members with ``ZIP_STORED`` (no compression), which means every
    embedded ``.npy`` sits verbatim in the archive and can be handed to
    :class:`numpy.memmap` at its data offset.  The returned arrays are
    **read-only views of the page cache** — N processes mapping the same
    index share one physical copy, the serving analogue of
    :mod:`repro.parallel.shm`.

    Returns ``None`` when the archive cannot be mapped (a compressed or
    object-dtype member) — callers fall back to an eager load.  Raises
    :class:`GraphFormatError` on a structurally broken archive, matching
    :meth:`FlatHierarchyIndex.load`.
    """
    arrays: dict = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                return None  # compressed member: not mappable
            key = info.filename
            if key.endswith(".npy"):
                key = key[:-4]
            # the local header's name/extra lengths can differ from the
            # central directory's, so read it from the file itself
            raw.seek(info.header_offset)
            header = raw.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                raise GraphFormatError(
                    f"{path}: malformed zip local header for {info.filename}")
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            try:
                version = np.lib.format.read_magic(raw)
                shape, fortran, dtype = _read_npy_header(raw, version)
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}: member {info.filename} is not a valid .npy: "
                    f"{exc}") from exc
            if dtype.hasobject:
                return None  # pickled payload: not mappable
            count = 1
            for dim in shape:
                count *= dim
            if count == 0:
                arrays[key] = np.empty(shape, dtype=dtype)
            elif shape == ():
                # np.memmap treats an empty shape as "map the whole
                # file"; scalars are a handful of bytes — read them
                arrays[key] = np.frombuffer(
                    raw.read(dtype.itemsize), dtype=dtype).reshape(())
            else:
                arrays[key] = np.memmap(
                    path, dtype=dtype, mode="r", offset=raw.tell(),
                    shape=shape, order="F" if fortran else "C")
    return arrays


def _multi_range(starts: Any, counts: Any) -> Any:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` for all i."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    before = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(starts - before, counts) + np.arange(total, dtype=np.int64)


class FlatHierarchyIndex:
    """Array-backed query index over a decomposition's condensed tree.

    Build from a :class:`~repro.core.decomposition.Decomposition` (or from a
    ``hierarchy`` plus the ``graph`` it describes), or :meth:`load` a
    persisted one.  Node ids match ``hierarchy.condense()`` node-for-node,
    so answers are directly comparable with
    :class:`~repro.queries.HierarchyIndex`.
    """

    def __init__(self, decomposition: Decomposition | None = None, *,
                 hierarchy: Hierarchy | None = None,
                 graph: Any = None, view: Any = None) -> None:
        _require_numpy()
        if decomposition is not None:
            hierarchy = decomposition.hierarchy
            graph = decomposition.graph
            view = decomposition.view
            algorithm = decomposition.algorithm
        else:
            algorithm = hierarchy.algorithm if hierarchy is not None else ""
        if hierarchy is None:
            raise InvalidParameterError(
                "no hierarchy to index (hypo builds none; pass a "
                "decomposition or hierarchy that has one)")
        if graph is None:
            raise InvalidParameterError(
                "FlatHierarchyIndex needs the graph to map vertices to "
                "cells (load a persisted index to serve without one)")
        if view is None:
            from repro.core.views import build_view

            view = build_view(graph, hierarchy.r, hierarchy.s)
        self.r = hierarchy.r
        self.s = hierarchy.s
        self.algorithm = algorithm
        self.graph = graph
        self.view = view
        self.n = graph.n
        tree = hierarchy.condense()
        self.root = tree.root
        num_nodes = len(tree)
        self.node_k = np.fromiter((node.k for node in tree.nodes),
                                  dtype=np.int32, count=num_nodes)
        self.node_parent = np.fromiter(
            (-1 if node.parent is None else node.parent
             for node in tree.nodes), dtype=np.int32, count=num_nodes)
        self._label_tour(tree)
        self.cell_node = np.asarray(tree.cell_nodes(), dtype=np.int32)
        self.lam = np.asarray(hierarchy.lam, dtype=np.int32)
        self._sort_cells_by_tour()
        self._build_vertex_map()
        self._tops_cache: dict[int, "np.ndarray"] = {}
        self._stats: dict[int, tuple[int, int, float]] = {}
        self._stat_arrays: tuple | None = None
        self._edge_arrays: tuple | None = None
        self.mmapped = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _label_tour(self, tree: Any) -> None:
        """Preorder interval labels: subtree(a) == [tin[a], tout[a])."""
        num_nodes = len(tree)
        tin = np.zeros(num_nodes, dtype=np.int32)
        tout = np.zeros(num_nodes, dtype=np.int32)
        timer = 0
        stack: list[tuple[int, bool]] = [(tree.root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                tout[node] = timer
                continue
            tin[node] = timer
            timer += 1
            stack.append((node, True))
            for child in tree[node].children:
                stack.append((child, False))
        self.tin = tin
        self.tout = tout

    def _sort_cells_by_tour(self) -> None:
        cell_tin = self.tin[self.cell_node]
        order = np.argsort(cell_tin, kind="stable")
        self.cells_in_tour = order.astype(np.int32)
        self.cell_tin_sorted = cell_tin[order]

    def _build_vertex_map(self) -> None:
        """CSR ``vertex → sorted unique condensed nodes`` map."""
        num_cells = len(self.cell_node)
        r = self.r
        if num_cells == 0:
            verts = np.empty(0, dtype=np.int64)
        elif r == 1:
            verts = np.arange(num_cells, dtype=np.int64)
        else:
            triples = getattr(self.view, "_vertices", None)
            if triples is not None:  # (3,4) views keep the triple list
                verts = np.asarray(triples, dtype=np.int64).reshape(-1)
            elif r == 2 and hasattr(self.graph, "esrc"):
                verts = np.column_stack([
                    np.frombuffer(self.graph.esrc, dtype=np.int32),
                    np.frombuffer(self.graph.etgt, dtype=np.int32),
                ]).astype(np.int64).reshape(-1)
            else:
                verts = np.empty(num_cells * r, dtype=np.int64)
                cell_vertices = self.view.cell_vertices
                for cell in range(num_cells):
                    verts[cell * r:(cell + 1) * r] = cell_vertices(cell)
        # kept build-side (not persisted): powers the vectorised node stats
        self._cell_verts = verts.reshape(num_cells, r) if num_cells else None
        nodes = np.repeat(self.cell_node.astype(np.int64), r)
        num_nodes = len(self.node_k)
        pairs = np.unique(verts * num_nodes + nodes)
        owners = pairs // num_nodes
        self.vert_nodes = (pairs % num_nodes).astype(np.int32)
        counts = np.bincount(owners, minlength=self.n).astype(np.int64)
        self.vert_indptr = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int64)

    # ------------------------------------------------------------------
    # core primitives
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cell_node)

    @property
    def num_nodes(self) -> int:
        return len(self.node_k)

    def _tops_at(self, k: int) -> Any:
        """Per node: shallowest ancestor-or-self with level >= k (-1 when
        the node itself is below k).  Pointer doubling, cached per k."""
        cached = self._tops_cache.get(k)
        if cached is not None:
            return cached
        node_ids = np.arange(self.num_nodes, dtype=np.int32)
        parent = self.node_parent
        safe_parent = np.where(parent >= 0, parent, 0)
        climb = (parent >= 0) & (self.node_k[safe_parent] >= k)
        step = np.where(climb, parent, node_ids)
        while True:
            jumped = step[step]
            if np.array_equal(jumped, step):
                break
            step = jumped
        tops = np.where(self.node_k >= k, step, np.int32(-1))
        self._tops_cache[k] = tops
        return tops

    def _subtree_slice(self, node: int) -> tuple[int, int]:
        lo = int(np.searchsorted(self.cell_tin_sorted, self.tin[node], "left"))
        hi = int(np.searchsorted(self.cell_tin_sorted, self.tout[node], "left"))
        return lo, hi

    def community_cells(self, node: int) -> Any:
        """All cells of condensed node ``node`` (sorted ascending)."""
        lo, hi = self._subtree_slice(node)
        return np.sort(self.cells_in_tour[lo:hi])

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """O(1) interval test: is ``node`` inside ``ancestor``'s subtree?"""
        return bool(self.tin[ancestor] <= self.tin[node]) and \
            bool(self.tin[node] < self.tout[ancestor])

    def nodes_of_vertex(self, vertex: int) -> Any:
        """Sorted condensed node ids whose own cells touch ``vertex``."""
        if not 0 <= vertex < self.n:
            return np.empty(0, dtype=np.int32)
        lo, hi = self.vert_indptr[vertex], self.vert_indptr[vertex + 1]
        return self.vert_nodes[lo:hi]

    # ------------------------------------------------------------------
    # scalar queries (answers identical to HierarchyIndex, cells sorted)
    # ------------------------------------------------------------------
    def node_of_cell(self, cell: int) -> int:
        """Condensed-tree node holding the cell directly."""
        return int(self.cell_node[cell])

    def max_nucleus(self, cell: int) -> list[int]:
        """Cells of the maximum nucleus of ``cell`` (Definition 3)."""
        return self.community_cells(int(self.cell_node[cell])).tolist()

    def nucleus_at(self, cell: int, k: int) -> list[int]:
        """Cells of the k-nucleus containing ``cell`` (k <= λ(cell))."""
        if k > self.lam[cell]:
            raise InvalidParameterError(
                f"cell {cell} has lambda {self.lam[cell]} < k={k}")
        top = int(self._tops_at(k)[self.cell_node[cell]])
        return self.community_cells(top).tolist()

    def communities_of_vertex(self, vertex: int, k: int) -> list[list[int]]:
        """All maximal k-level nuclei touching ``vertex`` (cell lists)."""
        return [cells.tolist()
                for cells in self.communities_of_vertex_batch([vertex], k)[0]]

    def profile(self, vertex: int) -> list[CommunityLevel]:
        """Root-to-densest chain of communities containing ``vertex``."""
        return self.profile_batch([vertex])[0]

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------
    def _as_vertex_array(
            self, vertices: Sequence[int] | Iterable[int]) -> Any:
        out = np.asarray(vertices, dtype=np.int64)
        if out.ndim != 1:
            raise InvalidParameterError(
                f"expected a flat array of vertices, got shape {out.shape}")
        return out

    def max_nucleus_batch(self, cells: Any) -> list["np.ndarray"]:
        """:meth:`max_nucleus` for an array of cells."""
        cache: dict[int, np.ndarray] = {}
        out: list[np.ndarray] = []
        for node in self.cell_node[np.asarray(cells, dtype=np.int64)].tolist():
            hit = cache.get(node)
            if hit is None:
                hit = cache.setdefault(node, self.community_cells(node))
            out.append(hit)
        return out

    def nucleus_at_batch(self, cells: Any, k: int) -> list["np.ndarray"]:
        """:meth:`nucleus_at` for an array of cells (k <= λ of each)."""
        cells = np.asarray(cells, dtype=np.int64)
        bad = np.nonzero(self.lam[cells] < k)[0]
        if len(bad):
            cell = int(cells[bad[0]])
            raise InvalidParameterError(
                f"cell {cell} has lambda {self.lam[cell]} < k={k}")
        tops = self._tops_at(k)[self.cell_node[cells]]
        cache: dict[int, np.ndarray] = {}
        out: list[np.ndarray] = []
        for top in tops.tolist():
            hit = cache.get(top)
            if hit is None:
                hit = cache.setdefault(top, self.community_cells(top))
            out.append(hit)
        return out

    def communities_of_vertex_batch(self, vertices: Any, k: int) \
            -> list[list["np.ndarray"]]:
        """:meth:`communities_of_vertex` for an array of vertices.

        Returns, per input vertex, the maximal k-level nuclei touching it
        (each a sorted cell array, ordered by condensed node id — the same
        order :class:`~repro.queries.HierarchyIndex` yields).  Identical
        nuclei are materialised once per call.
        """
        vertices = self._as_vertex_array(vertices)
        inside = (vertices >= 0) & (vertices < self.n)
        safe = np.where(inside, vertices, 0)
        starts = self.vert_indptr[safe]
        counts = np.where(inside, self.vert_indptr[safe + 1] - starts, 0)
        gather = _multi_range(starts, counts)
        nodes = self.vert_nodes[gather].astype(np.int64)
        owner = np.repeat(np.arange(len(vertices), dtype=np.int64), counts)
        tops = self._tops_at(k)[nodes]
        keep = tops >= 0
        owner = owner[keep]
        tops = tops[keep].astype(np.int64)
        pairs = np.unique(owner * self.num_nodes + tops)
        out: list[list[np.ndarray]] = [[] for _ in range(len(vertices))]
        cache: dict[int, np.ndarray] = {}
        for pair in pairs.tolist():
            which, top = divmod(pair, self.num_nodes)
            cells = cache.get(top)
            if cells is None:
                cells = cache.setdefault(top, self.community_cells(top))
            out[which].append(cells)
        return out

    def profile_batch(self, vertices: Any) -> list[list[CommunityLevel]]:
        """:meth:`profile` for an array of vertices.

        Node statistics (size, edges, density) are computed once per
        condensed node and cached — persisted indexes saved with
        ``stats=True`` serve profiles without any graph at all.
        """
        vertices = self._as_vertex_array(vertices)
        node_k = self.node_k
        parent = self.node_parent
        out: list[list[CommunityLevel]] = []
        for vertex in vertices.tolist():
            nodes = self.nodes_of_vertex(vertex)
            if len(nodes) == 0:
                out.append([])
                continue
            ks = node_k[nodes]
            deepest = int(nodes[int(np.argmax(ks))])  # ties: smallest id
            chain: list[int] = []
            current = deepest
            while current >= 0:
                chain.append(current)
                current = int(parent[current])
            chain.reverse()
            levels: list[CommunityLevel] = []
            for node in chain:
                if node == self.root:
                    continue
                nv, ne, density = self._node_stats(node)
                levels.append(CommunityLevel(
                    k=int(node_k[node]), node_id=node, num_vertices=nv,
                    num_edges=ne, density=density))
            out.append(levels)
        return out

    # ------------------------------------------------------------------
    # profile statistics
    # ------------------------------------------------------------------
    def _edge_endpoint_arrays(self) -> tuple:
        """Endpoint arrays of every graph edge (for induced-edge counts)."""
        arrays = self._edge_arrays
        if arrays is None:
            graph = self.graph
            if hasattr(graph, "esrc"):  # CSR: already flat
                src = np.frombuffer(graph.esrc, dtype=np.int32)
                tgt = np.frombuffer(graph.etgt, dtype=np.int32)
            else:
                index = graph.edge_index
                src = np.asarray(index.source, dtype=np.int64)
                tgt = np.asarray(index.target, dtype=np.int64)
            arrays = (src, tgt)
            self._edge_arrays = arrays
        return arrays

    def _node_stats(self, node: int) -> tuple[int, int, float]:
        """(num_vertices, num_edges, density) of a node's induced subgraph.

        Counts by array masking when built from a decomposition — the
        exact counts (and therefore the exact density float) that
        ``graph.subgraph`` + :func:`edge_density` produce, without
        materialising a subgraph per node.
        """
        if self._stat_arrays is not None:
            nv, ne, density = self._stat_arrays
            return int(nv[node]), int(ne[node]), float(density[node])
        cached = self._stats.get(node)
        if cached is None:
            if self.graph is None:
                raise InvalidParameterError(
                    "this persisted index was saved without node statistics "
                    "(stats=False); re-save with stats=True or rebuild from "
                    "a decomposition to answer profile queries")
            if getattr(self, "_cell_verts", None) is not None:
                vertices = np.unique(
                    self._cell_verts[self.community_cells(node)])
                nv = len(vertices)
                mask = np.zeros(self.n, dtype=bool)
                mask[vertices] = True
                src, tgt = self._edge_endpoint_arrays()
                ne = int(np.count_nonzero(mask[src] & mask[tgt]))
                density = 0.0 if nv < 2 else 2.0 * ne / (nv * (nv - 1))
                cached = (nv, ne, density)
            else:
                if self.view is None:
                    from repro.core.views import build_view

                    self.view = build_view(self.graph, self.r, self.s)
                sub = self.graph.subgraph(self.view.vertices_of_cells(
                    self.community_cells(node).tolist()))
                cached = (sub.n, sub.m, edge_density(sub))
            self._stats[node] = cached
        return cached

    def precompute_stats(self) -> None:
        """Materialise size/edge/density arrays for every node (the arrays
        :meth:`save` persists with ``stats=True``)."""
        if self._stat_arrays is not None:
            return
        nv = np.zeros(self.num_nodes, dtype=np.int64)
        ne = np.zeros(self.num_nodes, dtype=np.int64)
        density = np.zeros(self.num_nodes, dtype=np.float64)
        for node in range(self.num_nodes):
            nv[node], ne[node], density[node] = self._node_stats(node)
        self._stat_arrays = (nv, ne, density)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path, stats: bool = True) -> None:
        """Persist the index as an uncompressed ``.npz``.

        ``stats=True`` (default) additionally materialises the per-node
        profile statistics so a fresh process can answer *every* query
        without the graph; ``stats=False`` skips that work and the loaded
        index answers everything except :meth:`profile`.
        """
        payload = {
            "format": np.int64(FLAT_INDEX_FORMAT),
            "r": np.int64(self.r),
            "s": np.int64(self.s),
            "n": np.int64(self.n),
            "root": np.int64(self.root),
            "algorithm": np.str_(self.algorithm),
            "node_k": self.node_k,
            "node_parent": self.node_parent,
            "tin": self.tin,
            "tout": self.tout,
            "cell_node": self.cell_node,
            "lam": self.lam,
            "cells_in_tour": self.cells_in_tour,
            "cell_tin_sorted": self.cell_tin_sorted,
            "vert_indptr": self.vert_indptr,
            "vert_nodes": self.vert_nodes,
        }
        if stats:
            self.precompute_stats()
            assert self._stat_arrays is not None  # precompute_stats filled it
            nv, ne, density = self._stat_arrays
            payload.update(node_nv=nv, node_ne=ne, node_density=density)
        with open(path, "wb") as handle:  # savez would append ".npz"
            np.savez(handle, **payload)

    @classmethod
    def load(cls, path: str | Path, graph: Any = None, view: Any = None, *,
             mmap_mode: str | None = None) -> "FlatHierarchyIndex":
        """Rebuild a persisted index; pure array reads, no re-peeling.

        ``graph``/``view`` are optional — attach them only to compute
        profile statistics missing from an index saved with
        ``stats=False``.

        ``mmap_mode="r"`` memory-maps the arrays read-only instead of
        copying them into the process (:func:`mmap_npz` — ``np.load``
        ignores ``mmap_mode`` for ``.npz`` archives).  Pages are shared
        through the OS page cache, so any number of serving processes
        hold **one** physical copy of the index; an archive that cannot
        be mapped falls back to an eager load.  ``mmap_mode=None`` (the
        default) loads eagerly.
        """
        _require_numpy()
        if mmap_mode not in (None, "r"):
            raise InvalidParameterError(
                f"mmap_mode must be None or 'r', got {mmap_mode!r} "
                f"(the index arrays are immutable once persisted)")
        try:
            arrays = mmap_npz(path) if mmap_mode == "r" else None
            mapped = arrays is not None
            if not mapped:
                with np.load(path, allow_pickle=False) as payload:
                    arrays = {key: payload[key] for key in payload.files}
        except (OSError, ValueError, BadZipFile) as exc:
            raise GraphFormatError(
                f"{path}: malformed flat index file: {exc}") from exc
        missing = [key for key in _REQUIRED_KEYS if key not in arrays]
        if missing:
            raise GraphFormatError(
                f"{path}: not a flat hierarchy index "
                f"(missing {', '.join(missing)})")
        version = int(arrays["format"])
        if version != FLAT_INDEX_FORMAT:
            raise GraphFormatError(
                f"{path}: unsupported index format {version} "
                f"(this build reads {FLAT_INDEX_FORMAT})")
        index = cls.__new__(cls)
        index.r = int(arrays["r"])
        index.s = int(arrays["s"])
        index.n = int(arrays["n"])
        index.root = int(arrays["root"])
        index.algorithm = str(arrays["algorithm"])
        for key in ("node_k", "node_parent", "tin", "tout",
                    "cell_node", "lam", "cells_in_tour",
                    "cell_tin_sorted", "vert_indptr", "vert_nodes"):
            setattr(index, key, arrays[key])
        index._stat_arrays = None
        if all(key in arrays for key in _STAT_KEYS):
            index._stat_arrays = tuple(arrays[key] for key in _STAT_KEYS)
        index.mmapped = mapped
        index.graph = graph
        index.view = view  # else built lazily if profile stats need it
        index._tops_cache = {}
        index._stats = {}
        index._cell_verts = None
        index._edge_arrays = None
        return index

    def __repr__(self) -> str:
        return (f"<FlatHierarchyIndex ({self.r},{self.s}) "
                f"algorithm={self.algorithm!r} cells={self.num_cells} "
                f"nodes={self.num_nodes} vertices={self.n}>")
