"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without also catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph file or edge stream could not be parsed."""


class InvalidGraphError(ReproError):
    """An operation received a malformed graph (e.g. self loop, bad vertex id)."""


class InvalidParameterError(ReproError):
    """An algorithm was called with unsupported parameters (e.g. r >= s)."""


class UnknownDatasetError(ReproError):
    """A dataset name was not found in the registry."""


class UnknownAlgorithmError(ReproError):
    """An algorithm name was not found in the algorithm registry."""


class TimeBudgetExceeded(ReproError):
    """A benchmark run exceeded its configured time budget.

    Mirrors the paper's "did not finish in 2 days" starred entries: harness
    code converts this into a lower-bound row instead of a hard failure.
    """
