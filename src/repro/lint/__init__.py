"""repro-lint: project-specific static analysis for the repro codebase.

The rules encode invariants the codebase already relies on — flat-array
mmap discipline, shared-memory segment lifecycle, non-blocking async
serving, int64 key promotion, backend dispatch parity, and worker-error
visibility — so they are machine-checked on every PR instead of being
rediscovered one incident at a time (see docs/STATIC_ANALYSIS.md).

Pure stdlib (``ast`` + ``tokenize``); no runtime dependencies.
"""

from repro.lint.engine import lint_paths, lint_source
from repro.lint.registry import Rule, Violation, all_rules, get_rule, register
from repro.lint import rules as _rules  # noqa: F401  (registers built-in rules)

__all__ = [
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
]
