"""repro-lint: project-specific static analysis for the repro codebase.

The rules encode invariants the codebase already relies on — flat-array
mmap discipline, shared-memory segment lifecycle, non-blocking async
serving, int64 key promotion, backend dispatch parity, and worker-error
visibility — so they are machine-checked on every PR instead of being
rediscovered one incident at a time (see docs/STATIC_ANALYSIS.md).

Since PR 10 the linter also sees the *whole project* at once: a
:class:`~repro.lint.project.Project` parses every module a single time,
builds an import graph, a symbol table, and an approximate call graph,
and exposes per-function summaries that interprocedural rules (RL007
dtype flow, RL008 shard races, RL009 backend-contract drift) query.

Pure stdlib (``ast`` + ``tokenize``); no runtime dependencies.
"""

from repro.lint.engine import lint_modules, lint_paths, lint_source, parse_module
from repro.lint.project import Project
from repro.lint.registry import (
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register,
)
from repro.lint.summaries import FunctionSummary
from repro.lint import rules as _rules  # noqa: F401  (registers built-in rules)

__all__ = [
    "FunctionSummary",
    "Project",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "parse_module",
    "register",
]
