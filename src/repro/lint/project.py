"""Whole-project analysis: import graph, symbol table, call graph.

A :class:`Project` is built once per lint run from the already-parsed
:class:`~repro.lint.registry.Module` objects.  It derives, purely from
the ASTs:

* a **module table** keyed by dotted module name (``repro/parallel/pool.py``
  becomes ``repro.parallel.pool``; ``__init__.py`` names its package);
* an **import graph** — for every module, the set of dotted module names
  it imports anywhere (top level or function-scoped);
* a **symbol table** — every top-level function, class, and assignment,
  plus the re-export chains created by ``from x import y``;
* an approximate **call graph** — each function's calls resolved through
  its import aliases to project-defined functions, recorded on the
  function's :class:`~repro.lint.summaries.FunctionSummary`.

Construction is total: any parseable module produces a Project; unknown
constructs simply contribute nothing.  Project rules
(:class:`~repro.lint.registry.ProjectRule`) receive the instance and
query it — they never re-parse.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.registry import Module
from repro.lint.summaries import FunctionSummary, summarize_function

__all__ = ["Project", "module_name"]


def module_name(relpath: str) -> str:
    """Dotted module name for a package-relative posix path."""
    name = relpath[:-3] if relpath.endswith(".py") else relpath
    name = name.strip("/").replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name or relpath


#: alias table entry: ("module", dotted_module) for ``import x``-style
#: bindings, ("symbol", source_module, original_name) for ``from x import y``
_Alias = tuple


class Project:
    """Parsed-once view of every module handed to a lint run."""

    def __init__(self, modules: Iterable[Module]):
        #: dotted module name -> Module
        self.modules: dict[str, Module] = {}
        self.by_relpath: dict[str, Module] = {}
        #: dotted module name -> dotted module names it imports
        self.imports: dict[str, set[str]] = {}
        #: "module.symbol" -> defining top-level node
        self.symbols: dict[str, ast.AST] = {}
        #: qualname -> summary (module.func and module.Class.method)
        self.functions: dict[str, FunctionSummary] = {}
        self._defined: dict[str, dict[str, ast.AST]] = {}
        self._aliases: dict[str, dict[str, _Alias]] = {}

        for module in modules:
            name = module_name(module.relpath)
            # first writer wins on pathological duplicate relpaths
            self.modules.setdefault(name, module)
            self.by_relpath.setdefault(module.relpath, module)

        for name, module in self.modules.items():
            self._index_module(name, module)
        for name, module in self.modules.items():
            self._collect_imports(name, module)
        for summary in list(self.functions.values()):
            self._resolve_calls(summary)
        self._close_returns_int32()

    # ------------------------------------------------------------ indexing

    def _index_module(self, name: str, module: Module) -> None:
        defined: dict[str, ast.AST] = {}
        aliases: dict[str, _Alias] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined[stmt.name] = stmt
                qual = f"{name}.{stmt.name}"
                self.functions[qual] = summarize_function(stmt, qual, name)
            elif isinstance(stmt, ast.ClassDef):
                defined[stmt.name] = stmt
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qual = f"{name}.{stmt.name}.{item.name}"
                        self.functions[qual] = summarize_function(
                            item, qual, name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined[target.id] = stmt
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    defined[stmt.target.id] = stmt
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    aliases[local] = ("module", target)
            elif isinstance(stmt, ast.ImportFrom):
                source = self._absolute_source(name, stmt)
                if source is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = ("symbol", source, alias.name)
        self._defined[name] = defined
        self._aliases[name] = aliases
        for symbol, node in defined.items():
            self.symbols[f"{name}.{symbol}"] = node

    @staticmethod
    def _absolute_source(modname: str, stmt: ast.ImportFrom) -> str | None:
        """Dotted source module of a ``from ... import`` statement."""
        if stmt.level == 0:
            return stmt.module
        parts = modname.split(".")
        # ``level`` strips that many trailing components relative to the
        # *package*; a module is one level deeper than its package
        base = parts[:max(len(parts) - stmt.level, 0)]
        if stmt.module:
            base.append(stmt.module)
        return ".".join(base) or None

    def _collect_imports(self, name: str, module: Module) -> None:
        edges: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    edges.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                source = self._absolute_source(name, node)
                if source is None:
                    continue
                edges.add(source)
                for alias in node.names:
                    # ``from pkg import submodule`` is a module edge too
                    child = f"{source}.{alias.name}"
                    if child in self.modules:
                        edges.add(child)
        self.imports[name] = edges

    # ----------------------------------------------------------- resolution

    def resolve_module(self, dotted: str) -> Module | None:
        return self.modules.get(dotted)

    def has_symbol(self, dotted_module: str, symbol: str) -> bool:
        """True when ``from dotted_module import symbol`` would succeed,
        as far as the project can tell (defined name, resolvable
        re-export, or sibling submodule)."""
        if self.resolve_symbol(dotted_module, symbol) is not None:
            return True
        return f"{dotted_module}.{symbol}" in self.modules

    def resolve_symbol(self, dotted_module: str, symbol: str,
                       _seen: frozenset[tuple[str, str]] = frozenset(),
                       ) -> tuple[str, ast.AST] | None:
        """Follow ``from x import y`` chains to ``(defining_module, node)``."""
        key = (dotted_module, symbol)
        if key in _seen or dotted_module not in self.modules:
            return None
        node = self._defined.get(dotted_module, {}).get(symbol)
        if node is not None:
            return dotted_module, node
        alias = self._aliases.get(dotted_module, {}).get(symbol)
        if alias is not None and alias[0] == "symbol":
            return self.resolve_symbol(alias[1], alias[2], _seen | {key})
        return None

    def module_symbols(self, dotted_module: str) -> set[str]:
        """Importable names of a project module: defined + re-exported
        symbols plus submodules present in the project."""
        names = set(self._defined.get(dotted_module, {}))
        names.update(self._aliases.get(dotted_module, {}))
        prefix = dotted_module + "."
        for other in self.modules:
            if other.startswith(prefix):
                names.add(other[len(prefix):].split(".")[0])
        return names

    def _function_aliases(self, summary: FunctionSummary) -> dict[str, _Alias]:
        """Module-level aliases overlaid with the function's own imports."""
        local = dict(self._aliases.get(summary.module, {}))
        for node in ast.walk(summary.node):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local_name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    local[local_name] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                source = self._absolute_source(summary.module, node)
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local[alias.asname or alias.name] = \
                        ("symbol", source, alias.name)
        return local

    def _lookup_callee(self, modname: str, dotted: str,
                       aliases: dict[str, _Alias]) -> str | None:
        """Resolve a dotted callee text to a project function qualname."""
        parts = dotted.split(".")
        head = parts[0]
        alias = aliases.get(head)
        if alias is not None:
            if alias[0] == "module":
                target_mod = ".".join([alias[1], *parts[1:-1]])
                if len(parts) >= 2:
                    qual = f"{target_mod}.{parts[-1]}"
                    if qual in self.functions:
                        return qual
                return None
            resolved = self.resolve_symbol(alias[1], alias[2])
            if resolved is None:
                # ``from pkg import submodule`` binds a module object
                submodule = f"{alias[1]}.{alias[2]}"
                if submodule in self.modules and len(parts) >= 2:
                    qual = ".".join([submodule, *parts[1:]])
                    return qual if qual in self.functions else None
                return None
            defmod, node = resolved
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and len(parts) == 1:
                return f"{defmod}.{node.name}"
            if isinstance(node, ast.ClassDef) and len(parts) == 2:
                qual = f"{defmod}.{node.name}.{parts[1]}"
                if qual in self.functions:
                    return qual
            return None
        if len(parts) == 1:
            qual = f"{modname}.{head}"
            return qual if qual in self.functions else None
        if len(parts) == 2:
            qual = f"{modname}.{head}.{parts[1]}"
            if qual in self.functions:
                return qual
        return None

    def _resolve_calls(self, summary: FunctionSummary) -> None:
        aliases = self._function_aliases(summary)
        for dotted, call in summary.calls:
            qual = self._lookup_callee(summary.module, dotted, aliases)
            if qual is not None and qual != summary.qualname:
                summary.call_targets[id(call)] = qual

    def callees(self, summary: FunctionSummary) -> Iterator[FunctionSummary]:
        seen: set[str] = set()
        for qual in summary.call_targets.values():
            if qual not in seen:
                seen.add(qual)
                yield self.functions[qual]

    def _close_returns_int32(self) -> None:
        """Fixed point: a function returning an int32-returning callee's
        result returns int32 itself."""
        resolved_returns: dict[str, list[str]] = {}
        for qual, summary in self.functions.items():
            aliases = self._function_aliases(summary)
            targets = []
            for dotted in summary.return_callees:
                target = self._lookup_callee(summary.module, dotted, aliases)
                if target is not None and target != qual:
                    targets.append(target)
            resolved_returns[qual] = targets
        changed = True
        while changed:
            changed = False
            for qual, summary in self.functions.items():
                if summary.returns_int32:
                    continue
                if any(self.functions[t].returns_int32
                       for t in resolved_returns[qual]):
                    summary.returns_int32 = True
                    changed = True
