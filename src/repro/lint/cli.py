"""``repro-lint`` console entry point.

Exit codes: 0 clean, 1 violations found, 2 usage/IO errors — so CI and
pre-commit can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, select_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("project-specific static analysis: flat-array mmap "
                     "discipline, shm lifecycle, async serving, int64 "
                     "promotion, backend parity, worker-error visibility"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULE[,RULE]",
                        help="run only these rules (codes or names)")
    parser.add_argument("--ignore", metavar="RULE[,RULE]",
                        help="skip these rules (codes or names)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:28s} {rule.description}")
        return 0
    try:
        rules = select_rules(_split(args.select), _split(args.ignore))
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    violations, errors = lint_paths(args.paths, rules=rules)
    for violation in violations:
        print(violation.format())
    for error in errors:
        print(f"repro-lint: {error}", file=sys.stderr)
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        print(f"repro-lint: {len(violations)} {noun} "
              f"({len(rules)} rules)", file=sys.stderr)
    if errors:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
