"""``repro-lint`` console entry point.

Exit codes: 0 clean, 1 violations found, 2 usage/IO errors — so CI and
pre-commit can gate on it directly.  ``--format json|sarif`` swaps the
human output for machine formats (SARIF 2.1.0 feeds code scanning);
a ``.repro-lint-baseline.json`` in the working directory is applied
automatically unless ``--no-baseline`` is given.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import (
    BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.output import render_json, render_sarif, render_text
from repro.lint.registry import all_rules, select_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("project-specific static analysis: flat-array mmap "
                     "discipline, shm lifecycle, async serving, int64 "
                     "promotion, backend parity, worker-error visibility, "
                     "plus whole-project dtype-flow, shard-race, and "
                     "backend-contract checking"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULE[,RULE]",
                        help="run only these rules (codes or names)")
    parser.add_argument("--ignore", metavar="RULE[,RULE]",
                        help="skip these rules (codes or names)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--baseline", metavar="PATH",
                        help=f"baseline file of accepted findings "
                             f"(default: ./{BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", metavar="PATH", nargs="?",
                        const=BASELINE_NAME,
                        help="write current findings as the baseline and "
                             "exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(BASELINE_NAME)
    return default if default.is_file() else None


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:28s} {rule.description}")
        return 0
    try:
        rules = select_rules(_split(args.select), _split(args.ignore))
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    violations, errors = lint_paths(args.paths, rules=rules)

    if args.write_baseline is not None:
        write_baseline(violations, args.write_baseline)
        if not args.quiet:
            print(f"repro-lint: wrote {len(violations)} finding(s) to "
                  f"{args.write_baseline}", file=sys.stderr)
        return 0

    baselined = 0
    baseline_path = _baseline_path(args)
    if baseline_path is not None:
        try:
            violations, baselined = apply_baseline(
                violations, load_baseline(baseline_path))
        except (OSError, ValueError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    if args.fmt == "json":
        print(render_json(violations))
    elif args.fmt == "sarif":
        print(render_sarif(violations, rules))
    else:
        text = render_text(violations)
        if text:
            print(text)
    for error in errors:
        print(f"repro-lint: {error}", file=sys.stderr)
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        suffix = f", {baselined} baselined" if baselined else ""
        print(f"repro-lint: {len(violations)} {noun} "
              f"({len(rules)} rules{suffix})", file=sys.stderr)
    if errors:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
