"""Baseline (accepted-findings) file support.

A baseline is a checked-in JSON list of finding fingerprints that the
project has reviewed and accepted; ``repro-lint`` subtracts them from a
run so the gate stays at *zero new findings* while grandfathered ones
age out visibly.  Fingerprints are line-number independent —
``(package-relative path, rule code, message)`` — so unrelated edits
above a finding don't invalidate the baseline; each fingerprint absorbs
findings up to its recorded multiplicity.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.engine import _relpath
from repro.lint.registry import Violation

__all__ = ["BASELINE_NAME", "apply_baseline", "load_baseline",
           "write_baseline"]

BASELINE_NAME = ".repro-lint-baseline.json"

_Fingerprint = tuple[str, str, str]


def _fingerprint(violation: Violation) -> _Fingerprint:
    return (_relpath(Path(violation.path)), violation.code,
            violation.message)


def load_baseline(path: str | Path) -> Counter:
    """Load fingerprints; raises ValueError on a malformed file."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = raw.get("findings") if isinstance(raw, dict) else raw
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must be a list of findings")
    counts: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: baseline entries must be objects")
        try:
            key = (str(entry["path"]), str(entry["code"]),
                   str(entry["message"]))
        except KeyError as exc:
            raise ValueError(
                f"{path}: baseline entry missing {exc.args[0]!r}") from None
        counts[key] += int(entry.get("count", 1))
    return counts


def apply_baseline(violations: list[Violation],
                   baseline: Counter) -> tuple[list[Violation], int]:
    """Split off baselined findings: ``(new_violations, baselined_count)``."""
    remaining = Counter(baseline)
    fresh: list[Violation] = []
    matched = 0
    for violation in violations:
        key = _fingerprint(violation)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            fresh.append(violation)
    return fresh, matched


def write_baseline(violations: list[Violation], path: str | Path) -> None:
    counts: Counter = Counter(_fingerprint(v) for v in violations)
    findings = [
        {"path": rel, "code": code, "message": message,
         **({"count": count} if count > 1 else {})}
        for (rel, code, message), count in sorted(counts.items())
    ]
    document = {
        "comment": ("accepted repro-lint findings; regenerate with "
                    "repro-lint --write-baseline"),
        "findings": findings,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")
