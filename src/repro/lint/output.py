"""Output formatters: plain text, JSON, and SARIF 2.1.0.

SARIF is the GitHub code-scanning interchange format; the emitted
document is the minimal valid subset — one run, the driver's rule
metadata, and one result per violation with a physical location.
"""

from __future__ import annotations

import json
from pathlib import PurePath

from repro.lint.registry import Rule, Violation

__all__ = ["render_json", "render_sarif", "render_text"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _uri(path: str) -> str:
    """Forward-slash relative-ish URI for SARIF artifact locations."""
    return PurePath(path).as_posix().lstrip("/")


def render_text(violations: list[Violation]) -> str:
    return "\n".join(violation.format() for violation in violations)


def render_json(violations: list[Violation]) -> str:
    rows = [
        {"path": v.path, "line": v.line, "col": v.col,
         "code": v.code, "name": v.name, "message": v.message}
        for v in violations
    ]
    return json.dumps(rows, indent=2, sort_keys=True)


def render_sarif(violations: list[Violation],
                 rules: list[Rule]) -> str:
    rule_order = [rule.code for rule in rules]
    rule_index = {code: i for i, code in enumerate(rule_order)}
    driver = {
        "name": "repro-lint",
        "informationUri":
            "https://example.invalid/repro-nucleus/docs/STATIC_ANALYSIS.md",
        "rules": [
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
            }
            for rule in rules
        ],
    }
    results = [
        {
            "ruleId": v.code,
            **({"ruleIndex": rule_index[v.code]}
               if v.code in rule_index else {}),
            "level": "error",
            "message": {"text": f"[{v.name}] {v.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(v.path)},
                        "region": {"startLine": v.line,
                                   "startColumn": v.col + 1},
                    }
                }
            ],
        }
        for v in violations
    ]
    document = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(document, indent=2, sort_keys=True)
