"""Per-function summaries the interprocedural rules query.

A :class:`FunctionSummary` is a cheap, purely syntactic digest of one
function: its accepted parameters, whether it (locally) returns int32-
derived values, which callees it returns the result of, every call it
makes, and every subscript *write* it performs on a parameter (the
shared-array candidates for the shard-race rule).  Summaries are built
once per function by :class:`repro.lint.project.Project`, which then
resolves call targets against the project symbol table and closes the
``returns_int32`` flag transitively.

Nothing here executes code or imports the analysed modules — it is the
same ``ast``-only discipline as the per-file rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.dtypes import produces_int32 as _produces_int32
from repro.lint.dtypes import promoted as _promoted
from repro.lint.registry import base_name, dotted_name

__all__ = ["FunctionSummary", "SharedWrite", "summarize_function"]

#: classification of a subscript store on a parameter-rooted array
WRITE_KINDS = ("disjoint", "whole", "unanalyzable")


@dataclass(frozen=True)
class SharedWrite:
    """One subscript store on a parameter-rooted (possibly shared) array.

    ``kind`` is ``"disjoint"`` when the write is ``arr[lo:hi] = ...``
    with both bounds bare parameters of the function — the dispatcher
    hands each worker its own ``(lo, hi)`` shard, so such writes are
    provably non-overlapping across workers.  ``"whole"`` covers
    ``arr[:] = ...`` / ``arr[...] = ...``; everything else (fancy
    indexing, computed bounds, scalar element stores) is
    ``"unanalyzable"``.
    """

    target: str
    kind: str
    node: ast.AST


@dataclass
class FunctionSummary:
    """Syntactic digest of one function definition."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    has_varargs: bool
    has_kwargs: bool
    decorated: bool
    #: this function itself returns an int32-derived value
    returns_int32_local: bool
    #: dotted callee texts whose result this function returns verbatim
    return_callees: tuple[str, ...]
    #: every call made directly in the body: (dotted callee text, node)
    calls: tuple[tuple[str, ast.Call], ...]
    writes: tuple[SharedWrite, ...]
    #: transitive closure of ``returns_int32_local`` over resolved
    #: return callees; fixed by :class:`repro.lint.project.Project`
    returns_int32: bool = False
    #: ``id(call_node) -> callee qualname`` for project-resolved calls;
    #: filled by :class:`repro.lint.project.Project`
    call_targets: dict[int, str] = field(default_factory=dict)

    def accepts_keyword(self, keyword: str) -> bool:
        return (self.has_kwargs or keyword in self.params
                or keyword in self.kwonly)


def _own_statements(node: ast.AST) -> Iterator[ast.stmt]:
    """Statements of ``node``'s body, recursing into compound statements
    but never into nested function/class definitions."""
    for stmt in getattr(node, "body", []) or []:
        yield from _stmt_and_children(stmt)
    for stmt in getattr(node, "orelse", []) or []:
        yield from _stmt_and_children(stmt)
    for stmt in getattr(node, "finalbody", []) or []:
        yield from _stmt_and_children(stmt)
    for handler in getattr(node, "handlers", []) or []:
        for stmt in handler.body:
            yield from _stmt_and_children(stmt)


def _stmt_and_children(stmt: ast.stmt) -> Iterator[ast.stmt]:
    yield stmt
    if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
        yield from _own_statements(stmt)


def _walk_expr_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls in the expressions owned by ``stmt`` (not its sub-statements)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            continue
        for node in ast.walk(child):
            if isinstance(node, ast.Call):
                yield node


def _classify_write(sub: ast.Subscript,
                    params: set[str]) -> str:
    index = sub.slice
    if isinstance(index, ast.Slice):
        if index.lower is None and index.upper is None and index.step is None:
            return "whole"
        bounds_ok = all(
            isinstance(bound, ast.Name) and bound.id in params
            for bound in (index.lower, index.upper) if bound is not None)
        both_present = index.lower is not None and index.upper is not None
        if bounds_ok and both_present and index.step is None:
            return "disjoint"
        return "unanalyzable"
    if isinstance(index, ast.Constant) and index.value is Ellipsis:
        return "whole"
    return "unanalyzable"


def _write_target(sub: ast.Subscript) -> tuple[str, str]:
    """``(label, root_name)`` for the array being stored into."""
    value = sub.value
    if isinstance(value, ast.Name):
        return value.id, value.id
    label = dotted_name(value)
    root = base_name(value)
    return (label or root or "?"), root


def summarize_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                       qualname: str, module: str) -> FunctionSummary:
    args = node.args
    params = tuple(a.arg for a in (*args.posonlyargs, *args.args))
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    param_set = set(params) | set(kwonly)

    statements = list(_own_statements(node))

    # names (re)bound as plain locals anywhere in the body are not shared
    # inputs, whatever their indexing pattern looks like
    local_names: set[str] = set()
    for stmt in statements:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    local_names.add(target.id)
        elif isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
            local_names.add(stmt.target.id)

    calls: list[tuple[str, ast.Call]] = []
    writes: list[SharedWrite] = []
    return_callees: list[str] = []
    returns_int32_local = False
    tainted: set[str] = set()
    bound_calls: dict[str, str] = {}

    for stmt in statements:
        for call in _walk_expr_calls(stmt):
            callee = dotted_name(call.func)
            if callee:
                calls.append((callee, call))
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Subscript):
                    label, root = _write_target(target)
                    if root in param_set and root not in local_names:
                        kind = _classify_write(target, param_set)
                        writes.append(SharedWrite(target=label, kind=kind,
                                                  node=stmt))
                elif isinstance(target, ast.Name) and value is not None:
                    if _produces_int32(value):
                        tainted.add(target.id)
                        bound_calls.pop(target.id, None)
                    elif (isinstance(value, ast.Call)
                          and not isinstance(stmt, ast.AugAssign)):
                        tainted.discard(target.id)
                        callee = dotted_name(value.func)
                        if callee:
                            bound_calls[target.id] = callee
                        else:
                            bound_calls.pop(target.id, None)
                    elif not isinstance(stmt, ast.AugAssign):
                        tainted.discard(target.id)
                        bound_calls.pop(target.id, None)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            value = stmt.value
            if _promoted(value):
                continue
            if _produces_int32(value):
                returns_int32_local = True
            elif isinstance(value, ast.Name):
                if value.id in tainted:
                    returns_int32_local = True
                elif value.id in bound_calls:
                    return_callees.append(bound_calls[value.id])
            elif isinstance(value, ast.Call):
                callee = dotted_name(value.func)
                if callee:
                    return_callees.append(callee)

    return FunctionSummary(
        qualname=qualname, module=module, name=node.name, node=node,
        params=params, kwonly=kwonly,
        has_varargs=args.vararg is not None,
        has_kwargs=args.kwarg is not None,
        decorated=bool(node.decorator_list),
        returns_int32_local=returns_int32_local,
        return_callees=tuple(return_callees),
        calls=tuple(calls),
        writes=tuple(writes),
        returns_int32=returns_int32_local,
    )
