"""Walk files, parse pragmas, and run the registered rules.

Pragma syntax (shown here in the docstring, not a comment, so the
examples are not themselves parsed as pragmas)::

    seg = acquire()  # repro-lint: disable=shm-lifecycle,RL004
    # repro-lint: disable-file=int32-overflow   (whole file, any line)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.project import Project
from repro.lint.registry import (
    Module,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
)

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\-\s]+?)\s*(?:#|$)")

_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", "build", "dist"}


def _parse_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Scan comment tokens for pragmas; never raises on bad source."""
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [(number, line) for number, line
                    in enumerate(source.splitlines(), 1) if "#" in line]
    for line_number, text in comments:
        match = _PRAGMA.search(text)
        if not match:
            continue
        names = {part.strip() for part in match.group("rules").split(",")
                 if part.strip()}
        if match.group("kind") == "disable-file":
            whole_file |= names
        else:
            per_line.setdefault(line_number, set()).update(names)
    return per_line, whole_file


def _relpath(path: Path) -> str:
    """Package-relative posix path used for rule scoping.

    Everything after the last ``src/`` component if present, else the path
    tail starting at the first ``repro`` component, else the bare name —
    so scoping works for installed trees, repo checkouts, and fixtures.
    """
    parts = path.parts
    if "src" in parts:
        index = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[index + 1:]
        if tail:
            return "/".join(tail)
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return path.name


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    yield child
        else:
            yield path


def parse_module(source: str, path: str = "<string>") -> Module:
    """Parse one source file into the Module handed to rules."""
    tree = ast.parse(source, filename=path)
    per_line, whole_file = _parse_pragmas(source)
    return Module(path=path, relpath=_relpath(Path(path)), source=source,
                  tree=tree, disabled=per_line, disabled_file=whole_file)


def lint_modules(modules: list[Module],
                 rules: Iterable[Rule] | None = None) -> list[Violation]:
    """Run per-file rules on each module and project rules on the whole
    set (parsed once, analysed once)."""
    rules = list(rules) if rules is not None else all_rules()
    project = Project(modules)
    violations: list[Violation] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.run_project(project))
        else:
            for module in modules:
                violations.extend(rule.run(module))
    return sorted(violations)


def lint_source(source: str, path: str = "<string>",
                rules: Iterable[Rule] | None = None) -> list[Violation]:
    """Lint a source string; ``path`` drives both reporting and scoping.

    Project rules see a single-module project, so interprocedural
    findings within the file still fire.
    """
    return lint_modules([parse_module(source, path)], rules)


def lint_paths(paths: Iterable[str | Path],
               rules: Iterable[Rule] | None = None,
               ) -> tuple[list[Violation], list[str]]:
    """Lint files/directories.  Returns (violations, unreadable-file errors)."""
    modules: list[Module] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(parse_module(source, path=str(path)))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{path}: {exc}")
    return lint_modules(modules, rules), errors
