"""Shared dtype-recognition helpers for the int-width rules.

Both RL004 (per-file) and RL007 (interprocedural) plus the function
summaries need the same syntactic questions answered: does this
expression *produce* an int32-derived array, and is this expression an
explicit int64 widening?  Keeping the token sets and recognisers here
avoids a rules ↔ summaries import cycle.
"""

from __future__ import annotations

import ast

from repro.lint.registry import dotted_name

__all__ = ["produces_int32", "promoted"]

_INT32_TOKENS = {"int32", "i4", "<i4", "uint32", "u4", "<u4"}
_INT64_TOKENS = {"int64", "i8", "<i8", "intp"}
_NP_PRODUCERS = {"frombuffer", "array", "asarray", "zeros", "empty", "full",
                 "arange", "fromiter", "ascontiguousarray"}


def _dtype_token(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = dotted_name(node)
    return name.rsplit(".", 1)[-1] if name else None


def _mentions_int32(node: ast.expr) -> bool:
    token = _dtype_token(node)
    return token in _INT32_TOKENS if token is not None else False


def _mentions_int64(node: ast.expr) -> bool:
    token = _dtype_token(node)
    return token in _INT64_TOKENS if token is not None else False


def produces_int32(value: ast.expr) -> bool:
    """True for ``.astype(np.int32)``, numpy constructors with an int32
    dtype, and stdlib ``array('i', ...)``."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        return bool(value.args) and _mentions_int32(value.args[0])
    callee = dotted_name(func).rsplit(".", 1)[-1]
    if callee in _NP_PRODUCERS:
        for kw in value.keywords:
            if kw.arg == "dtype":
                return _mentions_int32(kw.value)
        # stdlib array('i', ...): first arg is the typecode
        if callee == "array" and value.args:
            first = value.args[0]
            return (isinstance(first, ast.Constant)
                    and first.value in {"i", "I", "l", "L"})
    return False


def promoted(value: ast.expr) -> bool:
    """True for ``x.astype(np.int64)``-style explicit widening."""
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "astype"
            and bool(value.args) and _mentions_int64(value.args[0]))
