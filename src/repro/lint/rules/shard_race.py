"""RL008 shard-write-race.

The worker pool (``parallel/pool.py``) runs the *same* kernel in every
worker process over the *same* attached ``SharedArrayBundle`` arrays,
handing each worker a ``(lo, hi)`` shard of the frontier.  A kernel that
writes one of those shared arrays is only safe when every write is
provably confined to the worker's own shard — ``arr[lo:hi] = ...`` with
both bounds bare parameters.  Whole-array stores, fancy indexing, or
computed bounds can overlap another worker's writes and corrupt state
silently (the classic shared-memory peeling race).

The rule anchors on the dispatcher: any function named ``_worker_main``
is treated as the worker loop, every project-resolved function it calls
is a worker kernel, and every non-disjoint parameter-rooted write in a
kernel (or in the dispatcher itself) is flagged.  Today's kernels are
read-only over shared arrays — they return sparse outputs the parent
merges — so the shipped tree is clean by construction; this rule keeps
it that way.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, ProjectRule, register

_DISPATCHER = "_worker_main"


@register
class ShardWriteRace(ProjectRule):
    code = "RL008"
    name = "shard-write-race"
    description = (
        "worker kernels dispatched through the pool must write shared "
        "arrays only via provably disjoint parameter-bounded slices.")

    def check_project(self, project,
                      ) -> Iterator[tuple[Module, ast.AST, str]]:
        kernels: dict[str, object] = {}
        for summary in project.functions.values():
            if summary.name != _DISPATCHER:
                continue
            kernels.setdefault(summary.qualname, summary)
            for callee in project.callees(summary):
                kernels.setdefault(callee.qualname, callee)
        for qual in sorted(kernels):
            summary = kernels[qual]
            module = project.modules.get(summary.module)
            if module is None:
                continue
            for write in summary.writes:
                if write.kind == "disjoint":
                    continue
                how = ("writes the whole array" if write.kind == "whole"
                       else "writes through an unanalyzable index")
                yield (module, write.node,
                       f"worker kernel {summary.name!r} {how} on shared "
                       f"array {write.target!r}; every worker runs this "
                       "kernel concurrently, so writes must be disjoint "
                       "parameter-bounded slices (arr[lo:hi] = ...)")
