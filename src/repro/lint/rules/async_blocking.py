"""RL003 no-blocking-in-async.

The serving tier is a single asyncio event loop per worker; one blocking
call stalls every in-flight request behind it.  Inside ``async def``
bodies this rule flags ``time.sleep``, ``subprocess``/``os.system``,
synchronous socket construction, ``urllib`` fetches, and the builtin
``open`` — use ``await asyncio.sleep``, executors, or do the I/O before
the loop starts.

Nested synchronous ``def`` bodies are skipped: defining a helper is not
executing it (the helper may legitimately run in an executor).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, Rule, dotted_name, register, walk_skipping

_BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.popen",
    "socket.socket",
    "socket.create_connection",
    "urllib.request.urlopen",
}
_BLOCKING_MODULES = {"subprocess"}
_BLOCKING_BUILTINS = {"open"}


def _blocking_reason(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name in _BLOCKING_DOTTED:
        return f"{name}() blocks the event loop"
    if name.split(".", 1)[0] in _BLOCKING_MODULES:
        return f"{name}() runs a subprocess synchronously"
    if isinstance(call.func, ast.Name) and call.func.id in _BLOCKING_BUILTINS:
        return "builtin open() does blocking file I/O"
    return None


@register
class NoBlockingInAsync(Rule):
    code = "RL003"
    name = "no-blocking-in-async"
    description = (
        "blocking calls (time.sleep, sync file/socket I/O, subprocess) "
        "inside async def stall the whole event loop.")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        def nested_def(node: ast.AST) -> bool:
            # nested sync defs aren't executed here; nested async defs are
            # visited by the outer loop in their own right
            return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda))

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in walk_skipping(node, nested_def):
                if isinstance(child, ast.Call):
                    reason = _blocking_reason(child)
                    if reason is not None:
                        yield (child,
                               f"{reason} inside async def {node.name!r}; "
                               "await the async equivalent or run it in "
                               "an executor")
