"""RL009 backend-contract-conformance.

The backend dispatch layer (``backends.py``) resolves each op to an
engine implementation with function-scoped lazy imports, and the public
entry points thread ``backend=`` / ``workers=`` / variant kwargs through
plain-function facades.  Three drift classes survive the per-file rules
and today only surface at runtime:

* a **lazy import** naming a symbol its source module no longer defines
  — dead until that dispatch branch runs, then ``ImportError``;
* a **backend string literal** outside ``backends.BACKENDS`` — a typo'd
  ``backend="csr_parallel"`` is a dead branch or a rejected call;
* a **keyword argument** no longer accepted by the (project-resolved)
  callee — a runtime ``TypeError``, or with ``**kwargs`` facades a
  silently ignored option.

All three are checked against the project symbol table / call graph.
The ``BACKENDS`` tuple is read from the linted project's
``repro/backends.py`` when present, so the contract follows the code;
single-file fixtures fall back to the shipped backend names.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, ProjectRule, dotted_name, register

_DEFAULT_BACKENDS = ("object", "csr", "csr-parallel", "disk")


def _project_backends(project) -> tuple[str, ...]:
    resolved = project.resolve_symbol("repro.backends", "BACKENDS")
    if resolved is not None:
        _, node = resolved
        value = getattr(node, "value", None)
        if isinstance(value, (ast.Tuple, ast.List)):
            names = [element.value for element in value.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str)]
            if names:
                return tuple(names)
    return _DEFAULT_BACKENDS


def _try_guarded(tree: ast.AST) -> set[int]:
    """ids of ImportFrom nodes inside any ``try`` (optional-dep guards)."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Try):
            for child in ast.walk(node):
                if isinstance(child, ast.ImportFrom):
                    guarded.add(id(child))
    return guarded


@register
class BackendContractConformance(ProjectRule):
    code = "RL009"
    name = "backend-contract"
    description = (
        "lazy imports, backend string literals, and facade kwargs must "
        "match the project's dispatch contract (backends.BACKENDS and "
        "the resolved callee signatures).")

    def check_project(self, project,
                      ) -> Iterator[tuple[Module, ast.AST, str]]:
        backends = _project_backends(project)
        for name in sorted(project.modules):
            module = project.modules[name]
            yield from self._check_lazy_imports(project, name, module)
            yield from self._check_backend_literals(module, backends)
        for summary in project.functions.values():
            module = project.modules.get(summary.module)
            if module is None:
                continue
            yield from self._check_call_kwargs(project, module, summary)

    # ------------------------------------------------- lazy import drift

    def _check_lazy_imports(self, project, modname: str, module: Module,
                            ) -> Iterator[tuple[Module, ast.AST, str]]:
        guarded = _try_guarded(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.ImportFrom) or node.level != 0:
                    continue
                if id(node) in guarded or node.module is None:
                    continue
                if project.resolve_module(node.module) is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if not project.has_symbol(node.module, alias.name):
                        yield (module, node,
                               f"lazy import cannot resolve: module "
                               f"{node.module!r} defines no "
                               f"{alias.name!r}; this dispatch branch "
                               "raises ImportError at runtime")

    # --------------------------------------------- backend literal drift

    def _check_backend_literals(self, module: Module,
                                backends: tuple[str, ...],
                                ) -> Iterator[tuple[Module, ast.AST, str]]:
        known = ", ".join(backends)

        def bad(node: ast.expr) -> bool:
            return (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value not in backends)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "backend" and bad(kw.value):
                        yield (module, kw.value,
                               f"backend={kw.value.value!r} is not in "
                               f"backends.BACKENDS ({known})")
            elif isinstance(node, ast.Compare):
                if dotted_name(node.left).rsplit(".", 1)[-1] != "backend":
                    continue
                for op, comparator in zip(node.ops, node.comparators,
                                          strict=True):
                    if isinstance(op, (ast.Eq, ast.NotEq)) and bad(comparator):
                        yield (module, comparator,
                               f"comparison against backend "
                               f"{comparator.value!r} is dead: not in "
                               f"backends.BACKENDS ({known})")
                    elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                            comparator, (ast.Tuple, ast.List, ast.Set)):
                        for element in comparator.elts:
                            if bad(element):
                                yield (module, element,
                                       f"membership test includes backend "
                                       f"{element.value!r}: not in "
                                       f"backends.BACKENDS ({known})")

    # ------------------------------------------------------- kwarg drift

    def _check_call_kwargs(self, project, module: Module, summary,
                           ) -> Iterator[tuple[Module, ast.AST, str]]:
        for dotted, call in summary.calls:
            qual = summary.call_targets.get(id(call))
            if qual is None:
                continue
            callee = project.functions[qual]
            if callee.decorated or callee.has_kwargs:
                continue
            if any(kw.arg is None for kw in call.keywords):
                continue  # **expansion: signature unknowable statically
            for kw in call.keywords:
                if not callee.accepts_keyword(kw.arg):
                    yield (module, call,
                           f"call to {qual}() passes keyword "
                           f"{kw.arg!r} its signature does not accept "
                           "(runtime TypeError)")
