"""RL006 no-swallowed-worker-errors.

A worker crash that vanishes into ``except Exception: pass`` turns into
a hung pool or a silently-wrong decomposition.  Broad handlers
(``except Exception``/``BaseException``/bare) must either re-raise or
visibly record the failure — send it over the worker pipe, set it on the
awaiting future, log it, or count it on metrics.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, Rule, dotted_name, register

_BROAD = {"Exception", "BaseException"}
#: callee names (final attribute or function name) that count as making
#: the failure visible to someone
_RECORDERS = {
    "format_exc", "print_exc",           # traceback captured for transport
    "exception", "error", "warning", "critical", "log",  # logging
    "send", "put", "set_exception",      # handed to the consumer
    "fail", "print",                     # explicit reporting
}
_RECORDER_PREFIXES = ("record",)         # ServerMetrics.record_* counters


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if dotted_name(node).rsplit(".", 1)[-1] in _BROAD:
            return True
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func).rsplit(".", 1)[-1]
                if callee in _RECORDERS or callee.startswith(
                        _RECORDER_PREFIXES):
                    return True
    return False


@register
class NoSwallowedWorkerErrors(Rule):
    code = "RL006"
    name = "no-swallowed-worker-errors"
    description = (
        "broad except handlers must re-raise or record the failure "
        "(pipe send, future.set_exception, logging, metrics).")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _handles_visibly(node):
                caught = (dotted_name(node.type) if node.type is not None
                          else "everything")
                yield (node,
                       f"broad handler catches {caught} without "
                       "re-raising or recording it; narrow the type, or "
                       "send/log/count the failure so it stays visible")
