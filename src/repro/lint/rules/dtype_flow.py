"""RL007 interprocedural-dtype-flow.

RL004 taints int32-producing expressions *within* one function — but the
PR 3 key-packing overflow crossed a function boundary: the helper did
the ``.astype(np.int32)`` and the caller did the ``a * n + b``.  Per
file (and per function) both look innocent.  This rule extends the
taint across project call edges: a call whose target (resolved through
the project call graph, including transitive returns) returns an
int32-derived array taints the bound name, and any multiply / shift /
power over that name fires unless the value was explicitly widened with
``.astype(np.int64)`` first.

Only *interprocedural* sources taint here — locally produced int32 stays
RL004's finding, so the two rules never double-report one site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dtypes import promoted as _promoted
from repro.lint.registry import Module, ProjectRule, base_name, register
from repro.lint.summaries import FunctionSummary, _own_statements


@register
class InterproceduralDtypeFlow(ProjectRule):
    code = "RL007"
    name = "interprocedural-dtype-flow"
    description = (
        "a callee returning int32-derived values taints its caller's "
        "key-packing multiplications across function boundaries.")

    def check_project(self, project,
                      ) -> Iterator[tuple[Module, ast.AST, str]]:
        for summary in project.functions.values():
            module = project.modules.get(summary.module)
            if module is None:
                continue
            for node, message in self._check_function(project, summary):
                yield module, node, message

    def _check_function(self, project, summary: FunctionSummary,
                        ) -> Iterator[tuple[ast.AST, str]]:
        def int32_callee(value: ast.expr) -> str | None:
            if not isinstance(value, ast.Call):
                return None
            qual = summary.call_targets.get(id(value))
            if qual is None:
                return None
            callee = project.functions[qual]
            return qual if callee.returns_int32 else None

        tainted: dict[str, str] = {}  # local name -> int32-returning callee
        for stmt in _own_statements(summary.node):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                yield from self._flag_mults(stmt, tainted, int32_callee)
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    source = int32_callee(value)
                    if source is not None:
                        tainted[target.id] = source
                    else:
                        tainted.pop(target.id, None)
            elif not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        yield from self._flag_mults(child, tainted,
                                                    int32_callee)

    def _flag_mults(self, tree: ast.AST, tainted: dict[str, str],
                    int32_callee) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Mult, ast.LShift, ast.Pow))):
                continue
            for side in (node.left, node.right):
                if _promoted(side):
                    continue
                source = None
                name = None
                if isinstance(side, ast.Name) and side.id in tainted:
                    name, source = side.id, tainted[side.id]
                elif isinstance(side, ast.Subscript):
                    root = base_name(side)
                    if root in tainted:
                        name, source = root, tainted[root]
                else:
                    direct = int32_callee(side)
                    if direct is not None:
                        name, source = direct.rsplit(".", 1)[-1] + "()", direct
                if source is not None:
                    yield (node,
                           f"{name!r} holds int32 values returned by "
                           f"{source}(); promote with .astype(np.int64) "
                           "before packing keys (a * n + b wraps past 2**31)")
                    break
