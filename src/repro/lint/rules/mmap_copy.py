"""RL001 no-silent-mmap-copy.

Two ways this repo has silently materialised an "mmapped" index into RAM:

* ``np.load(path, mmap_mode="r")`` on a ``.npz`` archive returns lazy
  members that are **read into fresh arrays** on access — the mmap_mode
  is ignored for zip archives (PR 6 incident; ``repro.flatindex.mmap_npz``
  exists precisely because of this).
* dtype-converting a registry-served array (``.astype``/``np.asarray(...,
  dtype=...)``) on the serve path copies the mmap'd pages per request.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, Rule, dotted_name, register

_SERVE_PREFIXES = ("repro/serve/",)
_LOADER_FUNCS = {"load", "mmap_npz", "load_query_index"}
_CONVERTERS = {"asarray", "ascontiguousarray", "asfortranarray", "require"}


def _is_np_load(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name.endswith(".load") and name.split(".", 1)[0] in {
        "np", "numpy", "_np"}


def _literal_npy(call: ast.Call) -> bool:
    if not call.args:
        return False
    first = call.args[0]
    return (isinstance(first, ast.Constant) and isinstance(first.value, str)
            and first.value.endswith(".npy"))


@register
class NoSilentMmapCopy(Rule):
    code = "RL001"
    name = "no-silent-mmap-copy"
    description = (
        "np.load(mmap_mode=...) silently copies .npz archives; serve-path "
        "dtype conversion copies mmap'd pages — convert at build time.")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        serve_scoped = module.relpath.startswith(_SERVE_PREFIXES)
        loader_ranges: list[tuple[int, int]] = []
        if not serve_scoped:
            for node in ast.walk(module.tree):
                if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name in _LOADER_FUNCS):
                    loader_ranges.append(
                        (node.lineno, node.end_lineno or node.lineno))

        def on_serve_path(node: ast.AST) -> bool:
            if serve_scoped:
                return True
            line = getattr(node, "lineno", 0)
            return any(lo <= line <= hi for lo, hi in loader_ranges)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_np_load(node):
                mmap_kw = next((kw for kw in node.keywords
                                if kw.arg == "mmap_mode"), None)
                if (mmap_kw is not None
                        and not (isinstance(mmap_kw.value, ast.Constant)
                                 and mmap_kw.value.value is None)
                        and not _literal_npy(node)):
                    yield (node,
                           "np.load(mmap_mode=...) is silently ignored for "
                           ".npz archives (members are copied on access); "
                           "use repro.flatindex.mmap_npz or "
                           "FlatHierarchyIndex.load(mmap_mode='r')")
                continue
            if not on_serve_path(node):
                continue
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"):
                yield (node,
                       "astype() on the serve path copies the mmap'd "
                       "array; persist the right dtype at build time")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CONVERTERS
                    and any(kw.arg == "dtype" for kw in node.keywords)):
                yield (node,
                       f"np.{node.func.attr}(..., dtype=...) on the serve "
                       "path copies the mmap'd array; persist the right "
                       "dtype at build time")
