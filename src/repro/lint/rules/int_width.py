"""RL004 int32-overflow.

The CSR/packing layers store indices as int32 for cache density, but key
packing multiplies them (``a * n + b``): at ~2**15.5 vertices the int32
product wraps silently (PR 3 incident in ``parallel_nucleus34_incidence``).
This rule taints names bound to int32-producing expressions
(``.astype(np.int32)``, ``np.frombuffer/zeros/empty/full/arange(...,
dtype=int32)``, ``array('i', ...)``) and flags any multiplication whose
operand is a tainted name (or an element of one) unless the operand is
explicitly promoted via ``.astype(np.int64)`` first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, Rule, base_name, dotted_name, register

_INT32_TOKENS = {"int32", "i4", "<i4", "uint32", "u4", "<u4"}
_INT64_TOKENS = {"int64", "i8", "<i8", "intp"}
_NP_PRODUCERS = {"frombuffer", "array", "asarray", "zeros", "empty", "full",
                 "arange", "fromiter", "ascontiguousarray"}


def _dtype_token(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = dotted_name(node)
    return name.rsplit(".", 1)[-1] if name else None


def _mentions_int32(node: ast.expr) -> bool:
    token = _dtype_token(node)
    return token in _INT32_TOKENS if token is not None else False


def _mentions_int64(node: ast.expr) -> bool:
    token = _dtype_token(node)
    return token in _INT64_TOKENS if token is not None else False


def _produces_int32(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        return bool(value.args) and _mentions_int32(value.args[0])
    callee = dotted_name(func).rsplit(".", 1)[-1]
    if callee in _NP_PRODUCERS:
        for kw in value.keywords:
            if kw.arg == "dtype":
                return _mentions_int32(kw.value)
        # stdlib array('i', ...): first arg is the typecode
        if callee == "array" and value.args:
            first = value.args[0]
            return (isinstance(first, ast.Constant)
                    and first.value in {"i", "I", "l", "L"})
    return False


def _promoted(value: ast.expr) -> bool:
    """True for ``x.astype(np.int64)``-style explicit widening."""
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "astype"
            and bool(value.args) and _mentions_int64(value.args[0]))


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


@register
class Int32Overflow(Rule):
    code = "RL004"
    name = "int32-overflow"
    description = (
        "int32 index values used in key-packing multiplication without "
        "explicit int64 promotion wrap silently past 2**31.")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        for _scope, body in _scopes(module.tree):
            tainted: set[str] = set()
            for stmt in body:
                yield from self._visit(stmt, tainted)

    def _visit(self, stmt: ast.stmt,
               tainted: set[str]) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate scope, handled by _scopes
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            if value is not None:
                yield from self._flag_mults(value, tainted)
                for target in targets:
                    if isinstance(target, ast.Name):
                        if _produces_int32(value):
                            tainted.add(target.id)
                        elif not isinstance(stmt, ast.AugAssign):
                            tainted.discard(target.id)
            return
        # compound statements: recurse into their bodies with shared taint
        for field in ("body", "orelse", "finalbody"):
            for child in getattr(stmt, field, []) or []:
                yield from self._visit(child, tainted)
        for handler in getattr(stmt, "handlers", []) or []:
            for child in handler.body:
                yield from self._visit(child, tainted)
        if not hasattr(stmt, "body"):
            yield from self._flag_mults(stmt, tainted)
        else:
            # flag expressions owned by the statement head (test, iter, ...)
            for field in ("test", "iter", "value", "items"):
                head = getattr(stmt, field, None)
                if isinstance(head, ast.expr):
                    yield from self._flag_mults(head, tainted)

    def _flag_mults(self, tree: ast.AST,
                    tainted: set[str]) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Mult, ast.LShift, ast.Pow))):
                continue
            for side in (node.left, node.right):
                name = self._tainted_operand(side, tainted)
                if name is not None:
                    yield (node,
                           f"{name!r} holds int32 values; promote with "
                           ".astype(np.int64) before packing keys "
                           "(a * n + b wraps past 2**31)")
                    break

    @staticmethod
    def _tainted_operand(side: ast.expr, tainted: set[str]) -> str | None:
        if _promoted(side):
            return None
        if isinstance(side, ast.Name) and side.id in tainted:
            return side.id
        if isinstance(side, ast.Subscript):
            root = base_name(side)
            if root in tainted:
                return root
        return None
