"""RL004 int32-overflow.

The CSR/packing layers store indices as int32 for cache density, but key
packing multiplies them (``a * n + b``): at ~2**15.5 vertices the int32
product wraps silently (PR 3 incident in ``parallel_nucleus34_incidence``).
This rule taints names bound to int32-producing expressions
(``.astype(np.int32)``, ``np.frombuffer/zeros/empty/full/arange(...,
dtype=int32)``, ``array('i', ...)``) and flags any multiplication whose
operand is a tainted name (or an element of one) unless the operand is
explicitly promoted via ``.astype(np.int64)`` first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dtypes import produces_int32 as _produces_int32
from repro.lint.dtypes import promoted as _promoted
from repro.lint.registry import Module, Rule, base_name, register


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


@register
class Int32Overflow(Rule):
    code = "RL004"
    name = "int32-overflow"
    description = (
        "int32 index values used in key-packing multiplication without "
        "explicit int64 promotion wrap silently past 2**31.")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        for _scope, body in _scopes(module.tree):
            tainted: set[str] = set()
            for stmt in body:
                yield from self._visit(stmt, tainted)

    def _visit(self, stmt: ast.stmt,
               tainted: set[str]) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate scope, handled by _scopes
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            if value is not None:
                yield from self._flag_mults(value, tainted)
                for target in targets:
                    if isinstance(target, ast.Name):
                        if _produces_int32(value):
                            tainted.add(target.id)
                        elif not isinstance(stmt, ast.AugAssign):
                            tainted.discard(target.id)
            return
        # compound statements: recurse into their bodies with shared taint
        for field in ("body", "orelse", "finalbody"):
            for child in getattr(stmt, field, []) or []:
                yield from self._visit(child, tainted)
        for handler in getattr(stmt, "handlers", []) or []:
            for child in handler.body:
                yield from self._visit(child, tainted)
        if not hasattr(stmt, "body"):
            yield from self._flag_mults(stmt, tainted)
        else:
            # flag expressions owned by the statement head (test, iter, ...)
            for field in ("test", "iter", "value", "items"):
                head = getattr(stmt, field, None)
                if isinstance(head, ast.expr):
                    yield from self._flag_mults(head, tainted)

    def _flag_mults(self, tree: ast.AST,
                    tainted: set[str]) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Mult, ast.LShift, ast.Pow))):
                continue
            for side in (node.left, node.right):
                name = self._tainted_operand(side, tainted)
                if name is not None:
                    yield (node,
                           f"{name!r} holds int32 values; promote with "
                           ".astype(np.int64) before packing keys "
                           "(a * n + b wraps past 2**31)")
                    break

    @staticmethod
    def _tainted_operand(side: ast.expr, tainted: set[str]) -> str | None:
        if _promoted(side):
            return None
        if isinstance(side, ast.Name) and side.id in tainted:
            return side.id
        if isinstance(side, ast.Subscript):
            root = base_name(side)
            if root in tainted:
                return root
        return None
