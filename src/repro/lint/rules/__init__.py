"""Built-in rules; importing this package registers them."""

from repro.lint.rules import (  # noqa: F401
    async_blocking,
    backend_parity,
    int_width,
    mmap_copy,
    shm_lifecycle,
    swallowed,
)
