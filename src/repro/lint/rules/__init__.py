"""Built-in rules; importing this package registers them."""

from repro.lint.rules import (  # noqa: F401
    async_blocking,
    backend_contract,
    backend_parity,
    dtype_flow,
    int_width,
    mmap_copy,
    shard_race,
    shm_lifecycle,
    swallowed,
)
