"""RL002 shm-lifecycle.

A ``SharedMemory(create=True)`` / ``SharedArrayBundle.create`` /
``share_forest`` acquisition owns a kernel object that outlives the
process on leak.  Every acquisition must either:

* be used directly as a ``with`` context manager,
* reach ``close()``/``unlink()`` in a ``try/finally`` (dotted access on
  the bound name counts, e.g. ``forest.bundle.unlink()``),
* clean up and re-raise in an ``except`` handler, or
* escape the function (returned/yielded, stored into an attribute or
  container, or passed to another call) — ownership moved elsewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import (
    Module,
    Rule,
    base_name,
    dotted_name,
    function_defs,
    register,
    walk_skipping,
)

_CREATOR_OWNERS = {"SharedArrayBundle", "SharedRootedForest"}
_CREATOR_NAMES = {"share_forest"}
_CLEANUP_ATTRS = {"close", "unlink"}


def _is_acquisition(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "create":
        if dotted_name(func.value).rsplit(".", 1)[-1] in _CREATOR_OWNERS:
            return True
    name = dotted_name(func).rsplit(".", 1)[-1]
    if name in _CREATOR_NAMES:
        return True
    if name == "SharedMemory":
        return any(kw.arg == "create"
                   and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True for kw in call.keywords)
    return False


def _cleans_up(subtree: list[ast.stmt], name: str) -> bool:
    for stmt in subtree:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLEANUP_ATTRS
                    and base_name(node.func.value) == name):
                return True
    return False


def _raises(subtree: list[ast.stmt]) -> bool:
    return any(isinstance(node, ast.Raise)
               for stmt in subtree for node in ast.walk(stmt))


def _mentions(tree: ast.AST, name: str) -> bool:
    return any(isinstance(node, ast.Name) and node.id == name
               for node in ast.walk(tree))


def _sanctioned(scope: ast.AST, name: str, binding: ast.Assign) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(isinstance(item.context_expr, ast.Name)
                   and item.context_expr.id == name for item in node.items):
                return True
        elif isinstance(node, ast.Try):
            if _cleans_up(node.finalbody, name):
                return True
            if any(_cleans_up(h.body, name) and _raises(h.body)
                   for h in node.handlers):
                return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions(node.value, name):
                return True
        elif isinstance(node, ast.Assign) and node is not binding:
            # self.x = name / d[k] = name: container owns it now
            if _mentions(node.value, name) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets):
                return True
        elif isinstance(node, ast.Call) and node.func is not binding.value:
            # passed to another call: ownership delegated
            if any(_mentions(arg, name) for arg in node.args) or any(
                    _mentions(kw.value, name) for kw in node.keywords):
                return True
    return False


@register
class ShmLifecycle(Rule):
    code = "RL002"
    name = "shm-lifecycle"
    description = (
        "shared-memory acquisitions must reach close()/unlink() on all "
        "paths (with-block, try/finally, or ownership transfer).")
    scope = ("repro/parallel/", "repro/serve/")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        def nested_def(node: ast.AST) -> bool:
            return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda))

        for scope in [module.tree, *function_defs(module.tree)]:
            for node in walk_skipping(scope, nested_def):
                if (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)
                        and _is_acquisition(node.value)):
                    names = [t.id for t in node.targets
                             if isinstance(t, ast.Name)]
                    if not names:
                        continue  # attribute/subscript target: stored away
                    if not _sanctioned(scope, names[0], node):
                        yield (node.value,
                               f"shared-memory acquisition {names[0]!r} may "
                               "leak its segment: use a with-block, a "
                               "try/finally reaching close()/unlink(), or "
                               "transfer ownership")
                elif (isinstance(node, ast.Expr)
                      and isinstance(node.value, ast.Call)
                      and _is_acquisition(node.value)):
                    yield (node.value,
                           "shared-memory acquisition is discarded without "
                           "a handle to close()/unlink() it")
