"""RL005 backend-parity.

``repro.backends`` is the single dispatch point that keeps the object,
CSR, and csr-parallel engines interchangeable (and is where ``workers=``
resolution lives).  Calling an engine entry point directly from outside
the engine layers forks the API: the caller silently loses backend
selection and worker parity.  Public wrappers that do take ``backend=``
must also take ``workers=`` (and vice versa) so every entry point reads
the same.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.registry import Module, Rule, dotted_name, register

#: layers allowed to touch engines directly: the engines themselves and
#: the dispatch layer.  ``external/engine.py`` is the disk engine (the
#: ``backend="disk"`` implementation behind :mod:`repro.backends`) — the
#: rest of ``repro/external/`` routes through the dispatch layer like any
#: other caller.
_ENGINE_LAYERS = ("repro/core/", "repro/parallel/", "repro/backends.py",
                  "repro/external/engine.py", "repro/lint/")
#: scenario-variant modules: they *implement* their object-reference and
#: generic-kernel engines locally (so direct engine calls are allowed),
#: but they are dispatch surface — every public graph-first entry point
#: must accept ``backend=`` and ``workers=`` together.
_VARIANT_LAYERS = ("repro/kcore/variants.py", "repro/kcore/uncertain.py",
                   "repro/kcore/temporal.py")
_ENGINE_ENTRY_POINTS = {
    "nucleus_decomposition",
    "csr_core_peel", "csr_truss_peel", "csr_nucleus34_peel",
    "csr_fnd_decomposition",
    "parallel_core_peel", "parallel_truss_peel", "parallel_nucleus34_peel",
    "parallel_fnd_decomposition",
    "bulk_core_peel", "bulk_truss_peel", "bulk_nucleus34_peel",
    "generic_peel",
    "kernel_core_peel", "kernel_truss_peel", "kernel_nucleus34_peel",
}


@register
class BackendParity(Rule):
    code = "RL005"
    name = "backend-parity"
    description = (
        "peel/decompose entry points route through repro.backends and "
        "accept backend=/workers= together.")

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        if module.relpath.startswith(_ENGINE_LAYERS):
            # the engines themselves and the dispatch layer: workers-only
            # signatures (parallel_*_peel) are the implementation, not the
            # public surface
            return
        variant_layer = module.relpath.startswith(_VARIANT_LAYERS)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if variant_layer:
                    # variant modules house their own engines; their
                    # kernel/reference calls are the implementation
                    continue
                callee = dotted_name(node.func).rsplit(".", 1)[-1]
                if callee in _ENGINE_ENTRY_POINTS:
                    yield (node,
                           f"direct call to engine entry point {callee}(); "
                           "route through repro.backends (decompose / "
                           "core_peel / ...) so backend= and workers= "
                           "stay uniform")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                params = {arg.arg for arg in
                          [*node.args.posonlyargs, *node.args.args,
                           *node.args.kwonlyargs]}
                positional = [*node.args.posonlyargs, *node.args.args]
                if (variant_layer and positional
                        and positional[0].arg == "graph"
                        and not {"backend", "workers"} <= params):
                    yield (node,
                           f"variant entry point {node.name}() must accept "
                           "backend= and workers= together; the variant "
                           "modules are dispatch surface (route through "
                           "repro.backends)")
                    continue
                if ("backend" in params) != ("workers" in params):
                    missing = "workers" if "backend" in params else "backend"
                    yield (node,
                           f"public entry point {node.name}() takes "
                           f"{'backend' if missing == 'workers' else 'workers'}= "
                           f"but not {missing}=; backend-aware entry points "
                           "accept both so callers can select an engine "
                           "and a worker count uniformly")
