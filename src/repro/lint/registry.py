"""Rule registry and the core datatypes shared by every lint rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a location plus the rule that fired there."""

    path: str
    line: int
    col: int
    code: str
    name: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.name}] {self.message}")


@dataclass
class Module:
    """A parsed source file handed to each rule.

    ``relpath`` is the package-relative posix path (``repro/serve/server.py``)
    that rules use for scoping; ``path`` is whatever the caller passed in and
    is what violations report.
    """

    path: str
    relpath: str
    source: str
    tree: ast.Module
    disabled: dict[int, set[str]] = field(default_factory=dict)
    disabled_file: set[str] = field(default_factory=set)

    def suppressed(self, code_or_name: tuple[str, str], line: int) -> bool:
        for token in code_or_name + ("all",):
            if token in self.disabled_file:
                return True
            if token in self.disabled.get(line, ()):
                return True
        return False


class Rule:
    """Base class for a lint rule.

    Subclasses set ``code`` (stable identifier, e.g. ``RL002``), ``name``
    (the human-facing slug used in pragmas and ``--select``), and implement
    :meth:`check` yielding ``(node_or_location, message)`` findings.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: posix path prefixes (relative to the package root, e.g. ``repro/serve/``)
    #: this rule is limited to; empty means the whole tree.
    scope: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.scope:
            return True
        return any(relpath == prefix or relpath.startswith(prefix)
                   for prefix in self.scope)

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError

    def run(self, module: Module) -> Iterator[Violation]:
        if not self.applies_to(module.relpath):
            return
        for node, message in self.check(module):
            violation = self._emit(module, node, message)
            if violation is not None:
                yield violation

    def _emit(self, module: Module, node: ast.AST,
              message: str) -> Violation | None:
        """Build a Violation unless a pragma on the node's span kills it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        # a pragma anywhere on the node's line span suppresses it, so
        # multi-line calls can carry the comment on any of their lines;
        # for def/class findings the span is just the signature, not
        # the whole body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.ExceptHandler)) \
                and node.body:
            end = node.body[0].lineno - 1
        else:
            end = getattr(node, "end_lineno", None) or line
        if any(module.suppressed((self.code, self.name), at)
               for at in range(line, end + 1)):
            return None
        return Violation(path=module.path, line=line, col=col,
                         code=self.code, name=self.name, message=message)


class ProjectRule(Rule):
    """A rule that analyses the whole project at once.

    Subclasses implement :meth:`check_project` against a
    :class:`repro.lint.project.Project` and yield
    ``(module, node, message)`` findings; scoping and pragma suppression
    apply per finding exactly as for per-file rules.  ``lint_source``
    wraps its single file in a one-module project, so project rules run
    (with project-local visibility) in both entry points.
    """

    def check(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        return iter(())

    def check_project(self, project) -> Iterator[tuple[Module, ast.AST, str]]:
        raise NotImplementedError

    def run_project(self, project) -> Iterator[Violation]:
        for module, node, message in self.check_project(project):
            if not self.applies_to(module.relpath):
                continue
            violation = self._emit(module, node, message)
            if violation is not None:
                yield violation


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by code and name."""
    rule = cls()
    if not rule.code or not rule.name:
        raise ValueError(f"{cls.__name__} must define code and name")
    for key in (rule.code, rule.name):
        if key in _REGISTRY:
            raise ValueError(f"duplicate lint rule key {key!r}")
    _REGISTRY[rule.code] = rule
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> list[Rule]:
    seen: dict[str, Rule] = {}
    for rule in _REGISTRY.values():
        seen.setdefault(rule.code, rule)
    return sorted(seen.values(), key=lambda rule: rule.code)


def get_rule(key: str) -> Rule:
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted({r.code for r in _REGISTRY.values()}
                                 | {r.name for r in _REGISTRY.values()}))
        raise KeyError(f"unknown lint rule {key!r} (known: {known})") from None


def select_rules(select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None) -> list[Rule]:
    rules = ([get_rule(key) for key in select] if select is not None
             else all_rules())
    if ignore:
        dropped = {get_rule(key).code for key in ignore}
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


# ---------------------------------------------------------------- helpers
# Small AST utilities shared by several rules.

def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def base_name(node: ast.AST) -> str:
    """The root Name of a Name/Attribute/Subscript chain, '' otherwise."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


def walk_skipping(node: ast.AST,
                  skip: Callable[[ast.AST], bool]) -> Iterator[ast.AST]:
    """Like ast.walk but prunes subtrees where ``skip(child)`` is true."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if skip(child):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
