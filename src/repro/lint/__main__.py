"""``python -m repro.lint`` == ``repro-lint``."""

from repro.lint.cli import main

raise SystemExit(main())
