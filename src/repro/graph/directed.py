"""Directed graph substrate for the D-core variant.

The D-core literature defines (in, out) core numbers over a simple
directed graph; :class:`DirectedGraph` is that substrate in the flat
layout the generic peel kernel consumes — successor and predecessor
adjacency as CSR ``(indptr, indices)`` array pairs.  Duplicate arcs
collapse and self-loops are dropped, matching the set-based reference
engine.  This is the graph-first handle the redesigned
``directed_core_numbers(graph)`` entry point takes (the old
``(n, arcs)`` spelling survives as a deprecation shim).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InvalidGraphError

__all__ = ["DirectedGraph"]


class DirectedGraph:
    """Simple directed graph over vertices ``0..n-1`` in flat CSR arrays."""

    __slots__ = ("n", "name", "_arcs", "_sptr", "_sidx", "_pptr", "_pidx")

    def __init__(self, n: int, arcs: Iterable[tuple[int, int]],
                 name: str = "directed"):
        if n < 0:
            raise InvalidGraphError(f"vertex count must be >= 0, got {n}")
        self.n = n
        self.name = name
        seen: set[tuple[int, int]] = set()
        for u, v in arcs:
            if u == v:
                continue
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(
                    f"arc ({u}, {v}) out of range for n={n}")
            seen.add((u, v))
        ordered = sorted(seen)
        self._arcs = ordered
        out_deg = [0] * n
        in_deg = [0] * n
        for u, v in ordered:
            out_deg[u] += 1
            in_deg[v] += 1
        self._sptr = _prefix(out_deg)
        self._pptr = _prefix(in_deg)
        sidx = [0] * len(ordered)
        pidx = [0] * len(ordered)
        scur = self._sptr[:n]
        pcur = self._pptr[:n]
        for u, v in ordered:
            sidx[scur[u]] = v
            scur[u] += 1
            pidx[pcur[v]] = u
            pcur[v] += 1
        self._sidx = sidx
        self._pidx = pidx

    @property
    def m(self) -> int:
        """Number of distinct arcs."""
        return len(self._arcs)

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Distinct arcs in lexicographic order."""
        return iter(self._arcs)

    def succ_arrays(self) -> tuple[list[int], list[int]]:
        """Successor adjacency as ``(indptr, indices)`` flat arrays."""
        return self._sptr, self._sidx

    def pred_arrays(self) -> tuple[list[int], list[int]]:
        """Predecessor adjacency as ``(indptr, indices)`` flat arrays."""
        return self._pptr, self._pidx

    def out_degrees(self) -> list[int]:
        sptr = self._sptr
        return [sptr[v + 1] - sptr[v] for v in range(self.n)]

    def in_degrees(self) -> list[int]:
        pptr = self._pptr
        return [pptr[v + 1] - pptr[v] for v in range(self.n)]

    def __repr__(self) -> str:
        return (f"DirectedGraph(name={self.name!r}, n={self.n}, "
                f"m={self.m})")


def _prefix(degrees: list[int]) -> list[int]:
    out = [0] * (len(degrees) + 1)
    for v, d in enumerate(degrees):
        out[v + 1] = out[v] + d
    return out
