"""Connectivity utilities shared by traversal algorithms and tests."""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.graph.adjacency import Graph

__all__ = [
    "bfs_order",
    "connected_components",
    "largest_component",
    "is_connected",
    "components_from_adjacency",
]


def bfs_order(graph: Graph, start: int) -> list[int]:
    """Vertices reachable from ``start`` in BFS discovery order."""
    seen = {start}
    order = [start]
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def connected_components(graph: Graph) -> list[list[int]]:
    """All connected components, each as a sorted vertex list.

    Components are ordered by their smallest vertex.
    """
    seen = [False] * graph.n
    components: list[list[int]] = []
    for s in range(graph.n):
        if seen[s]:
            continue
        seen[s] = True
        comp = [s]
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        components.append(sorted(comp))
    return components


def largest_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest connected component (relabelled)."""
    components = connected_components(graph)
    if not components:
        return Graph.empty(0, name=graph.name)
    biggest = max(components, key=len)
    return graph.subgraph(biggest)


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n == 0:
        return True
    return len(bfs_order(graph, 0)) == graph.n


def components_from_adjacency(
    num_items: int,
    neighbors: Callable[[int], Iterable[int]],
    seeds: Iterable[int] | None = None,
) -> list[list[int]]:
    """Connected components of an implicit graph given by a neighbour callback.

    Used to compute triangle-connected components and other higher-order
    connectivities where materialising the adjacency would be wasteful.
    ``seeds`` restricts the search to components touching those items.
    """
    seen = [False] * num_items
    components: list[list[int]] = []
    for s in (range(num_items) if seeds is None else seeds):
        if seen[s]:
            continue
        seen[s] = True
        comp = [s]
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        components.append(sorted(comp))
    return components
