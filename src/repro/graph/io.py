"""Graph loading and saving.

Formats:

* **edge list** — one ``u v`` pair per line; ``#`` and ``%`` comment lines are
  skipped (this covers SNAP's ``.txt`` dumps and most network repositories);
* **Matrix Market** (``.mtx``) — symmetric pattern/coordinate matrices, as
  distributed by the UF Sparse Matrix Collection;
* **JSON** — a small self-describing format used by the examples.

All loaders relabel arbitrary (possibly sparse, possibly string) vertex ids to
the dense ``0..n-1`` range and drop self loops and duplicate edges, matching
the preprocessing the paper applies (directions ignored, simple graphs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph

__all__ = [
    "dedup_edges",
    "load_edge_list",
    "save_edge_list",
    "load_mtx",
    "load_json",
    "save_json",
    "load_graph",
    "relabel_edges",
]

_COMMENT_PREFIXES = ("#", "%")


def dedup_edges(edges: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Drop duplicate undirected edges, including reversed repeats.

    The first-seen orientation of each edge is kept, in input order.
    :class:`Graph` and :class:`~repro.graph.csr.CSRGraph` dedup on
    construction anyway; this is for consumers of raw edge lists (direct
    CSR array construction, edge counting) that bypass them.
    """
    seen: set[tuple[int, int]] = set()
    out: list[tuple[int, int]] = []
    for u, v in edges:
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        out.append((u, v))
    return out


def relabel_edges(raw_edges: Iterable[tuple[object, object]]) -> tuple[int, list[tuple[int, int]]]:
    """Relabel arbitrary hashable endpoints to dense ints.

    Returns ``(n, edges)``; ids are assigned in first-seen order.  Self
    loops and duplicate edges — including reversed duplicates such as
    ``(7, 5)`` after ``(5, 7)`` — are dropped, so ``len(edges)`` is the
    true undirected edge count.
    """
    ids: dict[object, int] = {}
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for raw_u, raw_v in raw_edges:
        if raw_u == raw_v:
            continue
        u = ids.setdefault(raw_u, len(ids))
        v = ids.setdefault(raw_v, len(ids))
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        edges.append((u, v))
    return len(ids), edges


def load_edge_list(path: str | Path, name: str = "") -> Graph:
    """Load a whitespace-separated edge list file."""
    path = Path(path)
    raw: list[tuple[object, object]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            raw.append((parts[0], parts[1]))
    n, edges = relabel_edges(raw)
    return Graph(n, edges, name=name or path.stem)


def save_edge_list(graph: Graph, path: str | Path) -> None:
    """Write a graph as a ``u v`` edge list with a header comment."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(f"# {graph.name or 'graph'}: n={graph.n} m={graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def load_mtx(path: str | Path, name: str = "") -> Graph:
    """Load a Matrix Market coordinate file as an undirected graph."""
    path = Path(path)
    with open(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket header")
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) < 2:
            raise GraphFormatError(f"{path}: bad dimensions line {line!r}")
        rows = int(dims[0])
        cols = int(dims[1])
        n = max(rows, cols)
        edges: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            u, v = int(parts[0]) - 1, int(parts[1]) - 1
            if u == v:
                continue
            if not (0 <= u < n and 0 <= v < n):
                raise GraphFormatError(f"{path}:{lineno}: entry ({u + 1}, {v + 1}) out of range")
            # symmetric matrices list both (i, j) and (j, i); keep one
            key = (u, v) if u < v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            edges.append((u, v))
    return Graph(n, edges, name=name or path.stem)


def load_json(path: str | Path) -> Graph:
    """Load the library's JSON graph format (``{"n":.., "edges": [[u,v],..]}``)."""
    path = Path(path)
    with open(path) as handle:
        payload = json.load(handle)
    try:
        n = int(payload["n"])
        edges = [(int(u), int(v)) for u, v in payload["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphFormatError(f"{path}: malformed JSON graph: {exc}") from exc
    return Graph(n, edges, name=str(payload.get("name", path.stem)))


def save_json(graph: Graph, path: str | Path) -> None:
    """Write a graph in the library's JSON format."""
    payload = {"name": graph.name, "n": graph.n, "edges": [list(e) for e in graph.edges()]}
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_graph(path: str | Path) -> Graph:
    """Load a graph, dispatching on the file extension."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".mtx":
        return load_mtx(path)
    if suffix == ".json":
        return load_json(path)
    return load_edge_list(path)
