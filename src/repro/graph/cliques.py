"""Clique enumeration: triangles, four-cliques and generic r-cliques.

Peeling on (2,3) and (3,4) nuclei needs (a) every triangle / four-clique
enumerated exactly once to compute initial clique degrees, and (b) fast
"cofaces of this cell" queries during peeling, which the views in
:mod:`repro.core.views` answer with common-neighbour intersections.

Enumeration uses the standard degeneracy-style trick: orient every edge from
the lower-ranked endpoint to the higher-ranked one under a total order that
sorts by (degree, id).  Forward adjacencies are small even on skewed graphs,
and each clique is produced exactly once as an ordered tuple.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph

__all__ = [
    "degree_order",
    "forward_adjacency",
    "triangles",
    "triangle_count",
    "edge_triangle_counts",
    "four_cliques",
    "four_clique_count",
    "triangle_k4_counts",
    "cliques",
    "clique_count",
    "count_cliques_per_vertex",
]


def degree_order(graph: Graph) -> list[int]:
    """Rank of each vertex under the (degree, id) total order.

    ``rank[u] < rank[v]`` means ``u`` precedes ``v``; the order is the usual
    low-degree-first orientation order for clique counting.
    """
    order = sorted(graph.vertices(), key=lambda v: (graph.degree(v), v))
    rank = [0] * graph.n
    for position, v in enumerate(order):
        rank[v] = position
    return rank


def forward_adjacency(graph: Graph, rank: list[int] | None = None) -> list[list[int]]:
    """Neighbours of each vertex that come later in the (degree, id) order.

    Each list is sorted by rank so that intersections of forward lists can be
    done with merge scans.
    """
    if rank is None:
        rank = degree_order(graph)
    fwd: list[list[int]] = [[] for _ in range(graph.n)]
    for u in graph.vertices():
        ru = rank[u]
        fwd[u] = sorted((v for v in graph.neighbors(u) if rank[v] > ru),
                        key=lambda v: rank[v])
    return fwd


def triangles(graph: Graph) -> Iterator[tuple[int, int, int]]:
    """Enumerate each triangle once as a tuple sorted by vertex id."""
    rank = degree_order(graph)
    fwd = forward_adjacency(graph, rank)
    for u in graph.vertices():
        fu = fwd[u]
        for i, v in enumerate(fu):
            fv_set = graph.neighbor_set(v)
            for w in fu[i + 1:]:
                if w in fv_set:
                    yield tuple(sorted((u, v, w)))  # type: ignore[misc]


def triangle_count(graph: Graph) -> int:
    """Total number of triangles."""
    return sum(1 for _ in triangles(graph))


def edge_triangle_counts(graph: Graph) -> list[int]:
    """Number of triangles containing each edge, indexed by edge id.

    This is the initial ω₃ degree for (2,3) peeling.
    """
    index = graph.edge_index
    counts = [0] * len(index)
    for a, b, c in triangles(graph):
        counts[index.id_of(a, b)] += 1
        counts[index.id_of(a, c)] += 1
        counts[index.id_of(b, c)] += 1
    return counts


def four_cliques(graph: Graph) -> Iterator[tuple[int, int, int, int]]:
    """Enumerate each four-clique once as a tuple sorted by vertex id."""
    rank = degree_order(graph)
    fwd = forward_adjacency(graph, rank)
    for u in graph.vertices():
        fu = fwd[u]
        for i, v in enumerate(fu):
            fv_set = graph.neighbor_set(v)
            common_uv = [w for w in fu[i + 1:] if w in fv_set]
            for j, w in enumerate(common_uv):
                fw_set = graph.neighbor_set(w)
                for x in common_uv[j + 1:]:
                    if x in fw_set:
                        yield tuple(sorted((u, v, w, x)))  # type: ignore[misc]


def four_clique_count(graph: Graph) -> int:
    """Total number of four-cliques."""
    return sum(1 for _ in four_cliques(graph))


def triangle_k4_counts(graph: Graph) -> tuple[dict[tuple[int, int, int], int], list[int]]:
    """Triangle ids plus the number of four-cliques containing each triangle.

    Returns ``(triangle_id, counts)`` where ``triangle_id`` maps each sorted
    triangle tuple to a dense id and ``counts[tid]`` is the initial ω₄ degree
    for (3,4) peeling.
    """
    triangle_id: dict[tuple[int, int, int], int] = {}
    for tri in triangles(graph):
        triangle_id[tri] = len(triangle_id)
    counts = [0] * len(triangle_id)
    for a, b, c, d in four_cliques(graph):
        counts[triangle_id[(a, b, c)]] += 1
        counts[triangle_id[(a, b, d)]] += 1
        counts[triangle_id[(a, c, d)]] += 1
        counts[triangle_id[(b, c, d)]] += 1
    return triangle_id, counts


def cliques(graph: Graph, r: int) -> Iterator[tuple[int, ...]]:
    """Enumerate each ``r``-clique once as a tuple sorted by vertex id.

    Specialised paths handle r ≤ 2; larger cliques extend ordered partial
    cliques one forward-neighbour at a time.  Intended for the generic (r,s)
    view and for tests; the hot (2,3)/(3,4) paths use the specialised
    functions above.
    """
    if r < 1:
        raise InvalidParameterError(f"clique size must be >= 1, got {r}")
    if r == 1:
        for v in graph.vertices():
            yield (v,)
        return
    if r == 2:
        yield from graph.edges()
        return
    rank = degree_order(graph)
    fwd = forward_adjacency(graph, rank)

    def extend(partial: list[int], candidates: list[int]) -> Iterator[tuple[int, ...]]:
        if len(partial) == r:
            yield tuple(sorted(partial))
            return
        for i, v in enumerate(candidates):
            v_adj = graph.neighbor_set(v)
            narrowed = [w for w in candidates[i + 1:] if w in v_adj]
            yield from extend(partial + [v], narrowed)

    for u in graph.vertices():
        yield from extend([u], fwd[u])


def clique_count(graph: Graph, r: int) -> int:
    """Total number of ``r``-cliques."""
    return sum(1 for _ in cliques(graph, r))


def count_cliques_per_vertex(graph: Graph, r: int) -> list[int]:
    """Number of ``r``-cliques containing each vertex (ω_r(v) in the paper)."""
    counts = [0] * graph.n
    for clique in cliques(graph, r):
        for v in clique:
            counts[v] += 1
    return counts
