"""Interoperability with networkx, numpy and scipy.sparse.

The library itself depends only on numpy; these adapters are for users who
already hold graphs in the scientific-Python ecosystem.  networkx and
scipy are imported lazily so the core package works without them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidGraphError
from repro.graph.adjacency import Graph

__all__ = [
    "to_networkx",
    "from_networkx",
    "to_adjacency_matrix",
    "from_adjacency_matrix",
    "to_scipy_sparse",
    "from_scipy_sparse",
]


def to_networkx(graph: Graph):
    """Convert to ``networkx.Graph`` (isolated vertices preserved)."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(graph.n))
    out.add_edges_from(graph.edges())
    return out


def from_networkx(nx_graph) -> Graph:
    """Convert from any networkx graph (labels relabelled to 0..n-1).

    Directed graphs are symmetrised; self loops dropped — the paper's
    preprocessing.
    """
    nodes = list(nx_graph.nodes())
    ids = {v: i for i, v in enumerate(nodes)}
    edges = [(ids[u], ids[v]) for u, v in nx_graph.edges() if u != v]
    return Graph(len(nodes), edges, name=str(nx_graph.name or ""))


def to_adjacency_matrix(graph: Graph) -> np.ndarray:
    """Dense symmetric 0/1 adjacency matrix (small graphs only)."""
    matrix = np.zeros((graph.n, graph.n), dtype=np.int8)
    for u, v in graph.edges():
        matrix[u, v] = matrix[v, u] = 1
    return matrix


def from_adjacency_matrix(matrix: np.ndarray, name: str = "") -> Graph:
    """Build a graph from a square 0/1 matrix (symmetrised, loops dropped)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InvalidGraphError(f"adjacency matrix must be square, "
                                f"got shape {matrix.shape}")
    rows, cols = np.nonzero(matrix)
    edges = {(int(u), int(v)) if u < v else (int(v), int(u))
             for u, v in zip(rows, cols, strict=True) if u != v}
    return Graph(matrix.shape[0], sorted(edges), name=name)


def to_scipy_sparse(graph: Graph):
    """Symmetric CSR adjacency matrix."""
    from scipy.sparse import csr_matrix

    us, vs = [], []
    for u, v in graph.edges():
        us.extend((u, v))
        vs.extend((v, u))
    data = np.ones(len(us), dtype=np.int8)
    return csr_matrix((data, (us, vs)), shape=(graph.n, graph.n))


def from_scipy_sparse(matrix, name: str = "") -> Graph:
    """Build a graph from any scipy sparse matrix (symmetrised)."""
    coo = matrix.tocoo()
    if coo.shape[0] != coo.shape[1]:
        raise InvalidGraphError(f"sparse matrix must be square, "
                                f"got shape {coo.shape}")
    seen = set()
    for u, v in zip(coo.row, coo.col, strict=True):
        if u != v:
            seen.add((int(u), int(v)) if u < v else (int(v), int(u)))
    return Graph(coo.shape[0], sorted(seen), name=name)
