"""Flat compressed-sparse-row (CSR) graph: the peeling-engine backend.

:class:`~repro.graph.adjacency.Graph` keeps one Python ``set`` plus one
``list`` per vertex, which is convenient but costs a pointer chase and a
small-object allocation on every step of the peel inner loop.  This module
stores the whole adjacency in four flat typed arrays instead:

* ``indptr[v] .. indptr[v+1]`` delimits the neighbour slots of ``v``;
* ``indices[p]`` is the neighbour in slot ``p`` (sorted ascending);
* ``eids[p]`` is the dense undirected edge id of slot ``p`` — so a merge
  scan over two adjacency runs yields *edge ids* directly, with no hash
  lookups (this is what makes the (2,3) peel fast);
* ``esrc[e] / etgt[e]`` are the endpoints of edge ``e`` (``esrc < etgt``).

Edge ids are assigned in lexicographic endpoint order, exactly matching
:class:`~repro.graph.adjacency.EdgeIndex`, so λ arrays computed on either
backend are comparable element-for-element.

Storage is ``array('i')`` (32-bit, C-contiguous).  Construction has an
optional numpy fast path (dedup + CSR fill fully vectorised); the purely
sequential peel loops instead use :meth:`CSRGraph.hot_arrays`, which caches
plain-``list`` copies — CPython indexes a list of cached references faster
than it can re-box ints out of a typed array.

Also here: the CSR merge-intersection enumerators (edge triangle supports,
triangles, four-clique counts) that the (2,3)/(3,4) cell views build on.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.errors import InvalidGraphError
from repro.graph.adjacency import Graph, normalize_edge

try:  # optional fast path; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = [
    "CSRGraph",
    "HAVE_NUMPY",
    "csr_arrays_int64",
    "csr_edge_support",
    "csr_k4_triangle_ids",
    "csr_triangle_edge_ids",
    "csr_forward_structure",
    "csr_triangles",
    "csr_triangle_k4_counts",
    "fill_incidence",
    "k4_pair_kernel",
    "triangle_pair_kernel",
    "triangle_run_pointers",
    "triangle_triples",
]

#: whether the optional numpy fast paths are available in this environment
HAVE_NUMPY = _np is not None

#: below this many input pairs the numpy round-trip costs more than it saves
_NUMPY_MIN_EDGES = 512

#: the int-key index algebra encodes a vertex triple as (u·n + v)·n + w,
#: which must stay below 2^63; graphs past this bound take the python path
_MAX_KEYED_N = 1 << 21


def _zeros(count: int) -> array:
    """A zero-filled ``array('i')`` of the given length."""
    return array("i", bytes(4 * count))


def _from_numpy(arr) -> array:
    """Convert an int numpy array to ``array('i')`` without a Python loop."""
    out = array("i")
    out.frombytes(arr.astype(_np.int32, copy=False).tobytes())
    return out


class CSRGraph:
    """An immutable, undirected, simple graph in CSR layout.

    Mirrors the read API of :class:`~repro.graph.adjacency.Graph` (``n``,
    ``m``, ``degree``, ``neighbors``, ``neighbor_set``, ``has_edge``,
    ``edges``, ``common_neighbors``, ``edge_index``…) so the generic cell
    views and clique enumerators accept either representation; the peeling
    hot paths in :mod:`repro.core.csr_peel` bypass that API and walk the
    arrays directly.
    """

    __slots__ = ("indptr", "indices", "eids", "esrc", "etgt", "name",
                 "_n", "_hot", "_edge_index")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], name: str = "",
                 use_numpy: bool | None = None):
        if n < 0:
            raise InvalidGraphError(f"vertex count must be non-negative, got {n}")
        edge_list = list(edges)
        self._n = n
        self.name = name
        self._hot = None
        self._edge_index = None
        numpy_wanted = (_np is not None if use_numpy is None else use_numpy)
        if use_numpy and _np is None:
            raise InvalidGraphError("numpy fast path requested but numpy is missing")
        if numpy_wanted and _np is not None and len(edge_list) >= (
                0 if use_numpy else _NUMPY_MIN_EDGES):
            self._build_numpy(n, edge_list)
        else:
            self._build_python(n, edge_list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_python(self, n: int, edge_list: list[tuple[int, int]]) -> None:
        unique: set[tuple[int, int]] = set()
        for u, v in edge_list:
            if u == v:
                raise InvalidGraphError(f"self loop on vertex {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(f"edge ({u}, {v}) out of range for n={n}")
            unique.add(normalize_edge(u, v))
        ordered = sorted(unique)
        m = len(ordered)
        indptr = _zeros(n + 1)
        for u, v in ordered:
            indptr[u + 1] += 1
            indptr[v + 1] += 1
        for v in range(n):
            indptr[v + 1] += indptr[v]
        indices = _zeros(2 * m)
        eids = _zeros(2 * m)
        esrc = _zeros(m)
        etgt = _zeros(m)
        cursor = indptr.tolist()
        for eid, (u, v) in enumerate(ordered):
            # lexicographic edge order makes each adjacency run come out
            # sorted: all smaller-id neighbours of x are written (in order)
            # before any larger-id ones.
            p = cursor[u]
            indices[p] = v
            eids[p] = eid
            cursor[u] = p + 1
            p = cursor[v]
            indices[p] = u
            eids[p] = eid
            cursor[v] = p + 1
            esrc[eid] = u
            etgt[eid] = v
        self.indptr, self.indices, self.eids = indptr, indices, eids
        self.esrc, self.etgt = esrc, etgt

    def _build_numpy(self, n: int, edge_list: list[tuple[int, int]]) -> None:
        if not edge_list:
            self._build_python(n, edge_list)
            return
        pairs = _np.asarray(edge_list, dtype=_np.int64).reshape(-1, 2)
        if pairs.min() < 0 or pairs.max() >= n:
            bad = pairs[(pairs.min(axis=1) < 0) | (pairs.max(axis=1) >= n)][0]
            raise InvalidGraphError(
                f"edge ({bad[0]}, {bad[1]}) out of range for n={n}")
        if (pairs[:, 0] == pairs[:, 1]).any():
            loop = pairs[pairs[:, 0] == pairs[:, 1]][0, 0]
            raise InvalidGraphError(f"self loop on vertex {loop} is not allowed")
        lo = _np.minimum(pairs[:, 0], pairs[:, 1])
        hi = _np.maximum(pairs[:, 0], pairs[:, 1])
        keys = _np.unique(lo * n + hi)  # dedup + lexicographic sort in one shot
        src = keys // n
        tgt = keys % n
        m = len(keys)
        eid = _np.arange(m, dtype=_np.int64)
        both_src = _np.concatenate([src, tgt])
        both_tgt = _np.concatenate([tgt, src])
        both_eid = _np.concatenate([eid, eid])
        order = _np.lexsort((both_tgt, both_src))
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(both_src, minlength=n), out=indptr[1:])
        self.indptr = _from_numpy(indptr)
        self.indices = _from_numpy(both_tgt[order])
        self.eids = _from_numpy(both_eid[order])
        self.esrc = _from_numpy(src)
        self.etgt = _from_numpy(tgt)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]], n: int | None = None,
                   name: str = "", use_numpy: bool | None = None) -> "CSRGraph":
        """Build from an edge iterable, inferring ``n`` when omitted."""
        edge_list = list(edges)
        if n is None:
            n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(n, edge_list, name=name, use_numpy=use_numpy)

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert an object-backend :class:`Graph` (already deduplicated and
        sorted, so this skips normalisation entirely)."""
        self = cls.__new__(cls)
        n = graph.n
        m = graph.m
        self._n = n
        self.name = graph.name
        self._hot = None
        self._edge_index = None
        indptr = _zeros(n + 1)
        indices = array("i")
        for v in range(n):
            neighbors = graph.neighbors(v)
            indptr[v + 1] = indptr[v] + len(neighbors)
            indices.extend(neighbors)
        eids = _zeros(2 * m)
        esrc = _zeros(m)
        etgt = _zeros(m)
        cursor = indptr.tolist()
        counter = 0
        for u in range(n):
            for p in range(cursor[u], indptr[u + 1]):
                v = indices[p]
                if v > u:
                    # the reverse slot for (v, u) is the next unclaimed
                    # smaller-id slot of v: forward scans visit u ascending
                    # and sorted adjacency keeps all of them in a prefix.
                    eids[p] = counter
                    q = cursor[v]
                    eids[q] = counter
                    cursor[v] = q + 1
                    esrc[counter] = u
                    etgt[counter] = v
                    counter += 1
        self.indptr, self.indices, self.eids = indptr, indices, eids
        self.esrc, self.etgt = esrc, etgt
        return self

    @classmethod
    def empty(cls, n: int = 0, name: str = "") -> "CSRGraph":
        """A CSR graph with ``n`` vertices and no edges."""
        return cls(n, [], name=name)

    # ------------------------------------------------------------------
    # basic accessors (Graph-compatible)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.esrc)

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return self.indptr[v + 1] - self.indptr[v]

    def degrees(self) -> list[int]:
        """Degrees of all vertices, indexed by vertex id."""
        indptr = self.indptr
        return [indptr[v + 1] - indptr[v] for v in range(self._n)]

    def neighbors(self, v: int):
        """Sorted neighbours of ``v`` as a flat slice (do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_set(self, v: int) -> set[int]:
        """Neighbour set of ``v`` (built on demand)."""
        return set(self.neighbors(v))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` exists (binary search)."""
        if not 0 <= u < self._n:
            return False
        lo, hi = self.indptr[u], self.indptr[u + 1]
        p = bisect_left(self.indices, v, lo, hi)
        return p < hi and self.indices[p] == v

    def edge_id(self, u: int, v: int) -> int | None:
        """Dense id of edge ``{u, v}``, or ``None`` if absent."""
        if not 0 <= u < self._n:
            return None
        lo, hi = self.indptr[u], self.indptr[u + 1]
        p = bisect_left(self.indices, v, lo, hi)
        if p < hi and self.indices[p] == v:
            return self.eids[p]
        return None

    def endpoints(self, eid: int) -> tuple[int, int]:
        """The (sorted) endpoints of edge ``eid``."""
        return self.esrc[eid], self.etgt[eid]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges once each, as sorted pairs, in lexicographic order."""
        return zip(self.esrc, self.etgt, strict=True)

    def vertices(self) -> range:
        """Iterable of all vertex ids."""
        return range(self._n)

    def common_neighbors(self, u: int, v: int) -> list[int]:
        """Sorted common neighbours of ``u`` and ``v`` (merge scan)."""
        indptr, indices, _ = self.hot_arrays()
        out: list[int] = []
        i, i_end = indptr[u], indptr[u + 1]
        j, j_end = indptr[v], indptr[v + 1]
        while i < i_end and j < j_end:
            a = indices[i]
            b = indices[j]
            if a < b:
                i += 1
            elif b < a:
                j += 1
            else:
                out.append(a)
                i += 1
                j += 1
        return out

    def common_neighbor_count(self, u: int, v: int) -> int:
        """Number of common neighbours of ``u`` and ``v``."""
        return len(self.common_neighbors(u, v))

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def hot_arrays(self) -> tuple[list[int], list[int], list[int]]:
        """``(indptr, indices, eids)`` as plain lists, cached.

        Sequential peels index these millions of times; lists hand back
        cached ``int`` references where ``array('i')`` would re-box a fresh
        object per access.  Costs one extra O(n + m) copy, paid once.
        """
        if self._hot is None:
            self._hot = (self.indptr.tolist(), self.indices.tolist(),
                         self.eids.tolist())
        return self._hot

    @property
    def edge_index(self):
        """Adapter matching :class:`~repro.graph.adjacency.EdgeIndex`."""
        if self._edge_index is None:
            self._edge_index = _CSREdgeIndex(self)
        return self._edge_index

    def to_object(self) -> Graph:
        """Convert back to the object (set/list) representation."""
        return Graph(self._n, list(self.edges()), name=self.name)

    def subgraph(self, vertices: Iterable[int], relabel: bool = True) -> Graph:
        """Induced subgraph, as an object :class:`Graph` (reporting path)."""
        return self.to_object().subgraph(vertices, relabel=relabel)

    def edge_subgraph(self, edge_ids: Iterable[int],
                      relabel: bool = False) -> Graph:
        """Subgraph made of the given edge ids, as an object :class:`Graph`
        (edge ids are lexicographic on both representations)."""
        return self.to_object().edge_subgraph(edge_ids, relabel=relabel)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<CSRGraph{label} n={self._n} m={self.m}>"


class _CSREdgeIndex:
    """Duck-typed :class:`EdgeIndex` over the CSR arrays (no dict)."""

    __slots__ = ("_graph",)

    def __init__(self, graph: CSRGraph):
        self._graph = graph

    @property
    def source(self):
        return self._graph.esrc

    @property
    def target(self):
        return self._graph.etgt

    def __len__(self) -> int:
        return self._graph.m

    def id_of(self, u: int, v: int) -> int:
        eid = self._graph.edge_id(u, v)
        if eid is None:
            raise KeyError(normalize_edge(u, v))
        return eid

    def get(self, u: int, v: int) -> int | None:
        return self._graph.edge_id(u, v)

    def endpoints(self, eid: int) -> tuple[int, int]:
        return self._graph.endpoints(eid)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return self._graph.edges()


# ---------------------------------------------------------------------------
# merge-intersection enumerators
# ---------------------------------------------------------------------------
def _suffix_start(indices: list[int], lo: int, hi: int, v: int) -> int:
    """First slot in ``indices[lo:hi]`` holding a neighbour id > ``v``."""
    return bisect_right(indices, v, lo, hi)


#: below this many edges the numpy set-up cost beats its vectorisation gain
_NUMPY_MIN_TRIANGLE_EDGES = 256


def csr_triangle_edge_ids(csr: CSRGraph):
    """All triangles as three aligned numpy edge-id arrays ``(e1, e2, e3)``.

    Fully vectorised: orient every edge toward the (degree, id)-larger
    endpoint, generate all wedge pairs inside each forward run with
    ``repeat``/``cumsum`` index algebra, and close them with one
    ``searchsorted`` against the lexicographic edge-key array.  Requires
    numpy (callers check :data:`HAVE_NUMPY`).
    """
    n, m = csr.n, csr.m
    if m == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty, empty
    fwd = csr_forward_structure(csr)
    fptr, fdst, feid, fkeys = (fwd["fptr"], fwd["fdst"], fwd["feid"],
                               fwd["fkeys"])
    # chunk the kernel over rank ranges so the transient pair arrays stay
    # bounded on dense graphs
    counts = _np.diff(fptr)
    pair_weights = counts * (counts - 1) // 2
    cuts = _chunk_starts(pair_weights)
    return _concat_columns(
        [triangle_pair_kernel(fptr, fdst, feid, fkeys, n, lo, hi)
         for lo, hi in zip(cuts[:-1], cuts[1:], strict=True)], 3)


def csr_edge_support(csr: CSRGraph, use_numpy: bool | None = None) -> list[int]:
    """Triangles containing each edge, indexed by edge id (initial ω₃).

    With numpy present (and the graph non-trivial) the count is one
    ``bincount`` over :func:`csr_triangle_edge_ids`.  The fallback finds
    each triangle ``u < v < w`` once from its lowest edge ``(u, v)`` by
    intersecting the two suffix runs ``> v``: the shorter run is scanned,
    the longer bisected (runs are sorted, so the search window only ever
    shrinks), and the aligned ``eids`` array turns every match into the
    three edge ids with zero hash lookups.
    """
    if use_numpy is None:
        # the vectorised listing needs the real typed arrays; duck-typed
        # CSR layouts (the disk backend) take the scalar fallback
        use_numpy = (_np is not None and csr.m >= _NUMPY_MIN_TRIANGLE_EDGES
                     and isinstance(csr, CSRGraph))
    if use_numpy:
        if _np is None:
            raise InvalidGraphError("numpy fast path requested but numpy is missing")
        e1, e2, e3 = csr_triangle_edge_ids(csr)
        return _np.bincount(_np.concatenate([e1, e2, e3]),
                            minlength=csr.m).tolist()
    indptr, indices, eids = csr.hot_arrays()
    bisect = bisect_left
    support = [0] * csr.m
    for u in range(csr.n):
        u_end = indptr[u + 1]
        pu = _suffix_start(indices, indptr[u], u_end, u)
        while pu < u_end:
            v = indices[pu]
            e_uv = eids[pu]
            i = pu + 1  # neighbours of u beyond v
            j = _suffix_start(indices, indptr[v], indptr[v + 1], v)
            j_end = indptr[v + 1]
            if u_end - i <= j_end - j:
                scan_lo, scan_hi = i, u_end
                look_lo, look_hi = j, j_end
            else:
                scan_lo, scan_hi = j, j_end
                look_lo, look_hi = i, u_end
            for p in range(scan_lo, scan_hi):
                w = indices[p]
                q = bisect(indices, w, look_lo, look_hi)
                if q < look_hi and indices[q] == w:  # triangle (u, v, w)
                    support[e_uv] += 1
                    support[eids[p]] += 1
                    support[eids[q]] += 1
                    look_lo = q + 1
                else:
                    look_lo = q
                if look_lo >= look_hi:
                    break
            pu += 1
    return support


def csr_triangles(csr: CSRGraph) -> Iterator[tuple[int, int, int]]:
    """Enumerate each triangle once as ``(u, v, w)`` with ``u < v < w``."""
    indptr, indices, _ = csr.hot_arrays()
    for u in range(csr.n):
        u_end = indptr[u + 1]
        pu = _suffix_start(indices, indptr[u], u_end, u)
        while pu < u_end:
            v = indices[pu]
            i = pu + 1
            j = _suffix_start(indices, indptr[v], indptr[v + 1], v)
            j_end = indptr[v + 1]
            while i < u_end and j < j_end:
                a = indices[i]
                b = indices[j]
                if a < b:
                    i += 1
                elif b < a:
                    j += 1
                else:
                    yield (u, v, a)
                    i += 1
                    j += 1
            pu += 1


def csr_arrays_int64(csr: CSRGraph) -> dict:
    """The five CSR arrays as int64 numpy arrays (keyed by attribute name).

    This is the layout the index-algebra kernels below and the
    shared-memory workers (:mod:`repro.parallel`) operate on; int64 keeps
    every derived key (``u·n + v`` and ``(u·n + v)·n + w``) overflow-free
    for any graph the 32-bit CSR can hold.
    """
    return {
        "indptr": _np.frombuffer(csr.indptr, dtype=_np.int32).astype(_np.int64),
        "indices": _np.frombuffer(csr.indices, dtype=_np.int32).astype(_np.int64),
        "eids": _np.frombuffer(csr.eids, dtype=_np.int32).astype(_np.int64),
        "esrc": _np.frombuffer(csr.esrc, dtype=_np.int32).astype(_np.int64),
        "etgt": _np.frombuffer(csr.etgt, dtype=_np.int32).astype(_np.int64),
    }


def csr_forward_structure(csr: CSRGraph) -> dict:
    """The degree-ranked forward orientation as int64 numpy arrays.

    Every edge is oriented toward its (degree, id)-larger endpoint and the
    oriented edges are laid out CSR-style in *rank space*: slots
    ``fptr[a] .. fptr[a+1]`` hold, ascending, the forward targets ``fdst``
    (ranks) of the rank-``a`` vertex, ``feid`` the underlying lex edge ids,
    and ``keys = fsrc·n + fdst`` is ascending over all slots.  This is the
    structure :func:`triangle_pair_kernel` enumerates wedges over; hub
    vertices rank last, so forward runs — and the wedge-pair blow-up —
    stay small on skewed graphs.  Shared-memory workers attach these five
    arrays and shard the kernel by rank ranges.
    """
    n, m = csr.n, csr.m
    arrays = csr_arrays_int64(csr)
    esrc, etgt, indptr = arrays["esrc"], arrays["etgt"], arrays["indptr"]
    deg = _np.diff(indptr)
    rank = _np.empty(n, dtype=_np.int64)
    rank[_np.lexsort((_np.arange(n), deg))] = _np.arange(n)
    ru, rv = rank[esrc], rank[etgt]
    fsrc = _np.minimum(ru, rv)
    fdst = _np.maximum(ru, rv)
    order = _np.lexsort((fdst, fsrc))
    fsrc_s, fdst_s = fsrc[order], fdst[order]
    feid = _np.arange(m, dtype=_np.int64)[order]
    fptr = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(_np.bincount(fsrc_s, minlength=n), out=fptr[1:])
    return {"fptr": fptr, "fdst": fdst_s, "feid": feid,
            "fkeys": fsrc_s * n + fdst_s}


def run_slots(starts, ends):
    """Flat positions of all array slots in the given ``[start, end)``
    runs, plus the per-run counts (pure ``repeat``/``cumsum`` algebra)."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.int64), counts
    offsets = _np.concatenate(([0], _np.cumsum(counts)[:-1]))
    slots = _np.repeat(starts - offsets, counts) + _np.arange(
        total, dtype=_np.int64)
    return slots, counts


def _run_slot_pairs(starts, ends):
    """All slot pairs ``(i < j)`` within each ``[start, end)`` run.

    The shared core of the wedge and K₄-candidate enumerations: slot ``s``
    pairs with exactly the later slots of its own run.  Returns the two
    aligned position arrays ``(idx_i, idx_j)`` (empty when no run holds
    two slots).
    """
    slots, counts = run_slots(starts, ends)
    empty = _np.empty(0, dtype=_np.int64)
    if len(slots) == 0:
        return empty, empty
    reps = _np.repeat(ends, counts) - slots - 1
    pairs = int(reps.sum())
    if pairs == 0:
        return empty, empty
    idx_i = _np.repeat(slots, reps)
    group_start = _np.concatenate(([0], _np.cumsum(reps)[:-1]))
    idx_j = idx_i + 1 + (_np.arange(pairs, dtype=_np.int64)
                         - _np.repeat(group_start, reps))
    return idx_i, idx_j


def _concat_columns(parts: list[tuple], columns: int) -> tuple:
    """Column-wise concatenation of aligned array tuples (drops empties)."""
    parts = [p for p in parts if len(p[0])]
    if not parts:
        empty = _np.empty(0, dtype=_np.int64)
        return (empty,) * columns
    if len(parts) == 1:
        return parts[0]
    return tuple(_np.concatenate([p[col] for p in parts])
                 for col in range(columns))


def fill_incidence(occ_columns, comp_rows, size: int):
    """CSR incidence from aligned occurrence columns: ``(sup, ptr, comps)``.

    ``occ_columns[j][i]`` is the cell owning occurrence ``j`` of s-clique
    ``i``; ``comp_rows[j]`` the tuple of its companion columns.  Stacking
    clique-major and stable-sorting by cell reproduces the sequential
    cursor fill slot for slot — the one incidence-layout algorithm shared
    by the (2,3)/(3,4) builders and the parallel sharded set-up (keep it
    single-sourced: the cross-backend parity contract depends on every
    builder producing this same layout discipline).
    """
    occ = _np.stack(occ_columns, axis=1).ravel()
    sup = _np.bincount(occ, minlength=size).astype(_np.int64)
    ptr = _np.zeros(size + 1, dtype=_np.int64)
    _np.cumsum(sup, out=ptr[1:])
    order = _np.argsort(occ, kind="stable")
    comps = tuple(
        _np.stack(columns, axis=1).ravel()[order]
        for columns in zip(*comp_rows, strict=True))
    return sup, ptr, comps


def triangle_pair_kernel(fptr, fdst, feid, fkeys, n: int, lo: int, hi: int):
    """Triangles whose lowest-ranked vertex has rank in ``[lo, hi)``.

    Pure index algebra over the :func:`csr_forward_structure` arrays (no
    :class:`CSRGraph` needed, so shared-memory workers can run it on
    attached arrays): all wedge pairs inside each forward run in the range
    are generated with :func:`_run_slot_pairs` and closed with one
    ``searchsorted`` against ``fkeys``.  Returns the three aligned edge-id
    arrays ``(e1, e2, e3)`` of every triangle found; consecutive ranges
    concatenate to exactly the full-range output.
    """
    idx_i, idx_j = _run_slot_pairs(fptr[lo:hi], fptr[lo + 1:hi + 1])
    if len(idx_i) == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty, empty
    probe = fdst[idx_i] * n + fdst[idx_j]
    pos = _np.minimum(_np.searchsorted(fkeys, probe), len(fkeys) - 1)
    closed = fkeys[pos] == probe
    return feid[idx_i[closed]], feid[idx_j[closed]], feid[pos[closed]]


#: per-chunk pair budget for the chunked in-process kernel drivers —
#: bounds the transient index arrays without giving up vectorisation
_KERNEL_CHUNK_PAIRS = 1 << 21


def _chunk_starts(weights) -> list[int]:
    """Boundaries splitting ``weights`` into ~equal chunks of bounded sum."""
    total = _np.concatenate(([0], _np.cumsum(weights)))
    cuts = [0]
    count = len(weights)
    while cuts[-1] < count:
        lo = cuts[-1]
        hi = int(_np.searchsorted(total, total[lo] + _KERNEL_CHUNK_PAIRS,
                                  side="left"))
        cuts.append(min(max(hi, lo + 1), count))
    return cuts


def triangle_triples(arrays: dict, e1, e2, e3):
    """Vertex triples ``(tu, tv, tw)`` of triangles given as edge-id rows.

    Each vertex of a triangle appears in exactly two of its edges, so the
    endpoint sum is ``2(u + v + w)``; with the min and max that pins the
    middle vertex without any adjacency probe.
    """
    esrc, etgt = arrays["esrc"], arrays["etgt"]
    s1, t1 = esrc[e1], etgt[e1]
    s2, t2 = esrc[e2], etgt[e2]
    s3, t3 = esrc[e3], etgt[e3]
    tu = _np.minimum(_np.minimum(s1, s2), s3)
    tw = _np.maximum(_np.maximum(t1, t2), t3)
    tv = (s1 + t1 + s2 + t2 + s3 + t3) // 2 - tu - tw
    return tu, tv, tw


def _lex_triangles_numpy(csr: CSRGraph):
    """The lex-ordered triangle listing ``(tu, tv, tw)``, vectorised.

    Degree-oriented wedge enumeration (hub runs stay short) followed by
    one lexsort back into lexicographic triple order — the order that
    defines triangle ids on both backends.
    """
    e1, e2, e3 = csr_triangle_edge_ids(csr)
    tu, tv, tw = triangle_triples(csr_arrays_int64(csr), e1, e2, e3)
    order = _np.lexsort((tw, tv, tu))
    return tu[order], tv[order], tw[order]


def triangle_run_pointers(tu, tv, n: int):
    """Boundaries of the runs of triangles sharing their lowest edge.

    ``run_ptr[g] .. run_ptr[g+1]`` delimits the ``g``-th maximal run of
    lex-consecutive triangles with equal ``(u, v)`` — exactly the groups
    the K₄ pair kernel enumerates within.
    """
    count = len(tu)
    if count == 0:
        return _np.zeros(1, dtype=_np.int64)
    key_uv = tu * n + tv
    change = _np.flatnonzero(key_uv[1:] != key_uv[:-1]) + 1
    return _np.concatenate(([0], change, [count]))


def k4_pair_kernel(tri_keys, tu, tv, tw, run_ptr, n: int, glo: int, ghi: int):
    """All four-cliques whose lowest-edge run index falls in ``[glo, ghi)``.

    The (3,4) analogue of :func:`triangle_pair_kernel`, one level up the
    same index algebra: triangles sharing their lowest edge ``(u, v)`` sit
    in one lex run, every pair ``(w, x)`` of their third vertices is a K₄
    candidate, and the closing test *and* the id of the witness triangle
    ``(u, w, x)`` come from a single ``searchsorted`` against ``tri_keys``
    (the ascending ``(u·n + v)·n + w`` triple keys, whose positions are
    the lex triangle ids).  ``(v, w, x)`` is then complete by implication
    and a second ``searchsorted`` fetches its id.

    Returns the four aligned triangle-id arrays ``(q1, q2, q3, q4)`` for
    the cliques ``u < v < w < x``: ids of ``(u,v,w)``, ``(u,v,x)``,
    ``(u,w,x)``, ``(v,w,x)`` — in the same order as the pure-python
    :func:`csr_k4_triangle_ids` enumeration.
    """
    idx_i, idx_j = _run_slot_pairs(run_ptr[glo:ghi], run_ptr[glo + 1:ghi + 1])
    if len(idx_i) == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return (empty,) * 4
    u = tu[idx_i]
    w = tw[idx_i]
    x = tw[idx_j]
    probe = (u * n + w) * n + x
    pos = _np.minimum(_np.searchsorted(tri_keys, probe), len(tri_keys) - 1)
    found = tri_keys[pos] == probe
    idx_i = idx_i[found]
    idx_j = idx_j[found]
    q3 = pos[found]
    # (u,v,w), (u,v,x), (u,w,x) all present means every K4 edge exists, so
    # (v,w,x) is a triangle too and the search is guaranteed to hit
    q4 = _np.searchsorted(
        tri_keys, (tv[idx_i] * n + w[found]) * n + x[found])
    return idx_i, idx_j, q3, q4


def _k4_numpy(csr: CSRGraph):
    """Vectorised K₄ listing: ``(tu, tv, tw, q1, q2, q3, q4)`` arrays."""
    n = csr.n
    tu, tv, tw = _lex_triangles_numpy(csr)
    tri_keys = (tu * n + tv) * n + tw
    run_ptr = triangle_run_pointers(tu, tv, n)
    # chunk runs by their pair counts so the transient arrays stay bounded
    run_sizes = run_ptr[1:] - run_ptr[:-1]
    cuts = _chunk_starts(run_sizes * (run_sizes - 1) // 2)
    q1, q2, q3, q4 = _concat_columns(
        [k4_pair_kernel(tri_keys, tu, tv, tw, run_ptr, n, glo, ghi)
         for glo, ghi in zip(cuts[:-1], cuts[1:], strict=True)], 4)
    return tu, tv, tw, q1, q2, q3, q4


def csr_k4_triangle_ids(
        csr: CSRGraph, use_numpy: bool | None = None,
) -> tuple[list[tuple[int, int, int]],
           tuple[list[int], list[int], list[int], list[int]]]:
    """All four-cliques as four aligned triangle-id lists, plus the triangles.

    Returns ``(triangles, (q1, q2, q3, q4))`` where ``triangles`` is the
    lexicographically ordered vertex-triple list (index = triangle id, the
    same ids both backends' (3,4) views use) and slot ``i`` of the four
    aligned lists holds the ids of the triangles ``(u,v,w)``, ``(u,v,x)``,
    ``(u,w,x)``, ``(v,w,x)`` of the ``i``-th four-clique ``u < v < w < x``.
    This is the materialised triangle→K₄ incidence the direct (3,4) peel
    and hierarchy construction replay.

    Four-cliques are found once from their smallest edge ``(u, v)``: a pair
    ``w < x`` of common neighbours beyond ``v`` completes one iff ``(w, x)``
    is an edge.  Both the common-neighbour lists and the edge tests come
    from the triangle list itself: triangles sharing their lowest edge sit
    in one consecutive lex run (so their ids need no lookup at all), and
    since ``w`` and ``x`` are both adjacent to ``u``, the edge ``(w, x)``
    exists iff ``(u, w, x)`` is a triangle — one probe of the id map, whose
    value the K₄ record needs anyway.

    With numpy present (``use_numpy=None`` auto-selects) the same
    enumeration runs fully vectorised through :func:`triangle_pair_kernel`
    and :func:`k4_pair_kernel`; output is identical, clique for clique.
    """
    n = csr.n
    if use_numpy is None:
        use_numpy = (_np is not None and csr.m >= _NUMPY_MIN_TRIANGLE_EDGES
                     and n < _MAX_KEYED_N and isinstance(csr, CSRGraph))
    if use_numpy:
        if _np is None:
            raise InvalidGraphError("numpy fast path requested but numpy is missing")
        tu, tv, tw, q1, q2, q3, q4 = _k4_numpy(csr)
        triangles = list(zip(tu.tolist(), tv.tolist(), tw.tolist(), strict=True))
        return triangles, (q1.tolist(), q2.tolist(), q3.tolist(), q4.tolist())
    triangles = list(csr_triangles(csr))
    # encoded int keys hash faster than tuple keys in the pair probes below
    tri_id: dict[int, int] = {
        (a * n + b) * n + c: tid for tid, (a, b, c) in enumerate(triangles)}
    q1: list[int] = []
    q2: list[int] = []
    q3: list[int] = []
    q4: list[int] = []
    get = tri_id.get
    num_tris = len(triangles)
    base = 0
    while base < num_tris:
        u, v, _w = triangles[base]
        end = base + 1
        while end < num_tris:
            tu, tv, _x = triangles[end]
            if tu != u or tv != v:
                break
            end += 1
        # triangles[base:end] share the lowest edge (u, v); their third
        # vertices are exactly the common neighbours of u and v beyond v
        for i in range(base, end - 1):
            w = triangles[i][2]
            uw = (u * n + w) * n
            vw = (v * n + w) * n
            for j in range(i + 1, end):
                x = triangles[j][2]
                t_uwx = get(uw + x)
                if t_uwx is not None:
                    q1.append(i)
                    q2.append(j)
                    q3.append(t_uwx)
                    q4.append(tri_id[vw + x])
        base = end
    return triangles, (q1, q2, q3, q4)


def csr_triangle_k4_counts(
        csr: CSRGraph) -> tuple[dict[tuple[int, int, int], int], list[int]]:
    """Triangle ids plus four-cliques containing each triangle (initial ω₄)."""
    triangles, quads = csr_k4_triangle_ids(csr)
    counts = [0] * len(triangles)
    for quad in quads:
        for tid in quad:
            counts[tid] += 1
    return {tri: tid for tid, tri in enumerate(triangles)}, counts
