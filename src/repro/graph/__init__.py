"""Graph substrate: data structures, IO, generators, clique enumeration."""

from repro.graph.adjacency import EdgeIndex, Graph, normalize_edge
from repro.graph.csr import CSRGraph
from repro.graph.directed import DirectedGraph
from repro.graph.temporal import TemporalGraph
from repro.graph.components import (
    bfs_order,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graph.io import (
    load_edge_list,
    load_graph,
    load_json,
    load_mtx,
    save_edge_list,
    save_json,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "DirectedGraph",
    "TemporalGraph",
    "EdgeIndex",
    "normalize_edge",
    "bfs_order",
    "connected_components",
    "is_connected",
    "largest_component",
    "load_edge_list",
    "load_graph",
    "load_json",
    "load_mtx",
    "save_edge_list",
    "save_json",
]
