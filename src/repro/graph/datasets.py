"""Scaled synthetic stand-ins for the paper's nine evaluation graphs.

The paper (Table 3) evaluates on real graphs between 6.4K and 3.1M vertices.
This repository has no network access and pure Python cannot peel 37M edges
inside a benchmark budget, so each graph is replaced by a *seeded synthetic
stand-in* whose qualitative statistics (edge density |E|/|V|, triangle
density |△|/|E|, four-clique density |K4|/|△|, sub-nucleus structure) mirror
the original at roughly 1/500 scale.  DESIGN.md §4 documents the substitution
rationale; :func:`dataset_table` prints paper-vs-standin statistics.

Three sizes are provided, so tests stay fast while benchmarks can be scaled
up: ``tiny`` (sanity), ``small`` (default for benches), ``medium``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import UnknownDatasetError
from repro.graph import generators
from repro.graph.adjacency import Graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "PAPER_STATS",
    "dataset_names",
    "load_dataset",
    "table1_datasets",
]


@dataclass(frozen=True)
class DatasetSpec:
    """A named stand-in with per-size generator configurations."""

    name: str
    paper_name: str
    kind: str  # which structural trait it imitates
    builders: dict[str, Callable[[], Graph]] = field(repr=False, default_factory=dict)

    def build(self, size: str = "small") -> Graph:
        if size not in self.builders:
            raise UnknownDatasetError(
                f"dataset {self.name!r} has no size {size!r}; "
                f"choose from {sorted(self.builders)}")
        graph = self.builders[size]()
        graph.name = f"{self.name}-{size}"
        return graph


#: Statistics of the original graphs (paper Table 3), for reporting only.
PAPER_STATS: dict[str, dict[str, float]] = {
    "skitter": {"V": 1.7e6, "E": 11.1e6, "tri": 28.8e6, "K4": 148.8e6,
                "E/V": 6.54, "tri/E": 2.59, "K4/tri": 5.17},
    "berkeley13": {"V": 22.9e3, "E": 852.4e3, "tri": 5.3e6, "K4": 26.6e6,
                   "E/V": 37.22, "tri/E": 6.30, "K4/tri": 4.96},
    "mit": {"V": 6.4e3, "E": 251.2e3, "tri": 2.3e6, "K4": 13.7e6,
            "E/V": 39.24, "tri/E": 9.44, "K4/tri": 5.77},
    "stanford3": {"V": 11.6e3, "E": 568.3e3, "tri": 5.8e6, "K4": 37.1e6,
                  "E/V": 49.05, "tri/E": 10.27, "K4/tri": 6.37},
    "texas84": {"V": 36.4e3, "E": 1.6e6, "tri": 11.2e6, "K4": 70.7e6,
                "E/V": 43.74, "tri/E": 7.03, "K4/tri": 6.33},
    "twitter_hb": {"V": 456.6e3, "E": 12.5e6, "tri": 83.0e6, "K4": 429.7e6,
                   "E/V": 27.39, "tri/E": 6.63, "K4/tri": 5.18},
    "google": {"V": 916.4e3, "E": 4.3e6, "tri": 13.4e6, "K4": 39.9e6,
               "E/V": 4.71, "tri/E": 3.10, "K4/tri": 2.98},
    "uk2005": {"V": 129.6e3, "E": 11.7e6, "tri": 837.9e6, "K4": 52.2e9,
               "E/V": 90.60, "tri/E": 71.35, "K4/tri": 62.36},
    "wiki_0611": {"V": 3.1e6, "E": 37.0e6, "tri": 88.8e6, "K4": 162.9e6,
                  "E/V": 11.76, "tri/E": 2.40, "K4/tri": 1.83},
}


def _facebook_like(n: int, m: int, seed: int) -> Callable[[], Graph]:
    # dropout breaks the attachment model's uniform degrees so the k-core
    # hierarchy has many shells, as the real facebook graphs do
    return lambda: generators.edge_dropout(
        generators.powerlaw_cluster(n, m, 0.7, seed=seed), 0.25, seed=seed + 1)


def _internet_like(n: int, m: int, seed: int) -> Callable[[], Graph]:
    return lambda: generators.edge_dropout(
        generators.powerlaw_cluster(n, m, 0.35, seed=seed), 0.3, seed=seed + 1)


def _web_like(n: int, out: int, seed: int) -> Callable[[], Graph]:
    return lambda: generators.copying_model(n, out_degree=out,
                                            copy_probability=0.6, seed=seed)


def _wiki_like(n: int, avg: float, seed: int) -> Callable[[], Graph]:
    return lambda: generators.chung_lu(n, exponent=2.3, average_degree=avg, seed=seed)


def _uk_like(cliques: int, size: int, seed: int) -> Callable[[], Graph]:
    return lambda: generators.planted_cliques(
        cliques, size, bridge_edges=1, noise_vertices=cliques * size // 2,
        noise_edges=cliques * size, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    "skitter": DatasetSpec("skitter", "as-skitter (SK)", "internet topology", {
        "tiny": _internet_like(220, 3, 11),
        "small": _internet_like(1400, 4, 11),
        "medium": _internet_like(5000, 4, 11),
    }),
    "berkeley13": DatasetSpec("berkeley13", "Berkeley13 (BE)", "facebook", {
        "tiny": _facebook_like(120, 10, 13),
        "small": _facebook_like(450, 16, 13),
        "medium": _facebook_like(1600, 22, 13),
    }),
    "mit": DatasetSpec("mit", "MIT (MIT)", "facebook", {
        "tiny": _facebook_like(100, 12, 17),
        "small": _facebook_like(320, 18, 17),
        "medium": _facebook_like(900, 26, 17),
    }),
    "stanford3": DatasetSpec("stanford3", "Stanford3 (ST)", "facebook", {
        "tiny": _facebook_like(130, 12, 19),
        "small": _facebook_like(420, 20, 19),
        "medium": _facebook_like(1200, 30, 19),
    }),
    "texas84": DatasetSpec("texas84", "Texas84 (TX)", "facebook", {
        "tiny": _facebook_like(150, 10, 23),
        "small": _facebook_like(600, 18, 23),
        "medium": _facebook_like(2000, 26, 23),
    }),
    "twitter_hb": DatasetSpec("twitter_hb", "twitter-hb (TW)", "social/follower", {
        "tiny": _internet_like(250, 5, 29),
        "small": _internet_like(1100, 8, 29),
        "medium": _internet_like(3600, 10, 29),
    }),
    "google": DatasetSpec("google", "web-Google (GO)", "web crawl", {
        "tiny": _web_like(300, 4, 31),
        "small": _web_like(1800, 4, 31),
        "medium": _web_like(6000, 5, 31),
    }),
    "uk2005": DatasetSpec("uk2005", "uk-2005 (UK)", "web/host, clique-heavy", {
        "tiny": _uk_like(4, 8, 37),
        "small": _uk_like(10, 13, 37),
        "medium": _uk_like(18, 18, 37),
    }),
    "wiki_0611": DatasetSpec("wiki_0611", "wiki-0611 (WK)", "wikipedia links", {
        "tiny": _wiki_like(300, 6.0, 41),
        "small": _wiki_like(2000, 9.0, 41),
        "medium": _wiki_like(7000, 11.0, 41),
    }),
}

#: Order used by the paper's tables.
_PAPER_ORDER = ["skitter", "berkeley13", "mit", "stanford3", "texas84",
                "twitter_hb", "google", "uk2005", "wiki_0611"]


def dataset_names() -> list[str]:
    """Dataset names in the paper's table order."""
    return list(_PAPER_ORDER)


def load_dataset(name: str, size: str = "small") -> Graph:
    """Build (deterministically) the stand-in for a paper dataset."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return spec.build(size)


def table1_datasets() -> list[str]:
    """The three datasets Table 1 reports on."""
    return ["stanford3", "twitter_hb", "uk2005"]
