"""Seeded synthetic graph generators.

The paper evaluates on nine real-world graphs (SNAP / Network Repository /
UFSMC).  Those are not redistributable here, so :mod:`repro.graph.datasets`
builds scaled stand-ins from the generators below.  Each generator mimics the
structural trait that matters for peeling/hierarchy workloads:

* :func:`barabasi_albert` — heavy-tailed degree (skitter / twitter-like);
* :func:`powerlaw_cluster` — heavy tail **plus** high clustering, i.e. many
  triangles per edge (the facebook university graphs);
* :func:`chung_lu` — configurable power-law degree sequence (wiki-like);
* :func:`copying_model` — web-crawl-style link copying (Google-like);
* :func:`planted_cliques` — unions of large cliques: extreme |K4|/|triangle|
  ratios and very few sub-nuclei (uk-2005-like);
* :func:`planted_hierarchy` — nested dense blocks with a *known* ground-truth
  nucleus hierarchy, used heavily by the tests;
* plus standard :func:`erdos_renyi`, :func:`complete_graph`,
  :func:`ring_of_cliques`, :func:`star`, :func:`path_graph`, :func:`cycle_graph`.

Everything takes an integer ``seed`` and is deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "chung_lu",
    "copying_model",
    "planted_cliques",
    "planted_hierarchy",
    "complete_graph",
    "ring_of_cliques",
    "star",
    "path_graph",
    "cycle_graph",
    "edge_dropout",
    "rmat",
    "stochastic_block",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def complete_graph(n: int, name: str = "") -> Graph:
    """The clique K_n."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)],
                 name=name or f"K{n}")


def path_graph(n: int, name: str = "") -> Graph:
    """A simple path on ``n`` vertices."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name=name or f"P{n}")


def cycle_graph(n: int, name: str = "") -> Graph:
    """A simple cycle on ``n`` vertices (n >= 3)."""
    if n < 3:
        raise InvalidParameterError("cycle needs at least 3 vertices")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)], name=name or f"C{n}")


def star(leaves: int, name: str = "") -> Graph:
    """A star with the given number of leaves; vertex 0 is the centre."""
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)],
                 name=name or f"star{leaves}")


def erdos_renyi(n: int, p: float, seed: int = 0, name: str = "") -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"edge probability must be in [0,1], got {p}")
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    # Sample geometric skips over the upper-triangle index space: O(m) not O(n^2).
    total = n * (n - 1) // 2
    if p > 0:
        position = -1
        log1mp = np.log1p(-p) if p < 1.0 else None
        while True:
            if p >= 1.0:
                position += 1
            else:
                gap = int(np.floor(np.log(1.0 - rng.random()) / log1mp)) + 1
                position += gap
            if position >= total:
                break
            u = int((1 + np.sqrt(1 + 8 * position)) / 2)
            # guard against floating-point truncation at bucket boundaries
            while u * (u - 1) // 2 > position:
                u -= 1
            while (u + 1) * u // 2 <= position:
                u += 1
            v = position - u * (u - 1) // 2
            edges.append((int(u), int(v)))
    return Graph(n, edges, name=name or f"gnp_{n}_{p}")


def barabasi_albert(n: int, m: int, seed: int = 0, name: str = "") -> Graph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` targets."""
    if m < 1 or m >= n:
        raise InvalidParameterError(f"need 1 <= m < n, got m={m} n={n}")
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    # repeated-endpoint list implements preferential attachment in O(1)/draw
    repeated: list[int] = list(range(m))  # seed targets: the first m vertices
    for v in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated[rng.integers(len(repeated))] if repeated else int(rng.integers(v))
            if pick != v:
                targets.add(int(pick))
        for t in targets:
            edges.append((v, t))
            repeated.append(t)
            repeated.append(v)
    return Graph(n, edges, name=name or f"ba_{n}_{m}")


def powerlaw_cluster(n: int, m: int, p: float, seed: int = 0, name: str = "") -> Graph:
    """Holme–Kim model: preferential attachment with probability-``p`` triad closure.

    High clustering plus a heavy tail — the best stand-in for the facebook
    university graphs whose |triangles|/|E| ratios dominate Table 3.
    """
    if m < 1 or m >= n:
        raise InvalidParameterError(f"need 1 <= m < n, got m={m} n={n}")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"closure probability must be in [0,1], got {p}")
    rng = _rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    repeated: list[int] = list(range(m))

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.append(u)
        repeated.append(v)
        return True

    for v in range(m, n):
        added = 0
        last_target = -1
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            if last_target >= 0 and rng.random() < p and adjacency[last_target]:
                # triad closure: connect to a neighbour of the last target
                candidates = tuple(adjacency[last_target])
                pick = int(candidates[rng.integers(len(candidates))])
            else:
                pick = int(repeated[rng.integers(len(repeated))]) if repeated \
                    else int(rng.integers(v))
            if add_edge(v, pick):
                added += 1
                last_target = pick
    edges = [(u, w) for u in range(n) for w in adjacency[u] if u < w]
    return Graph(n, edges, name=name or f"hk_{n}_{m}_{p}")


def chung_lu(n: int, exponent: float = 2.5, average_degree: float = 10.0,
             seed: int = 0, name: str = "") -> Graph:
    """Chung–Lu graph with a power-law expected degree sequence."""
    if exponent <= 1.0:
        raise InvalidParameterError("power-law exponent must exceed 1")
    rng = _rng(seed)
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights *= average_degree * n / weights.sum()
    total = weights.sum()
    edges: set[tuple[int, int]] = set()
    # expected-degree sampling: draw m ~ total/2 endpoint pairs by weight
    target_edges = int(total / 2)
    probabilities = weights / total
    us = rng.choice(n, size=2 * target_edges, p=probabilities)
    for i in range(0, len(us) - 1, 2):
        u, v = int(us[i]), int(us[i + 1])
        if u != v:
            edges.add((u, v) if u < v else (v, u))
    return Graph(n, list(edges), name=name or f"cl_{n}_{exponent}")


def copying_model(n: int, out_degree: int = 5, copy_probability: float = 0.6,
                  seed: int = 0, name: str = "") -> Graph:
    """Kumar et al. web-copying model (directions dropped).

    Each new page either copies a link target of a random prototype page or
    links uniformly at random; copying creates the dense bipartite-like cores
    typical of web graphs (Google, uk-2005).
    """
    if out_degree < 1:
        raise InvalidParameterError("out_degree must be >= 1")
    rng = _rng(seed)
    seed_size = out_degree + 1
    edges: set[tuple[int, int]] = {(u, v) for u in range(seed_size)
                                   for v in range(u + 1, seed_size)}
    out_links: list[list[int]] = [[v for v in range(seed_size) if v != u]
                                  for u in range(seed_size)]
    for v in range(seed_size, n):
        prototype = int(rng.integers(v))
        links: set[int] = set()
        for slot in range(out_degree):
            if rng.random() < copy_probability and out_links[prototype]:
                pick = out_links[prototype][slot % len(out_links[prototype])]
            else:
                pick = int(rng.integers(v))
            if pick != v:
                links.add(pick)
        out_links.append(sorted(links))
        for t in links:
            edges.add((v, t) if v < t else (t, v))
    return Graph(n, list(edges), name=name or f"copy_{n}_{out_degree}")


def planted_cliques(num_cliques: int, clique_size: int, bridge_edges: int = 2,
                    noise_vertices: int = 0, noise_edges: int = 0,
                    seed: int = 0, name: str = "") -> Graph:
    """A union of disjoint cliques chained by sparse bridges, plus noise.

    Clique ``i`` occupies vertices ``[i*clique_size, (i+1)*clique_size)``;
    consecutive cliques are joined by ``bridge_edges`` low-support edges.
    With large ``clique_size`` this reproduces uk-2005's signature: enormous
    |K4|/|triangle| ratios but only a handful of sub-(r,s) nuclei.
    """
    if num_cliques < 1 or clique_size < 2:
        raise InvalidParameterError("need at least one clique of size >= 2")
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        edges.extend((base + i, base + j)
                     for i in range(clique_size) for j in range(i + 1, clique_size))
    for c in range(num_cliques - 1):
        base, nxt = c * clique_size, (c + 1) * clique_size
        for _ in range(bridge_edges):
            edges.append((base + int(rng.integers(clique_size)),
                          nxt + int(rng.integers(clique_size))))
    n = num_cliques * clique_size + noise_vertices
    core_n = num_cliques * clique_size
    for _ in range(noise_edges):
        u = core_n + int(rng.integers(max(noise_vertices, 1)))
        v = int(rng.integers(core_n + noise_vertices))
        if u != v and u < n and v < n:
            edges.append((u, v))
    return Graph(n, edges, name=name or f"cliques_{num_cliques}x{clique_size}")


def planted_hierarchy(branching: int = 2, depth: int = 3, leaf_size: int = 8,
                      base_p: float = 0.05, level_p_step: float = 0.3,
                      seed: int = 0, name: str = "") -> Graph:
    """Nested dense blocks with a known hierarchy (a stochastic block tree).

    A complete ``branching``-ary tree of ``depth`` levels is built; each leaf
    owns ``leaf_size`` vertices.  Two vertices are joined with probability
    that grows with the depth of their lowest common ancestor, so deeper
    blocks are denser and the nucleus hierarchy recovers the tree.
    """
    if branching < 2 or depth < 1 or leaf_size < 2:
        raise InvalidParameterError("need branching >= 2, depth >= 1, leaf_size >= 2")
    rng = _rng(seed)
    num_leaves = branching ** depth
    n = num_leaves * leaf_size

    def leaf_of(v: int) -> int:
        return v // leaf_size

    def lca_depth(a: int, b: int) -> int:
        la, lb = leaf_of(a), leaf_of(b)
        level = depth
        while la != lb:
            la //= branching
            lb //= branching
            level -= 1
        return level

    edges: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            level = lca_depth(u, v)
            p = min(1.0, base_p + level_p_step * level)
            if rng.random() < p:
                edges.append((u, v))
    return Graph(n, edges, name=name or f"planted_{branching}x{depth}x{leaf_size}")


def rmat(scale: int, edge_factor: int = 8,
         partition: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
         seed: int = 0, name: str = "") -> Graph:
    """R-MAT / Kronecker-style recursive generator (Graph500 defaults).

    Produces ``2**scale`` vertices and about ``edge_factor * 2**scale``
    distinct edges with a skewed, self-similar structure; duplicates and
    self loops are discarded, directions ignored.
    """
    a, b, c, d = partition
    total = a + b + c + d
    if total <= 0:
        raise InvalidParameterError("partition probabilities must be positive")
    a, b, c, d = a / total, b / total, c / total, d / total
    n = 2 ** scale
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    target = edge_factor * n
    draws = rng.random((target, scale))
    for row in draws:
        u = v = 0
        for r in row:
            # choose one of the four quadrants: a=(0,0) b=(0,1) c=(1,0) d=(1,1)
            if r < a:
                u_bit, v_bit = 0, 0
            elif r < a + b:
                u_bit, v_bit = 0, 1
            elif r < a + b + c:
                u_bit, v_bit = 1, 0
            else:
                u_bit, v_bit = 1, 1
            u = (u << 1) | u_bit
            v = (v << 1) | v_bit
        if u != v:
            edges.add((u, v) if u < v else (v, u))
    return Graph(n, sorted(edges), name=name or f"rmat_{scale}_{edge_factor}")


def stochastic_block(sizes: list[int], p_in: float, p_out: float,
                     seed: int = 0, name: str = "") -> Graph:
    """Stochastic block model: dense blocks, sparse inter-block edges.

    The classical planted-community benchmark; with ``p_in >> p_out`` the
    nucleus hierarchy recovers the blocks as separate dense nuclei.
    """
    if not (0 <= p_out <= p_in <= 1):
        raise InvalidParameterError("need 0 <= p_out <= p_in <= 1")
    rng = _rng(seed)
    block_of: list[int] = []
    for b, size in enumerate(sizes):
        block_of.extend([b] * size)
    n = len(block_of)
    edges: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if block_of[u] == block_of[v] else p_out
            if rng.random() < p:
                edges.append((u, v))
    return Graph(n, edges, name=name or f"sbm_{len(sizes)}x{sizes[0] if sizes else 0}")


def edge_dropout(graph: Graph, rate: float, seed: int = 0) -> Graph:
    """Remove each edge independently with probability ``rate``.

    Attachment models (BA, Holme–Kim) hand every vertex exactly ``m`` edges
    at birth, which makes core numbers nearly uniform and the k-core
    hierarchy degenerate.  Real graphs are not like that; thinning edges at
    random restores a degree spread and with it a multi-level shell
    structure, so the dataset stand-ins exercise the hierarchy algorithms
    the way the paper's graphs do.
    """
    if not 0.0 <= rate < 1.0:
        raise InvalidParameterError(f"dropout rate must be in [0,1), got {rate}")
    rng = _rng(seed)
    kept = [e for e in graph.edges() if rng.random() >= rate]
    return Graph(graph.n, kept, name=graph.name)


def ring_of_cliques(num_cliques: int, clique_size: int, name: str = "") -> Graph:
    """Cliques arranged in a ring, adjacent cliques sharing one bridge edge."""
    if num_cliques < 3 or clique_size < 3:
        raise InvalidParameterError("need >= 3 cliques of size >= 3")
    edges: list[tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        edges.extend((base + i, base + j)
                     for i in range(clique_size) for j in range(i + 1, clique_size))
        nxt = ((c + 1) % num_cliques) * clique_size
        edges.append((base, nxt + 1))
    return Graph(num_cliques * clique_size, edges,
                 name=name or f"ring_{num_cliques}x{clique_size}")
