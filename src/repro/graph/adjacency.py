"""Undirected simple graph used by every algorithm in the library.

The representation is tuned for peeling and clique enumeration workloads:

* vertices are dense integers ``0 .. n-1``;
* each adjacency is kept twice — as a :class:`set` for O(1) membership tests
  and as a sorted ``list`` for ordered iteration and merge-style
  intersections (common-neighbour queries are the inner loop of triangle and
  four-clique enumeration);
* an optional edge index maps the unordered pair ``(u, v)`` (stored with
  ``u < v``) to a dense edge id, which is what the (2,3) peeling view peels.

Graphs are immutable once constructed.  Build them with
:meth:`Graph.from_edges`, :func:`repro.graph.io` loaders, or the generators
in :mod:`repro.graph.generators`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidGraphError

__all__ = ["Graph", "EdgeIndex", "normalize_edge"]


def normalize_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical (sorted) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


class EdgeIndex:
    """Dense integer ids for the edges of a :class:`Graph`.

    Edge ``i`` is the pair ``(source[i], target[i])`` with
    ``source[i] < target[i]``; edges are sorted lexicographically so edge ids
    are deterministic for a given graph.
    """

    __slots__ = ("source", "target", "_id_of")

    def __init__(self, edges: Sequence[tuple[int, int]]):
        ordered = sorted(normalize_edge(u, v) for u, v in edges)
        self.source = [e[0] for e in ordered]
        self.target = [e[1] for e in ordered]
        self._id_of = {e: i for i, e in enumerate(ordered)}

    def __len__(self) -> int:
        return len(self.source)

    def id_of(self, u: int, v: int) -> int:
        """Return the id of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._id_of[normalize_edge(u, v)]

    def get(self, u: int, v: int) -> int | None:
        """Return the id of edge ``{u, v}`` or ``None`` if absent."""
        return self._id_of.get(normalize_edge(u, v))

    def endpoints(self, eid: int) -> tuple[int, int]:
        """Return the (sorted) endpoints of edge ``eid``."""
        return self.source[eid], self.target[eid]

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return zip(self.source, self.target, strict=True)


class Graph:
    """An immutable, undirected, simple graph on vertices ``0 .. n-1``."""

    __slots__ = ("_n", "_m", "_adj_set", "_adj_sorted", "_edge_index", "name")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], name: str = ""):
        if n < 0:
            raise InvalidGraphError(f"vertex count must be non-negative, got {n}")
        adj_set: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise InvalidGraphError(f"self loop on vertex {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(f"edge ({u}, {v}) out of range for n={n}")
            adj_set[u].add(v)
            adj_set[v].add(u)
        self._n = n
        self._adj_set = adj_set
        self._adj_sorted = [sorted(s) for s in adj_set]
        self._m = sum(len(s) for s in adj_set) // 2
        self._edge_index: EdgeIndex | None = None
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]], n: int | None = None,
                   name: str = "") -> "Graph":
        """Build a graph from an edge iterable.

        Duplicate edges and both orientations are tolerated (the adjacency is
        a set); self loops raise :class:`InvalidGraphError`.  When ``n`` is
        omitted it is inferred as ``max vertex + 1``.
        """
        edge_list = list(edges)
        if n is None:
            n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(n, edge_list, name=name)

    @classmethod
    def empty(cls, n: int = 0, name: str = "") -> "Graph":
        """Return a graph with ``n`` vertices and no edges."""
        return cls(n, [], name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adj_set[v])

    def degrees(self) -> list[int]:
        """Degrees of all vertices, indexed by vertex id."""
        return [len(s) for s in self._adj_set]

    def neighbors(self, v: int) -> list[int]:
        """Sorted neighbour list of ``v`` (do not mutate)."""
        return self._adj_sorted[v]

    def neighbor_set(self, v: int) -> set[int]:
        """Neighbour set of ``v`` (do not mutate)."""
        return self._adj_set[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        return v in self._adj_set[u] if 0 <= u < self._n else False

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges once each, as sorted pairs, in lexicographic order."""
        for u in range(self._n):
            for v in self._adj_sorted[u]:
                if v > u:
                    yield (u, v)

    def vertices(self) -> range:
        """Iterable of all vertex ids."""
        return range(self._n)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def edge_index(self) -> EdgeIndex:
        """Lazily-built dense edge index (used by the (2,3) and (3,4) views)."""
        if self._edge_index is None:
            self._edge_index = EdgeIndex(list(self.edges()))
        return self._edge_index

    def common_neighbors(self, u: int, v: int) -> list[int]:
        """Sorted common neighbours of ``u`` and ``v``.

        Scans the smaller sorted adjacency and probes the larger set, which
        is the right trade-off for the skewed degree distributions peeling
        workloads see.
        """
        if self.degree(u) > self.degree(v):
            u, v = v, u
        probe = self._adj_set[v]
        return [w for w in self._adj_sorted[u] if w in probe]

    def common_neighbor_count(self, u: int, v: int) -> int:
        """Number of common neighbours of ``u`` and ``v``."""
        if self.degree(u) > self.degree(v):
            u, v = v, u
        probe = self._adj_set[v]
        return sum(1 for w in self._adj_sorted[u] if w in probe)

    def subgraph(self, vertices: Iterable[int], relabel: bool = True) -> "Graph":
        """Induced subgraph on ``vertices``.

        With ``relabel=True`` (default) vertices are renumbered ``0..k-1`` in
        increasing original-id order; otherwise original ids are kept and the
        result has the same vertex count as ``self``.
        """
        keep = sorted(set(vertices))
        keep_set = set(keep)
        if relabel:
            new_id = {v: i for i, v in enumerate(keep)}
            edges = [(new_id[u], new_id[v]) for u in keep
                     for v in self._adj_sorted[u] if u < v and v in keep_set]
            return Graph(len(keep), edges, name=self.name)
        edges = [(u, v) for u in keep for v in self._adj_sorted[u]
                 if u < v and v in keep_set]
        return Graph(self._n, edges, name=self.name)

    def edge_subgraph(self, edge_ids: Iterable[int], relabel: bool = False) -> "Graph":
        """Subgraph made of the given edge ids (from :attr:`edge_index`)."""
        idx = self.edge_index
        edges = [idx.endpoints(e) for e in edge_ids]
        if relabel:
            verts = sorted({v for e in edges for v in e})
            new_id = {v: i for i, v in enumerate(verts)}
            return Graph(len(verts), [(new_id[u], new_id[v]) for u, v in edges],
                         name=self.name)
        return Graph(self._n, edges, name=self.name)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj_set == other._adj_set

    def __hash__(self):  # Graphs are containers; identity hashing is enough.
        return id(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} n={self._n} m={self._m}>"
