"""Temporal graph substrate for the (k, h)-core variant.

A temporal graph is a multiset of timestamped interactions; the
(k, h)-core machinery only ever consumes the *interaction count* per
unordered vertex pair.  :class:`TemporalGraph` captures exactly that —
counts are tallied once at construction, and :meth:`csr` lazily builds
**one** CSR graph over the distinct pairs with a count aligned to every
edge id, which the threshold sweep reuses for every ``h`` instead of
rebuilding a graph per threshold.  This is the graph-first handle the
redesigned ``temporal_core_numbers(graph, h=...)`` entry point takes
(the old ``(n, events, h)`` spelling survives as a deprecation shim).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.errors import InvalidGraphError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

__all__ = ["TemporalGraph"]


class TemporalGraph:
    """Timestamped interaction multigraph over vertices ``0..n-1``.

    Only the per-pair interaction counts are retained (self-interactions
    dropped), which is the sufficient statistic for every (k, h)-core
    quantity.
    """

    __slots__ = ("n", "name", "_counts", "_pairs", "_flat")

    def __init__(self, n: int, events: Iterable[tuple[int, int, int]],
                 name: str = "temporal"):
        if n < 0:
            raise InvalidGraphError(f"vertex count must be >= 0, got {n}")
        self.n = n
        self.name = name
        counts: Counter[tuple[int, int]] = Counter()
        for u, v, _t in events:
            if u == v:
                continue
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(
                    f"event ({u}, {v}) out of range for n={n}")
            counts[(u, v) if u < v else (v, u)] += 1
        self._counts = dict(counts)
        self._pairs = sorted(self._counts)
        self._flat: tuple[CSRGraph, list[int]] | None = None

    @property
    def m(self) -> int:
        """Number of distinct interacting pairs."""
        return len(self._pairs)

    @property
    def max_count(self) -> int:
        """Largest interaction count of any pair (0 on event-free graphs)."""
        return max(self._counts.values(), default=0)

    def interaction_counts(self) -> dict[tuple[int, int], int]:
        """Interaction count per unordered pair (a fresh dict)."""
        return dict(self._counts)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Distinct interacting pairs in lexicographic (edge-id) order."""
        return iter(self._pairs)

    def threshold(self, h: int) -> Graph:
        """Static graph keeping pairs with at least ``h`` interactions."""
        if h < 1:
            raise InvalidParameterError(
                f"interaction threshold h must be >= 1, got {h}")
        edges = [pair for pair in self._pairs if self._counts[pair] >= h]
        return Graph(self.n, edges, name=f"{self.name}_h{h}")

    def csr(self) -> tuple[CSRGraph, list[int]]:
        """``(csr, counts)`` — one CSR over the distinct pairs plus the
        interaction count per lexicographic edge id, built once and
        cached so a threshold sweep reuses a single build."""
        if self._flat is None:
            csr = CSRGraph(self.n, self._pairs, name=self.name)
            counts = [self._counts[pair] for pair in self._pairs]
            self._flat = (csr, counts)
        return self._flat

    def __repr__(self) -> str:
        return (f"TemporalGraph(name={self.name!r}, n={self.n}, "
                f"pairs={self.m}, max_count={self.max_count})")
