"""k-core decomposition conveniences (the (1,2) nucleus case)."""

from repro.kcore.core import (
    core_hierarchy,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
    k_core_subgraph,
    shells,
)

__all__ = [
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "k_core",
    "k_core_subgraph",
    "shells",
    "core_hierarchy",
]
