"""Shared parameter normalisation for the scenario-variant layer.

Every variant accepts per-edge values (weights, existence probabilities)
either as ``Mapping[(u, v), float]`` — keyed by endpoint pair in either
orientation — or as ``Sequence[float]`` indexed by lexicographic edge id
(the id convention shared by the object, CSR and disk representations,
so the same sequence is valid on every backend).  All validation raises
:class:`~repro.errors.InvalidParameterError` with one message shape per
failure, regardless of which variant rejected the input.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.errors import InvalidParameterError

__all__ = ["EdgeValues", "edge_values", "require_count", "require_fraction"]

#: the accepted spellings of per-edge values on every variant entry point
EdgeValues = Union[Mapping[tuple[int, int], float], Sequence[float]]


def _endpoints(graph) -> list[tuple[int, int]]:
    """Lexicographic (u, v) per edge id, on any graph representation."""
    esrc = getattr(graph, "esrc", None)
    if esrc is not None:
        etgt = graph.etgt
        return [(int(esrc[e]), int(etgt[e])) for e in range(graph.m)]
    index = graph.edge_index
    return [index.endpoints(eid) for eid in range(len(index))]


def edge_values(graph, values: EdgeValues, *, kind: str = "weight",
                plural: str | None = None,
                lo: float | None = None,
                hi: float | None = None) -> list[float]:
    """Normalise per-edge values to a list indexed by edge id.

    ``kind``/``plural`` name the quantity in error messages; ``lo``/``hi``
    bound the accepted range (``lo`` alone means non-negative).
    """
    plural = plural or kind + "s"
    if isinstance(values, Mapping):
        out = []
        for u, v in _endpoints(graph):
            if (u, v) in values:
                out.append(float(values[(u, v)]))
            elif (v, u) in values:
                out.append(float(values[(v, u)]))
            else:
                raise InvalidParameterError(
                    f"missing {kind} for edge ({u},{v})")
    else:
        out = [float(value) for value in values]
        if len(out) != graph.m:
            raise InvalidParameterError(
                f"expected {graph.m} {plural}, got {len(out)}")
    if lo is not None and hi is not None:
        if any(not lo <= value <= hi for value in out):
            raise InvalidParameterError(
                f"{plural} must lie in [{lo:g}, {hi:g}]")
    elif lo is not None and any(value < lo for value in out):
        raise InvalidParameterError(
            f"edge {plural} must be non-negative" if lo == 0.0
            else f"{plural} must be >= {lo:g}")
    return out


def require_fraction(name: str, value: float) -> float:
    """Validate a half-open (0, 1] threshold (η and friends)."""
    if not 0.0 < value <= 1.0:
        raise InvalidParameterError(f"{name} must be in (0, 1], got {value}")
    return value


def require_count(name: str, value: int, minimum: int = 1) -> int:
    """Validate an integer threshold with a lower bound (h and friends)."""
    if value < minimum:
        raise InvalidParameterError(
            f"{name} must be >= {minimum}, got {value}")
    return value
