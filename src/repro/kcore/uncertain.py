"""(k, η)-core decomposition of uncertain graphs (Bonchi et al., KDD'14).

Another §3.1 survey subject: every edge carries an independent existence
probability, and the η-degree of a vertex is the largest k such that the
probability of it having at least k live neighbours is ≥ η.  The
(k, η)-core is the maximal subgraph where every vertex has η-degree ≥ k;
peeling works exactly as for plain cores once η-degrees replace degrees.

Probabilities P[deg(v) >= k] are Poisson–binomial tails, computed with the
standard O(d²) dynamic program over the incident edges that survive the
peeling so far.  As with every decomposition in this library, the
connectivity-aware extraction (:func:`uncertain_k_core`) is included —
the step the paper's survey notes the uncertain adaptation leaves out.

Peeling routes through :func:`repro.backends.uncertain_core_peel`: the
object engine is the reference (full upward η-degree search per
recompute); the generic-kernel engine walks the flat CSR arrays and
searches *downward* from the previous η-degree — removals never raise an
η-degree, so most recomputes settle after a single tail evaluation.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable

from repro.backends import as_object, uncertain_core_peel
from repro.core.generic_peel import generic_peel
from repro.core.peeling import PeelingResult
from repro.graph.adjacency import Graph
from repro.kcore.params import EdgeValues, edge_values, require_fraction

__all__ = ["eta_degree", "uncertain_core_numbers", "uncertain_k_core"]


def _tail_at_least(probs: list[float], k: int) -> float:
    """P[Poisson-binomial(probs) >= k] via the subset-sum DP."""
    if k <= 0:
        return 1.0
    if k > len(probs):
        return 0.0
    # dp[j] = P[exactly j live] for j < k; dp[k] = P[at least k live]
    # (the top state absorbs: once >= k, further edges cannot undo it)
    dp = [1.0] + [0.0] * k
    for p in probs:
        dp[k] = dp[k] + dp[k - 1] * p
        for j in range(k - 1, 0, -1):
            dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p
        dp[0] *= (1.0 - p)
    return dp[k]


def eta_degree(probs: list[float], eta: float) -> int:
    """Largest k with P[deg >= k] >= eta, given incident edge probabilities."""
    k = 0
    while _tail_at_least(probs, k + 1) >= eta:
        k += 1
    return k


def _eta_degree_capped(probs: list[float], eta: float, cap: int) -> int:
    """Largest k <= cap with P[deg >= k] >= eta.

    Removing an incident edge never raises an η-degree, so a recompute is
    bounded by the previous value and searched downward — usually one
    tail evaluation instead of the upward walk from zero.
    """
    k = min(cap, len(probs))
    while k > 0 and _tail_at_least(probs, k) < eta:
        k -= 1
    return k


def _object_uncertain_core(graph: Graph, plist: list[float],
                           eta: float) -> PeelingResult:
    """Reference η-degree peel on the object engine (heap over adjacency
    sets, full upward η-degree search per recompute)."""
    index = graph.edge_index
    alive = [True] * graph.n

    def incident_probs(v: int) -> list[float]:
        return [plist[index.id_of(v, w)] for w in graph.neighbors(v)
                if alive[w]]

    degree = [eta_degree(incident_probs(v), eta) for v in graph.vertices()]
    lam = [0] * graph.n
    order: list[int] = []
    heap = [(degree[v], v) for v in graph.vertices()]
    heapq.heapify(heap)
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if not alive[v] or d != degree[v]:
            continue
        alive[v] = False
        order.append(v)
        current = max(current, d)
        lam[v] = current
        for w in graph.neighbors(v):
            if alive[w]:
                degree[w] = eta_degree(incident_probs(w), eta)
                heapq.heappush(heap, (degree[w], w))
    return PeelingResult(lam=lam, max_lambda=current, order=order)


def _kernel_uncertain_core(csr, plist: list[float],
                           eta: float) -> PeelingResult:
    """η-degree peel on the generic flat kernel: a revalue rule with the
    capped downward tail search, lazy int buckets."""
    indptr, indices, eids = csr.hot_arrays()
    n = csr.n

    def live_probs(v: int, peeled) -> list[float]:
        return [plist[eids[p]] for p in range(indptr[v], indptr[v + 1])
                if not peeled[indices[p]]]

    nobody = bytearray(n)
    values = [eta_degree(live_probs(v, nobody), eta) for v in range(n)]

    def reweigh(v: int, k, peeled: bytearray,
                current: list) -> Iterable[tuple[int, int]]:
        for p in range(indptr[v], indptr[v + 1]):
            w = indices[p]
            if not peeled[w]:
                yield w, _eta_degree_capped(live_probs(w, peeled), eta,
                                            current[w])

    return generic_peel(values, revalue_rule=reweigh, bucket="bucket")


def uncertain_core_numbers(graph, probabilities: EdgeValues,
                           eta: float = 0.5,
                           backend: str | None = None,
                           workers: int | None = None) -> list[int]:
    """η-core number of every vertex (peeling by η-degree).

    With all probabilities 1 this reduces exactly to classic core numbers.
    Routed through :func:`repro.backends.uncertain_core_peel`;
    ``probabilities`` is a mapping keyed by endpoint pair or a sequence
    indexed by edge id.
    """
    return uncertain_core_peel(graph, probabilities, eta=eta,
                               backend=backend, workers=workers).lam


def uncertain_k_core(graph, k: int,
                     probabilities: EdgeValues,
                     eta: float = 0.5,
                     lam: list[int] | None = None,
                     connectivity_threshold: float = 0.0,
                     backend: str | None = None,
                     workers: int | None = None) -> list[list[int]]:
    """*Connected* (k, η)-cores, each as a sorted vertex list.

    The uncertain-core literature never defines connectivity (exactly the
    gap the paper's survey highlights), so it is made explicit here:
    traversal crosses an edge only if its existence probability is at
    least ``connectivity_threshold`` (0.0 = structural connectivity over
    all edges; raise it to demand reliable connections).
    ``backend=``/``workers=`` select the engine computing λ when ``lam``
    is not supplied.
    """
    require_fraction("eta", eta)
    obj = as_object(graph)
    plist = edge_values(obj, probabilities, kind="probability",
                        plural="probabilities", lo=0.0, hi=1.0)
    index = obj.edge_index
    if lam is None:
        lam = uncertain_core_numbers(graph, plist, eta,
                                     backend=backend, workers=workers)
    keep = {v for v in obj.vertices() if lam[v] >= k}
    seen: set[int] = set()
    out: list[list[int]] = []
    for start in sorted(keep):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in obj.neighbors(u):
                if (w in keep and w not in seen
                        and plist[index.id_of(u, w)] >= connectivity_threshold):
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        out.append(sorted(component))
    return out
