"""(k, η)-core decomposition of uncertain graphs (Bonchi et al., KDD'14).

Another §3.1 survey subject: every edge carries an independent existence
probability, and the η-degree of a vertex is the largest k such that the
probability of it having at least k live neighbours is ≥ η.  The
(k, η)-core is the maximal subgraph where every vertex has η-degree ≥ k;
peeling works exactly as for plain cores once η-degrees replace degrees.

Probabilities P[deg(v) >= k] are Poisson–binomial tails, computed with the
standard O(d²) dynamic program over the incident edges that survive the
peeling so far.  As with every decomposition in this library, the
connectivity-aware extraction (:func:`uncertain_k_core`) is included —
the step the paper's survey notes the uncertain adaptation leaves out.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph

__all__ = ["eta_degree", "uncertain_core_numbers", "uncertain_k_core"]


def _normalise(graph: Graph,
               probabilities: Mapping[tuple[int, int], float] | Sequence[float]
               ) -> list[float]:
    index = graph.edge_index
    if isinstance(probabilities, Mapping):
        out = []
        for eid in range(len(index)):
            u, v = index.endpoints(eid)
            if (u, v) in probabilities:
                out.append(float(probabilities[(u, v)]))
            elif (v, u) in probabilities:
                out.append(float(probabilities[(v, u)]))
            else:
                raise InvalidParameterError(
                    f"missing probability for edge ({u},{v})")
    else:
        out = [float(p) for p in probabilities]
        if len(out) != len(index):
            raise InvalidParameterError(
                f"expected {len(index)} probabilities, got {len(out)}")
    if any(not 0.0 <= p <= 1.0 for p in out):
        raise InvalidParameterError("probabilities must lie in [0, 1]")
    return out


def _tail_at_least(probs: list[float], k: int) -> float:
    """P[Poisson-binomial(probs) >= k] via the subset-sum DP."""
    if k <= 0:
        return 1.0
    if k > len(probs):
        return 0.0
    # dp[j] = P[exactly j live] for j < k; dp[k] = P[at least k live]
    # (the top state absorbs: once >= k, further edges cannot undo it)
    dp = [1.0] + [0.0] * k
    for p in probs:
        dp[k] = dp[k] + dp[k - 1] * p
        for j in range(k - 1, 0, -1):
            dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p
        dp[0] *= (1.0 - p)
    return dp[k]


def eta_degree(probs: list[float], eta: float) -> int:
    """Largest k with P[deg >= k] >= eta, given incident edge probabilities."""
    k = 0
    while _tail_at_least(probs, k + 1) >= eta:
        k += 1
    return k


def uncertain_core_numbers(graph: Graph,
                           probabilities: Mapping[tuple[int, int], float] | Sequence[float],
                           eta: float = 0.5) -> list[int]:
    """η-core number of every vertex (peeling by η-degree).

    With all probabilities 1 this reduces exactly to classic core numbers.
    """
    if not 0.0 < eta <= 1.0:
        raise InvalidParameterError(f"eta must be in (0, 1], got {eta}")
    plist = _normalise(graph, probabilities)
    index = graph.edge_index
    alive = [True] * graph.n

    def incident_probs(v: int) -> list[float]:
        return [plist[index.id_of(v, w)] for w in graph.neighbors(v)
                if alive[w]]

    degree = [eta_degree(incident_probs(v), eta) for v in graph.vertices()]
    lam = [0] * graph.n
    heap = [(degree[v], v) for v in graph.vertices()]
    heapq.heapify(heap)
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if not alive[v] or d != degree[v]:
            continue
        alive[v] = False
        current = max(current, d)
        lam[v] = current
        for w in graph.neighbors(v):
            if alive[w]:
                degree[w] = eta_degree(incident_probs(w), eta)
                heapq.heappush(heap, (degree[w], w))
    return lam


def uncertain_k_core(graph: Graph, k: int,
                     probabilities: Mapping[tuple[int, int], float] | Sequence[float],
                     eta: float = 0.5,
                     lam: list[int] | None = None,
                     connectivity_threshold: float = 0.0) -> list[list[int]]:
    """*Connected* (k, η)-cores, each as a sorted vertex list.

    The uncertain-core literature never defines connectivity (exactly the
    gap the paper's survey highlights), so it is made explicit here:
    traversal crosses an edge only if its existence probability is at
    least ``connectivity_threshold`` (0.0 = structural connectivity over
    all edges; raise it to demand reliable connections).
    """
    plist = _normalise(graph, probabilities)
    index = graph.edge_index
    if lam is None:
        lam = uncertain_core_numbers(graph, plist, eta)
    keep = {v for v in graph.vertices() if lam[v] >= k}
    seen: set[int] = set()
    out: list[list[int]] = []
    for start in sorted(keep):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if (w in keep and w not in seen
                        and plist[index.id_of(u, w)] >= connectivity_threshold):
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        out.append(sorted(component))
    return out
