"""k-core conveniences built on the (1,2) decomposition.

The paper is careful to distinguish the *peeling* output (core numbers λ₂)
from the *k-core decomposition* proper, whose k-cores are **connected**
maximal subgraphs of minimum degree k (Seidman 1983; Matula & Beck 1983).
This module exposes both:

* :func:`core_numbers` — λ₂ per vertex (what most libraries call k-core);
* :func:`k_core` — vertex sets of the *connected* k-cores;
* :func:`k_core_subgraph` — the classic (possibly disconnected) closure,
  for comparison with the Batagelj–Zaversnik convention;
* :func:`degeneracy` / :func:`degeneracy_ordering` — from the peeling order;
* :func:`core_hierarchy` — the full hierarchy via any algorithm;
* :func:`shells` — the k-shells (vertices with λ₂ exactly k).
"""

from __future__ import annotations

from repro.backends import core_peel, decompose, resolve_backend
from repro.core.decomposition import Decomposition
from repro.graph.adjacency import Graph
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph

__all__ = [
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "k_core",
    "k_core_subgraph",
    "shells",
    "core_hierarchy",
]


def _peel(graph: Graph | CSRGraph, backend: str | None,
          workers: int | None):
    return core_peel(graph, backend=resolve_backend(graph, backend),
                     workers=workers)


def core_numbers(graph: Graph | CSRGraph,
                 backend: str | None = None,
                 workers: int | None = None) -> list[int]:
    """λ₂ (max k-core number) of every vertex.

    ``backend=None`` picks the engine matching the representation passed
    in; name one explicitly to force a conversion.  ``workers`` applies
    to the ``csr-parallel`` backend and is ignored by the others.
    """
    return _peel(graph, backend, workers).lam


def degeneracy(graph: Graph | CSRGraph, backend: str | None = None,
               workers: int | None = None) -> int:
    """The graph's degeneracy: the largest core number."""
    return _peel(graph, backend, workers).max_lambda


def degeneracy_ordering(graph: Graph | CSRGraph,
                        backend: str | None = None,
                        workers: int | None = None) -> list[int]:
    """Vertices in peeling order (a degeneracy / smallest-last ordering)."""
    return _peel(graph, backend, workers).order


def k_core(graph: Graph, k: int, lam: list[int] | None = None) -> list[list[int]]:
    """All *connected* k-cores, each as a sorted vertex list.

    This is Seidman's definition: maximal connected subgraphs of minimum
    degree >= k.  Multiple components with λ₂ >= k yield multiple k-cores
    (the paper's Figure 2 situation).
    """
    if lam is None:
        lam = core_numbers(graph)
    keep = {v for v in graph.vertices() if lam[v] >= k}
    if not keep:
        return []
    sub = graph.subgraph(keep, relabel=False)
    # relabel=False keeps all n vertices; dropped ones appear as singleton
    # components of the induced subgraph and must be filtered back out.
    return [c for c in connected_components(sub) if c[0] in keep]


def k_core_subgraph(graph: Graph, k: int, lam: list[int] | None = None) -> Graph:
    """The (possibly disconnected) induced subgraph on {v : λ₂(v) >= k}.

    This is the Batagelj–Zaversnik convention most libraries implement; the
    paper points out it conflates several of Seidman's k-cores into one.
    Vertex ids are preserved (not relabelled).
    """
    if lam is None:
        lam = core_numbers(graph)
    return graph.subgraph([v for v in graph.vertices() if lam[v] >= k],
                          relabel=False)


def shells(graph: Graph, lam: list[int] | None = None) -> dict[int, list[int]]:
    """k-shells: vertices whose core number is exactly k, keyed by k."""
    if lam is None:
        lam = core_numbers(graph)
    out: dict[int, list[int]] = {}
    for v, value in enumerate(lam):
        out.setdefault(value, []).append(v)
    return out


def core_hierarchy(graph: Graph | CSRGraph, algorithm: str = "lcps",
                   backend: str | None = None,
                   workers: int | None = None) -> Decomposition:
    """Full connected-k-core hierarchy (paper's (1,2) decomposition).

    Defaults to LCPS, the paper's fastest (1,2) algorithm (Table 4).
    Routes through :func:`repro.backends.decompose`, so ``backend=`` and
    ``workers=`` behave exactly as on every other entry point.
    """
    return decompose(graph, 1, 2, algorithm=algorithm,
                     backend=backend, workers=workers)
