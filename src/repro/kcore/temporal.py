"""Temporal (k, h)-core decomposition (Wu et al., IEEE BigData'15).

The last §3.1 survey subject: in a temporal graph, entities interact
repeatedly; the (k, h)-core keeps vertices with at least k neighbours
connected by at least h interactions each.  Computationally this is a
plain core decomposition of the *h-thresholded* multigraph — which is why
the paper groups it with the weighted/probabilistic "threshold-based
adaptations" whose connectivity story is identical to the classic case.

:func:`temporal_core_numbers` gives the λ values at one ``h``;
:func:`temporal_core_profile` sweeps all meaningful h values, yielding the
(k, h) lattice the temporal-core papers tabulate.

Entry points are graph-first over
:class:`~repro.graph.temporal.TemporalGraph` and route through
:func:`repro.backends.temporal_core_peel`: the object engine materialises
the thresholded graph and peels it through the reference Set-λ engine,
while the generic-kernel engine builds **one** CSR over the distinct
interacting pairs and skips sub-threshold edges in the decrement rule —
the profile sweep reuses that single build for every ``h``.  The legacy
``(n, events, ...)`` spellings survive as deprecation shims.
"""

from __future__ import annotations

import warnings
from collections import Counter
from typing import Iterable

from repro.backends import temporal_core_peel, temporal_core_sweep
from repro.core.generic_peel import generic_peel
from repro.core.peeling import PeelingResult
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.temporal import TemporalGraph
from repro.kcore.core import k_core

__all__ = [
    "interaction_counts",
    "threshold_graph",
    "temporal_core_numbers",
    "temporal_k_core",
    "temporal_core_profile",
]


def interaction_counts(events: Iterable[tuple[int, int, int]]
                       ) -> dict[tuple[int, int], int]:
    """Count interactions per unordered pair from (u, v, timestamp) events."""
    counts: Counter[tuple[int, int]] = Counter()
    for u, v, _t in events:
        if u == v:
            continue
        counts[(u, v) if u < v else (v, u)] += 1
    return dict(counts)


def threshold_graph(n: int, events: Iterable[tuple[int, int, int]],
                    h: int) -> Graph:
    """Static graph keeping pairs with at least ``h`` interactions."""
    if h < 1:
        raise InvalidParameterError(
            f"interaction threshold h must be >= 1, got {h}")
    counts = interaction_counts(events)
    edges = [pair for pair, c in counts.items() if c >= h]
    return Graph(n, edges, name=f"temporal_h{h}")


def _kernel_temporal_core(graph: TemporalGraph, h: int) -> PeelingResult:
    """(·, h)-core peel on the generic kernel: a unit rule over the cached
    pair CSR that skips edges below the interaction threshold."""
    csr, counts = graph.csr()
    indptr, indices, eids = csr.hot_arrays()
    n = graph.n
    deg = [0] * n
    for v in range(n):
        d = 0
        for p in range(indptr[v], indptr[v + 1]):
            if counts[eids[p]] >= h:
                d += 1
        deg[v] = d

    def interacts(v: int, peeled: bytearray) -> Iterable[int]:
        for p in range(indptr[v], indptr[v + 1]):
            if counts[eids[p]] >= h:
                yield indices[p]

    return generic_peel(deg, unit_rule=interacts)


def _as_temporal(graph, events, fname: str) -> TemporalGraph:
    """Graph-first coercion with the legacy ``(n, events)`` shim."""
    if isinstance(graph, int):
        warnings.warn(
            f"{fname}(n, events, ...) is deprecated; pass "
            "TemporalGraph(n, events) instead", DeprecationWarning,
            stacklevel=3)
        if events is None:
            raise InvalidParameterError(
                f"{fname}(n, ...) needs an event list")
        return TemporalGraph(graph, events)
    if events is not None:
        raise InvalidParameterError(
            "events are part of the graph; pass TemporalGraph(n, events)")
    return graph


def temporal_core_numbers(graph, events=None, h: int = 1,
                          backend: str | None = None,
                          workers: int | None = None) -> list[int]:
    """(·, h)-core numbers: λ of every vertex in the h-thresholded graph.

    Takes a :class:`~repro.graph.temporal.TemporalGraph`; pass ``h`` by
    keyword.  The legacy ``temporal_core_numbers(n, events, h)`` spelling
    still works but emits a :class:`DeprecationWarning`.
    """
    temporal = _as_temporal(graph, events, "temporal_core_numbers")
    return temporal_core_peel(temporal, h=h, backend=backend,
                              workers=workers).lam


def temporal_k_core(graph, events_or_k=None, k: int | None = None,
                    h: int = 1,
                    backend: str | None = None,
                    workers: int | None = None) -> list[list[int]]:
    """*Connected* (k, h)-cores, each as a sorted vertex list.

    Graph-first form: ``temporal_k_core(temporal_graph, k, h=...)``.  The
    legacy ``temporal_k_core(n, events, k, h)`` spelling still works but
    emits a :class:`DeprecationWarning`.
    """
    if isinstance(graph, int):
        temporal = _as_temporal(graph, events_or_k, "temporal_k_core")
        level = k
        if level is None:
            raise InvalidParameterError(
                "temporal_k_core(n, events, ...) needs k")
    else:
        if k is not None:
            raise InvalidParameterError(
                "pass k second: temporal_k_core(graph, k, h=...)")
        temporal = _as_temporal(graph, None, "temporal_k_core")
        level = events_or_k
        if level is None:
            raise InvalidParameterError("temporal_k_core() needs k")
    lam = temporal_core_numbers(temporal, h=h, backend=backend,
                                workers=workers)
    return k_core(temporal.threshold(h), level, lam)


def temporal_core_profile(graph, events=None,
                          backend: str | None = None,
                          workers: int | None = None
                          ) -> dict[int, list[int]]:
    """λ per vertex for every h from 1 to the max interaction count.

    The profile is monotone: raising h can only lower core numbers — a
    property the tests assert.  On the kernel engine the whole sweep
    reuses one CSR build (:func:`repro.backends.temporal_core_sweep`);
    the legacy ``temporal_core_profile(n, events)`` spelling still works
    but emits a :class:`DeprecationWarning`.
    """
    temporal = _as_temporal(graph, events, "temporal_core_profile")
    sweep = temporal_core_sweep(temporal, backend=backend, workers=workers)
    return {h: result.lam for h, result in sweep.items()}
