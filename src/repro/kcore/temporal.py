"""Temporal (k, h)-core decomposition (Wu et al., IEEE BigData'15).

The last §3.1 survey subject: in a temporal graph, entities interact
repeatedly; the (k, h)-core keeps vertices with at least k neighbours
connected by at least h interactions each.  Computationally this is a
plain core decomposition of the *h-thresholded* multigraph — which is why
the paper groups it with the weighted/probabilistic "threshold-based
adaptations" whose connectivity story is identical to the classic case.

:func:`temporal_core_numbers` gives the λ values at one ``h``;
:func:`temporal_core_profile` sweeps all meaningful h values, yielding the
(k, h) lattice the temporal-core papers tabulate.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.errors import InvalidGraphError
from repro.graph.adjacency import Graph
from repro.kcore.core import core_numbers, k_core

__all__ = [
    "interaction_counts",
    "threshold_graph",
    "temporal_core_numbers",
    "temporal_k_core",
    "temporal_core_profile",
]


def interaction_counts(events: Iterable[tuple[int, int, int]]
                       ) -> dict[tuple[int, int], int]:
    """Count interactions per unordered pair from (u, v, timestamp) events."""
    counts: Counter[tuple[int, int]] = Counter()
    for u, v, _t in events:
        if u == v:
            continue
        counts[(u, v) if u < v else (v, u)] += 1
    return dict(counts)


def threshold_graph(n: int, events: Iterable[tuple[int, int, int]],
                    h: int) -> Graph:
    """Static graph keeping pairs with at least ``h`` interactions."""
    if h < 1:
        raise InvalidGraphError(f"interaction threshold must be >= 1, got {h}")
    counts = interaction_counts(events)
    edges = [pair for pair, c in counts.items() if c >= h]
    return Graph(n, edges, name=f"temporal_h{h}")


def temporal_core_numbers(n: int, events: Iterable[tuple[int, int, int]],
                          h: int = 1) -> list[int]:
    """(·, h)-core numbers: λ of every vertex in the h-thresholded graph."""
    return core_numbers(threshold_graph(n, list(events), h))


def temporal_k_core(n: int, events: Iterable[tuple[int, int, int]],
                    k: int, h: int = 1) -> list[list[int]]:
    """*Connected* (k, h)-cores, each as a sorted vertex list."""
    graph = threshold_graph(n, list(events), h)
    return k_core(graph, k)


def temporal_core_profile(n: int, events: Iterable[tuple[int, int, int]]
                          ) -> dict[int, list[int]]:
    """λ per vertex for every h from 1 to the max interaction count.

    The profile is monotone: raising h can only lower core numbers — a
    property the tests assert.
    """
    event_list = list(events)
    counts = interaction_counts(event_list)
    if not counts:
        return {1: [0] * n}
    max_h = max(counts.values())
    return {h: temporal_core_numbers(n, event_list, h)
            for h in range(1, max_h + 1)}
