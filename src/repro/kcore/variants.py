"""Weighted and directed core decompositions (paper §3.1 survey subjects).

The survey points out that the weighted (Giatsidis et al.) and directed
(D-cores) adaptations of k-core inherit the same oversight: they compute
per-vertex numbers but leave connectivity — hence subgraph extraction and
hierarchy — undefined.  This module implements the peeling side of both,
plus the connectivity-aware extraction the paper argues they need:

* :func:`weighted_core_numbers` — peel by weighted degree (sum of incident
  edge weights); λʷ(v) is the largest w such that v survives when vertices
  of weighted degree < w are iteratively removed;
* :func:`weighted_k_core` — the *connected* weighted cores at threshold w;
* :func:`directed_core_numbers` — (in, out) D-core numbers of a
  :class:`~repro.graph.directed.DirectedGraph`, via independent in-degree
  and out-degree peelings.

Both decompositions route through :mod:`repro.backends` with the standard
``backend=``/``workers=`` dispatch: the object engine is the set/heap
reference implementation, everything else runs on the generic flat peel
kernel (:mod:`repro.core.generic_peel`) — weighted degrees through float
heap buckets, D-cores through the unit-decrement block-swap layout.
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque
from typing import Iterable

from repro.backends import (
    as_object,
    directed_core_peel,
    weighted_core_peel,
)
from repro.core.generic_peel import generic_peel
from repro.core.peeling import PeelingResult
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.directed import DirectedGraph
from repro.kcore.params import EdgeValues

__all__ = [
    "weighted_core_numbers",
    "weighted_k_core",
    "directed_core_numbers",
]


def _object_weighted_core(graph: Graph, wlist: list[float]) -> PeelingResult:
    """Reference weighted-degree peel on the object engine (heap over
    adjacency sets, one edge-index lookup per decrement)."""
    index = graph.edge_index
    wdeg = [0.0] * graph.n
    for eid in range(len(index)):
        u, v = index.endpoints(eid)
        wdeg[u] += wlist[eid]
        wdeg[v] += wlist[eid]

    lam = [0.0] * graph.n
    removed = [False] * graph.n
    order: list[int] = []
    heap = [(wdeg[v], v) for v in graph.vertices()]
    heapq.heapify(heap)
    current = 0.0
    while heap:
        degree, v = heapq.heappop(heap)
        if removed[v] or degree != wdeg[v]:
            continue
        removed[v] = True
        order.append(v)
        current = max(current, degree)
        lam[v] = current
        for u in graph.neighbors(v):
            if not removed[u]:
                wdeg[u] -= wlist[index.id_of(u, v)]
                heapq.heappush(heap, (wdeg[u], u))
    return PeelingResult(lam=lam, max_lambda=current, order=order)


def _kernel_weighted_core(csr, wlist: list[float]) -> PeelingResult:
    """Weighted-degree peel on the generic flat kernel: a revalue rule
    subtracting the aligned edge weight, float heap buckets."""
    indptr, indices, eids = csr.hot_arrays()
    n = csr.n
    wdeg = [0.0] * n
    for v in range(n):
        total = 0.0
        for p in range(indptr[v], indptr[v + 1]):
            total += wlist[eids[p]]
        wdeg[v] = total

    def lighten(v: int, k, peeled: bytearray, current: list):
        for p in range(indptr[v], indptr[v + 1]):
            w = indices[p]
            if not peeled[w]:
                yield w, current[w] - wlist[eids[p]]

    return generic_peel(wdeg, revalue_rule=lighten, bucket="heap")


def weighted_core_numbers(graph, weights: EdgeValues,
                          backend: str | None = None,
                          workers: int | None = None) -> list[float]:
    """Weighted core number λʷ of every vertex.

    Generalised peeling: repeatedly remove the vertex of minimum weighted
    degree; λʷ(v) is the running maximum of the minimum at removal time
    (exactly the Matula–Beck recurrence with real-valued degrees, so heap
    buckets replace the unit-decrement bucket queue).  Routed through
    :func:`repro.backends.weighted_core_peel`; ``weights`` is a mapping
    keyed by endpoint pair or a sequence indexed by edge id.
    """
    return weighted_core_peel(graph, weights, backend=backend,
                              workers=workers).lam


def weighted_k_core(graph, threshold: float,
                    weights: EdgeValues,
                    lam: list[float] | None = None,
                    backend: str | None = None,
                    workers: int | None = None) -> list[list[int]]:
    """*Connected* weighted cores: components of {v : λʷ(v) >= threshold}.

    The connectivity step the paper's survey says weighted adaptations
    leave out.  ``backend=``/``workers=`` select the engine computing λʷ
    when ``lam`` is not supplied; the component extraction itself runs on
    the object representation.
    """
    obj = as_object(graph)
    if lam is None:
        lam = weighted_core_numbers(graph, weights, backend=backend,
                                    workers=workers)
    keep = {v for v in obj.vertices() if lam[v] >= threshold}
    seen: set[int] = set()
    out: list[list[int]] = []
    for start in sorted(keep):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in obj.neighbors(u):
                if w in keep and w not in seen:
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        out.append(sorted(component))
    return out


def _object_directed_core(graph: DirectedGraph
                          ) -> tuple[PeelingResult, PeelingResult]:
    """Reference D-core peels on per-vertex predecessor/successor sets."""
    n = graph.n
    preds: list[set[int]] = [set() for _ in range(n)]
    succs: list[set[int]] = [set() for _ in range(n)]
    for u, v in graph.arcs():
        succs[u].add(v)
        preds[v].add(u)

    def peel_direction(degree_sets: list[set[int]],
                       other_sets: list[set[int]]) -> PeelingResult:
        degree = [len(s) for s in degree_sets]
        lam = [0] * n
        removed = [False] * n
        order: list[int] = []
        heap = [(degree[v], v) for v in range(n)]
        heapq.heapify(heap)
        current = 0
        while heap:
            d, v = heapq.heappop(heap)
            if removed[v] or d != degree[v]:
                continue
            removed[v] = True
            order.append(v)
            current = max(current, d)
            lam[v] = current
            # removing v lowers the peeled degree of vertices it feeds
            for w in other_sets[v]:
                if not removed[w]:
                    degree[w] -= 1
                    heapq.heappush(heap, (degree[w], w))
        return PeelingResult(lam=lam, max_lambda=current, order=order)

    # in-degree peeling: removing v decrements in-degree of v's successors
    in_result = peel_direction(preds, succs)
    out_result = peel_direction(succs, preds)
    return in_result, out_result


def _kernel_directed_core(graph: DirectedGraph
                          ) -> tuple[PeelingResult, PeelingResult]:
    """D-core peels on the generic kernel: two unit-rule peels over the
    flat successor/predecessor arrays."""
    sptr, sidx = graph.succ_arrays()
    pptr, pidx = graph.pred_arrays()

    def feeds(v: int, peeled: bytearray) -> Iterable[int]:
        return (sidx[p] for p in range(sptr[v], sptr[v + 1]))

    def fed_by(v: int, peeled: bytearray) -> Iterable[int]:
        return (pidx[p] for p in range(pptr[v], pptr[v + 1]))

    # in-degree peeling: removing v decrements in-degree of v's successors
    in_result = generic_peel(graph.in_degrees(), unit_rule=feeds)
    out_result = generic_peel(graph.out_degrees(), unit_rule=fed_by)
    return in_result, out_result


def directed_core_numbers(graph, arcs=None,
                          backend: str | None = None,
                          workers: int | None = None
                          ) -> tuple[list[int], list[int]]:
    """D-core style (in, out) core numbers of a directed graph.

    Peels by in-degree and by out-degree independently, returning one
    number per vertex for each direction.  The paper notes that even the
    *semantics* of connectivity is unresolved for directed cores, so no
    hierarchy is attempted — this mirrors what the D-core literature
    actually defines.

    Takes a :class:`~repro.graph.directed.DirectedGraph`.  The legacy
    ``directed_core_numbers(n, arcs)`` spelling still works but emits a
    :class:`DeprecationWarning`.
    """
    if isinstance(graph, int):
        warnings.warn(
            "directed_core_numbers(n, arcs) is deprecated; pass "
            "DirectedGraph(n, arcs) instead", DeprecationWarning,
            stacklevel=2)
        if arcs is None:
            raise InvalidParameterError(
                "directed_core_numbers(n, ...) needs an arc list")
        graph = DirectedGraph(graph, arcs)
    elif arcs is not None:
        raise InvalidParameterError(
            "arcs are part of the graph; pass DirectedGraph(n, arcs)")
    in_result, out_result = directed_core_peel(graph, backend=backend,
                                               workers=workers)
    return in_result.lam, out_result.lam
