"""Weighted and directed core decompositions (paper §3.1 survey subjects).

The survey points out that the weighted (Giatsidis et al.) and directed
(D-cores) adaptations of k-core inherit the same oversight: they compute
per-vertex numbers but leave connectivity — hence subgraph extraction and
hierarchy — undefined.  This module implements the peeling side of both,
plus the connectivity-aware extraction the paper argues they need:

* :func:`weighted_core_numbers` — peel by weighted degree (sum of incident
  edge weights); λʷ(v) is the largest w such that v survives when vertices
  of weighted degree < w are iteratively removed;
* :func:`weighted_k_core` — the *connected* weighted cores at threshold w;
* :func:`directed_core_numbers` — (in, out) D-core numbers of a directed
  edge list, via independent in-degree and out-degree peelings.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.errors import InvalidGraphError, InvalidParameterError
from repro.graph.adjacency import Graph

__all__ = [
    "weighted_core_numbers",
    "weighted_k_core",
    "directed_core_numbers",
]


def _edge_weights(graph: Graph,
                  weights: Mapping[tuple[int, int], float] | Sequence[float]
                  ) -> list[float]:
    """Normalise weights to a per-edge-id list."""
    index = graph.edge_index
    if isinstance(weights, Mapping):
        out = []
        for eid in range(len(index)):
            u, v = index.endpoints(eid)
            if (u, v) in weights:
                out.append(float(weights[(u, v)]))
            elif (v, u) in weights:
                out.append(float(weights[(v, u)]))
            else:
                raise InvalidParameterError(f"missing weight for edge ({u},{v})")
        return out
    out = [float(w) for w in weights]
    if len(out) != len(index):
        raise InvalidParameterError(
            f"expected {len(index)} weights, got {len(out)}")
    return out


def weighted_core_numbers(graph: Graph,
                          weights: Mapping[tuple[int, int], float] | Sequence[float]
                          ) -> list[float]:
    """Weighted core number λʷ of every vertex.

    Generalised peeling: repeatedly remove the vertex of minimum weighted
    degree; λʷ(v) is the running maximum of the minimum at removal time
    (exactly the Matula–Beck recurrence with real-valued degrees, so a heap
    replaces the bucket queue).
    """
    wlist = _edge_weights(graph, weights)
    if any(w < 0 for w in wlist):
        raise InvalidParameterError("edge weights must be non-negative")
    index = graph.edge_index
    wdeg = [0.0] * graph.n
    for eid in range(len(index)):
        u, v = index.endpoints(eid)
        wdeg[u] += wlist[eid]
        wdeg[v] += wlist[eid]

    lam = [0.0] * graph.n
    removed = [False] * graph.n
    heap = [(wdeg[v], v) for v in graph.vertices()]
    heapq.heapify(heap)
    current = 0.0
    seen = 0
    while heap and seen < graph.n:
        degree, v = heapq.heappop(heap)
        if removed[v] or degree != wdeg[v]:
            continue
        removed[v] = True
        seen += 1
        current = max(current, degree)
        lam[v] = current
        for u in graph.neighbors(v):
            if not removed[u]:
                wdeg[u] -= wlist[index.id_of(u, v)]
                heapq.heappush(heap, (wdeg[u], u))
    return lam


def weighted_k_core(graph: Graph, threshold: float,
                    weights: Mapping[tuple[int, int], float] | Sequence[float],
                    lam: list[float] | None = None) -> list[list[int]]:
    """*Connected* weighted cores: components of {v : λʷ(v) >= threshold}.

    The connectivity step the paper's survey says weighted adaptations
    leave out.
    """
    if lam is None:
        lam = weighted_core_numbers(graph, weights)
    keep = {v for v in graph.vertices() if lam[v] >= threshold}
    seen: set[int] = set()
    out: list[list[int]] = []
    for start in sorted(keep):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if w in keep and w not in seen:
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        out.append(sorted(component))
    return out


def directed_core_numbers(n: int, arcs: Iterable[tuple[int, int]]
                          ) -> tuple[list[int], list[int]]:
    """D-core style (in, out) core numbers of a directed graph.

    Peels by in-degree and by out-degree independently, returning one
    number per vertex for each direction.  The paper notes that even the
    *semantics* of connectivity is unresolved for directed cores, so no
    hierarchy is attempted — this mirrors what the D-core literature
    actually defines.
    """
    preds: list[set[int]] = [set() for _ in range(n)]
    succs: list[set[int]] = [set() for _ in range(n)]
    for u, v in arcs:
        if u == v:
            continue
        if not (0 <= u < n and 0 <= v < n):
            raise InvalidGraphError(f"arc ({u}, {v}) out of range for n={n}")
        succs[u].add(v)
        preds[v].add(u)

    def peel_direction(degree_sets: list[set[int]],
                       other_sets: list[set[int]]) -> list[int]:
        degree = [len(s) for s in degree_sets]
        lam = [0] * n
        removed = [False] * n
        heap = [(degree[v], v) for v in range(n)]
        heapq.heapify(heap)
        current = 0
        while heap:
            d, v = heapq.heappop(heap)
            if removed[v] or d != degree[v]:
                continue
            removed[v] = True
            current = max(current, d)
            lam[v] = current
            # removing v lowers the peeled degree of vertices it feeds
            for w in other_sets[v]:
                if not removed[w]:
                    degree[w] -= 1
                    heapq.heappush(heap, (degree[w], w))
        return lam

    # in-degree peeling: removing v decrements in-degree of v's successors
    in_core = peel_direction(preds, succs)
    out_core = peel_direction(succs, preds)
    return in_core, out_core
