"""Temporal (k, h)-cores."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidGraphError, InvalidParameterError
from repro.graph.temporal import TemporalGraph
from repro.kcore import core_numbers
from repro.kcore.temporal import (
    interaction_counts,
    temporal_core_numbers,
    temporal_core_profile,
    temporal_k_core,
    threshold_graph,
)

from _graphs import small_graphs


def triangle_events():
    """A triangle talked through at different intensities."""
    return ([(0, 1, t) for t in range(5)] +      # 5 interactions
            [(1, 2, t) for t in range(3)] +      # 3
            [(0, 2, t) for t in range(1)])       # 1


def triangle():
    return TemporalGraph(3, triangle_events())


class TestInteractionCounts:
    def test_counts(self):
        counts = interaction_counts(triangle_events())
        assert counts == {(0, 1): 5, (1, 2): 3, (0, 2): 1}

    def test_orientation_merged(self):
        assert interaction_counts([(1, 0, 0), (0, 1, 1)]) == {(0, 1): 2}

    def test_self_interactions_dropped(self):
        assert interaction_counts([(2, 2, 0)]) == {}


class TestTemporalGraph:
    def test_counts_and_shape(self):
        g = triangle()
        assert g.n == 3
        assert g.m == 3
        assert g.max_count == 5
        assert g.interaction_counts() == {(0, 1): 5, (1, 2): 3, (0, 2): 1}

    def test_out_of_range_event(self):
        with pytest.raises(InvalidGraphError):
            TemporalGraph(2, [(0, 5, 0)])

    def test_threshold_materialises_static_graph(self):
        g = triangle().threshold(2)
        assert g.m == 2
        assert not g.has_edge(0, 2)

    def test_threshold_invalid_h(self):
        with pytest.raises(InvalidParameterError):
            triangle().threshold(0)

    def test_csr_is_cached(self):
        g = triangle()
        csr_a, counts_a = g.csr()
        csr_b, counts_b = g.csr()
        assert csr_a is csr_b and counts_a is counts_b
        assert sorted(counts_a) == [1, 3, 5]

    def test_empty(self):
        g = TemporalGraph(4, [])
        assert g.m == 0
        assert g.max_count == 0


class TestThresholdGraph:
    def test_h1_keeps_all(self):
        g = threshold_graph(3, triangle_events(), 1)
        assert g.m == 3

    def test_h2_drops_weak_edge(self):
        g = threshold_graph(3, triangle_events(), 2)
        assert g.m == 2
        assert not g.has_edge(0, 2)

    def test_invalid_h(self):
        with pytest.raises(InvalidParameterError):
            threshold_graph(3, [], 0)


class TestTemporalCores:
    def test_h1_is_static_core(self):
        lam = temporal_core_numbers(triangle(), h=1)
        assert lam == [2, 2, 2]

    def test_h2_breaks_triangle(self):
        lam = temporal_core_numbers(triangle(), h=2)
        assert lam == [1, 1, 1]  # a path remains

    def test_h_above_everything(self):
        lam = temporal_core_numbers(triangle(), h=6)
        assert lam == [0, 0, 0]

    def test_invalid_h(self):
        with pytest.raises(InvalidParameterError):
            temporal_core_numbers(triangle(), h=0)

    def test_requires_temporal_graph(self):
        with pytest.raises(InvalidParameterError):
            temporal_core_numbers(triangle().threshold(1))

    def test_connected_temporal_cores(self):
        events = triangle_events() + [(3, 4, 0), (3, 4, 1),
                                      (4, 5, 0), (4, 5, 1), (3, 5, 0), (3, 5, 1)]
        g = TemporalGraph(6, events)
        cores = temporal_k_core(g, 2, h=1)
        assert cores == [[0, 1, 2], [3, 4, 5]]
        assert temporal_k_core(g, 2, h=2) == [[3, 4, 5]]

    def test_object_backend_matches_kernel(self):
        g = triangle()
        for h in (1, 2, 5):
            assert temporal_core_numbers(g, h=h, backend="object") == \
                temporal_core_numbers(g, h=h, backend="csr")

    def test_disk_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            temporal_core_numbers(triangle(), backend="disk")


class TestProfile:
    def test_profile_levels(self):
        profile = temporal_core_profile(triangle())
        assert sorted(profile) == [1, 2, 3, 4, 5]
        assert profile[1] == [2, 2, 2]
        assert profile[5] == [1, 1, 0]

    def test_empty_events(self):
        assert temporal_core_profile(TemporalGraph(4, [])) == {1: [0, 0, 0, 0]}

    def test_profile_monotone_in_h(self):
        profile = temporal_core_profile(triangle())
        hs = sorted(profile)
        for h_low, h_high in zip(hs, hs[1:]):
            assert all(a >= b for a, b in zip(profile[h_low], profile[h_high]))

    def test_object_backend_matches_kernel(self):
        g = triangle()
        assert temporal_core_profile(g, backend="object") == \
            temporal_core_profile(g)


class TestDeprecatedForms:
    """The pre-0.8 ``(n, events, ...)`` signatures still work, loudly."""

    def test_core_numbers_shim(self):
        with pytest.warns(DeprecationWarning, match="TemporalGraph"):
            lam = temporal_core_numbers(3, triangle_events(), h=2)
        assert lam == temporal_core_numbers(triangle(), h=2)

    def test_k_core_shim(self):
        with pytest.warns(DeprecationWarning, match="TemporalGraph"):
            cores = temporal_k_core(3, triangle_events(), k=1, h=2)
        assert cores == temporal_k_core(triangle(), 1, h=2)

    def test_profile_shim(self):
        with pytest.warns(DeprecationWarning, match="TemporalGraph"):
            profile = temporal_core_profile(3, triangle_events())
        assert profile == temporal_core_profile(triangle())

    def test_events_with_graph_rejected(self):
        with pytest.raises(InvalidParameterError):
            temporal_core_numbers(triangle(), triangle_events())


@given(small_graphs(max_n=10), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_replicated_events_shift_threshold(g, copies):
    """Each edge repeated `copies` times: h <= copies gives the static core."""
    events = [(u, v, t) for u, v in g.edges() for t in range(copies)]
    tg = TemporalGraph(g.n, events)
    lam = temporal_core_numbers(tg, h=copies)
    assert lam == core_numbers(g)
    assert temporal_core_numbers(tg, h=copies + 1) == [0] * g.n


@given(small_graphs(max_n=10), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_kernel_matches_object_reference(g, copies):
    """λ parity: the generic-peel kernel equals the per-h object rebuild."""
    events = [(u, v, t) for u, v in g.edges() for t in range(1 + (u + v) % copies)]
    tg = TemporalGraph(g.n, events)
    for h in range(1, max(tg.max_count, 1) + 1):
        assert temporal_core_numbers(tg, h=h, backend="csr") == \
            temporal_core_numbers(tg, h=h, backend="object")
