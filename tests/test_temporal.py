"""Temporal (k, h)-cores."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidGraphError
from repro.kcore import core_numbers
from repro.kcore.temporal import (
    interaction_counts,
    temporal_core_numbers,
    temporal_core_profile,
    temporal_k_core,
    threshold_graph,
)

from _graphs import small_graphs


def triangle_events():
    """A triangle talked through at different intensities."""
    return ([(0, 1, t) for t in range(5)] +      # 5 interactions
            [(1, 2, t) for t in range(3)] +      # 3
            [(0, 2, t) for t in range(1)])       # 1


class TestInteractionCounts:
    def test_counts(self):
        counts = interaction_counts(triangle_events())
        assert counts == {(0, 1): 5, (1, 2): 3, (0, 2): 1}

    def test_orientation_merged(self):
        assert interaction_counts([(1, 0, 0), (0, 1, 1)]) == {(0, 1): 2}

    def test_self_interactions_dropped(self):
        assert interaction_counts([(2, 2, 0)]) == {}


class TestThresholdGraph:
    def test_h1_keeps_all(self):
        g = threshold_graph(3, triangle_events(), 1)
        assert g.m == 3

    def test_h2_drops_weak_edge(self):
        g = threshold_graph(3, triangle_events(), 2)
        assert g.m == 2
        assert not g.has_edge(0, 2)

    def test_invalid_h(self):
        with pytest.raises(InvalidGraphError):
            threshold_graph(3, [], 0)


class TestTemporalCores:
    def test_h1_is_static_core(self):
        lam = temporal_core_numbers(3, triangle_events(), h=1)
        assert lam == [2, 2, 2]

    def test_h2_breaks_triangle(self):
        lam = temporal_core_numbers(3, triangle_events(), h=2)
        assert lam == [1, 1, 1]  # a path remains

    def test_h_above_everything(self):
        lam = temporal_core_numbers(3, triangle_events(), h=6)
        assert lam == [0, 0, 0]

    def test_connected_temporal_cores(self):
        events = triangle_events() + [(3, 4, 0), (3, 4, 1),
                                      (4, 5, 0), (4, 5, 1), (3, 5, 0), (3, 5, 1)]
        cores = temporal_k_core(6, events, k=2, h=1)
        assert cores == [[0, 1, 2], [3, 4, 5]]
        assert temporal_k_core(6, events, k=2, h=2) == [[3, 4, 5]]


class TestProfile:
    def test_profile_levels(self):
        profile = temporal_core_profile(3, triangle_events())
        assert sorted(profile) == [1, 2, 3, 4, 5]
        assert profile[1] == [2, 2, 2]
        assert profile[5] == [1, 1, 0]

    def test_empty_events(self):
        assert temporal_core_profile(4, []) == {1: [0, 0, 0, 0]}

    def test_profile_monotone_in_h(self):
        profile = temporal_core_profile(3, triangle_events())
        hs = sorted(profile)
        for h_low, h_high in zip(hs, hs[1:]):
            assert all(a >= b for a, b in zip(profile[h_low], profile[h_high]))


@given(small_graphs(max_n=10), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_replicated_events_shift_threshold(g, copies):
    """Each edge repeated `copies` times: h <= copies gives the static core."""
    events = [(u, v, t) for u, v in g.edges() for t in range(copies)]
    lam = temporal_core_numbers(g.n, events, h=copies)
    assert lam == core_numbers(g)
    assert temporal_core_numbers(g.n, events, h=copies + 1) == [0] * g.n
