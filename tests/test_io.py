"""Graph IO round-trips and malformed-input handling."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import generators
from repro.graph.adjacency import Graph
from repro.graph.io import (
    dedup_edges,
    load_edge_list,
    load_graph,
    load_json,
    load_mtx,
    relabel_edges,
    save_edge_list,
    save_json,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = generators.powerlaw_cluster(50, 3, 0.4, seed=3)
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.n == g.n
        assert loaded.m == g.m

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% also comment\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.m == 2

    def test_string_ids_relabelled(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob\nbob carol\n")
        g = load_edge_list(path)
        assert g.n == 3
        assert g.m == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert load_edge_list(path).m == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path).name == "mygraph"


class TestMtx:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% comment\n"
            "3 3 2\n"
            "2 1\n"
            "3 2\n")
        g = load_mtx(path)
        assert g.n == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("3 3 1\n1 2\n")
        with pytest.raises(GraphFormatError):
            load_mtx(path)

    def test_diagonal_dropped(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                        "2 2 2\n1 1\n1 2\n")
        assert load_mtx(path).m == 1

    def test_out_of_range_raises(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                        "2 2 1\n1 5\n")
        with pytest.raises(GraphFormatError):
            load_mtx(path)


class TestJson:
    def test_round_trip(self, tmp_path):
        g = Graph(4, [(0, 1), (2, 3)], name="jj")
        path = tmp_path / "g.json"
        save_json(g, path)
        loaded = load_json(path)
        assert loaded == g
        assert loaded.name == "jj"

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"edges": "nope"}')
        with pytest.raises(GraphFormatError):
            load_json(path)


class TestDispatch:
    def test_by_extension(self, tmp_path):
        g = Graph(3, [(0, 1)])
        for name in ("g.txt", "g.json"):
            path = tmp_path / name
            (save_json if name.endswith("json") else save_edge_list)(g, path)
            assert load_graph(path).m == 1

    def test_mtx_dispatch(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                        "2 2 1\n1 2\n")
        assert load_graph(path).m == 1


class TestRelabel:
    def test_first_seen_order(self):
        n, edges = relabel_edges([("x", "y"), ("y", "z")])
        assert n == 3
        assert edges == [(0, 1), (1, 2)]

    def test_self_loops_skipped(self):
        n, edges = relabel_edges([("a", "a"), ("a", "b")])
        assert n == 2
        assert edges == [(0, 1)]


class TestDedup:
    def test_relabel_drops_exact_duplicates(self):
        n, edges = relabel_edges([(5, 7), (5, 7), (5, 7)])
        assert n == 2
        assert edges == [(0, 1)]

    def test_relabel_drops_reversed_duplicates(self):
        n, edges = relabel_edges([(5, 7), (7, 5), (5, 7)])
        assert n == 2
        assert edges == [(0, 1)]

    def test_relabel_keeps_first_seen_orientation(self):
        _, edges = relabel_edges([("b", "a"), ("a", "b"), ("a", "c")])
        assert edges == [(0, 1), (1, 2)]

    def test_dedup_edges_helper(self):
        assert dedup_edges([(3, 1), (1, 3), (3, 1), (0, 2)]) == \
            [(3, 1), (0, 2)]

    def test_edge_list_loader_dedups(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("5 7\n7 5\n5 7\n7 9\n")
        g = load_edge_list(path)
        assert g.n == 3
        assert g.m == 2

    def test_mtx_both_orientations_one_edge(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                        "3 3 4\n1 2\n2 1\n2 3\n3 2\n")
        g = load_mtx(path)
        assert g.m == 2
