"""Cross-backend parity for the CSR-native hierarchy paths.

PR 1 proved λ parity for the peels; this suite pins down the full
hierarchy story: direct CSR FND (1,2)/(2,3)/(3,4) against the object
engine, LCPS-on-CSR against LCPS-on-object, condensed LCPS against DFT
(the empty-bracket-chain regression), the (3,4) direct peel elementwise,
and the backend-dispatch defaults (``backend=None`` follows the input
representation — the PR 1 regression where a ``CSRGraph`` silently fell
back to the object engine).
"""

import pytest
from hypothesis import given, settings

import repro.backends as backends
from repro.backends import (
    as_csr,
    core_peel,
    decompose,
    nucleus34_peel,
    truss_peel,
)
from repro.core.csr_fnd import csr_fnd_decomposition
from repro.core.csr_peel import csr_core_peel
from repro.core.decomposition import nucleus_decomposition
from repro.core.fnd import fnd_decomposition
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import peel
from repro.core.views import build_view
from repro.errors import InvalidParameterError
from repro.examples_graphs import figure2_graph, figure4_graph, figure5_graph
from repro.graph import generators
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

from _graphs import dense_small_graphs, small_graphs

FIXED_GRAPHS = [
    Graph.empty(0),                                   # empty
    Graph.empty(5),                                   # vertices, no edges
    Graph(6, [(0, 1), (2, 3), (4, 5)]),               # triangle-free matching
    generators.star(7),                               # triangle-free, one hub
    Graph(8, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)]),  # disconnected
    figure2_graph(),
    figure4_graph(),
    figure5_graph(),
    generators.ring_of_cliques(4, 5),
    generators.planted_cliques(3, 6, bridge_edges=2, seed=1),
    generators.powerlaw_cluster(120, 5, 0.6, seed=4),
]


def condensed_signature(hierarchy):
    """(k, member cells) of every condensed nucleus node — the node λ
    multiset plus the cell→nucleus map in one comparable value."""
    tree = hierarchy.condense()
    return sorted((node.k, tuple(sorted(tree.subtree_cells(node.id))))
                  for node in tree.nodes)


# ---------------------------------------------------------------------------
# FND: direct CSR vs object engine
# ---------------------------------------------------------------------------
class TestCsrFndParity:
    @pytest.mark.parametrize("rs", [(1, 2), (2, 3), (3, 4)],
                             ids=["12", "23", "34"])
    def test_fixed_graphs(self, rs):
        r, s = rs
        for g in FIXED_GRAPHS:
            obj = decompose(g, r, s, algorithm="fnd", backend="object")
            csr = decompose(as_csr(g), r, s, algorithm="fnd")
            assert obj.lam == csr.lam, g.name
            csr.hierarchy.validate()
            assert condensed_signature(obj.hierarchy) == \
                condensed_signature(csr.hierarchy), g.name

    def test_no_object_graph_constructed(self, monkeypatch):
        """`decompose(csr, algorithm="fnd")` must never convert back."""
        csr = as_csr(generators.planted_cliques(2, 5, seed=3))
        monkeypatch.setattr(CSRGraph, "to_object", lambda self: pytest.fail(
            "direct CSR FND converted the graph back to the object engine"))
        for r, s in ((1, 2), (2, 3), (3, 4)):
            result = decompose(csr, r, s, algorithm="fnd")
            assert result.graph is csr
            result.hierarchy.validate()

    def test_view_reports_cells_without_reenumeration(self):
        g = generators.planted_cliques(2, 6, bridge_edges=0, seed=1)
        obj = decompose(g, 3, 4, algorithm="fnd", backend="object")
        csr = decompose(as_csr(g), 3, 4, algorithm="fnd")
        cells = range(obj.view.num_cells)
        assert [obj.view.cell_vertices(c) for c in cells] == \
            [csr.view.cell_vertices(c) for c in cells]
        # coface queries still work on the reused-enumeration view
        assert sorted(csr.view.cofaces(0)) == sorted(obj.view.cofaces(0))

    def test_unsupported_rs_rejected(self):
        csr = as_csr(generators.complete_graph(5))
        with pytest.raises(InvalidParameterError):
            csr_fnd_decomposition(csr, 1, 3)

    def test_instrumentation_matches_structure(self):
        from repro.core.fnd import FndInstrumentation

        g = generators.powerlaw_cluster(80, 4, 0.5, seed=2)
        stats = FndInstrumentation()
        _, hierarchy, _ = csr_fnd_decomposition(as_csr(g), 1, 2,
                                                instrumentation=stats)
        assert stats.num_subnuclei == hierarchy.num_subnuclei

    @given(small_graphs(max_n=11))
    @settings(max_examples=40, deadline=None)
    def test_12_random(self, g):
        obj = decompose(g, 1, 2, algorithm="fnd", backend="object")
        csr = decompose(as_csr(g), 1, 2, algorithm="fnd")
        assert obj.lam == csr.lam
        assert condensed_signature(obj.hierarchy) == \
            condensed_signature(csr.hierarchy)

    @given(dense_small_graphs(max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_23_34_random(self, g):
        for r, s in ((2, 3), (3, 4)):
            obj = decompose(g, r, s, algorithm="fnd", backend="object")
            csr = decompose(as_csr(g), r, s, algorithm="fnd")
            assert obj.lam == csr.lam
            csr.hierarchy.validate()
            assert condensed_signature(obj.hierarchy) == \
                condensed_signature(csr.hierarchy)


# ---------------------------------------------------------------------------
# (3,4) direct peel: λ arrays elementwise
# ---------------------------------------------------------------------------
class TestNucleus34Peel:
    def test_fixed_graphs_elementwise(self):
        for g in FIXED_GRAPHS:
            assert nucleus34_peel(g).lam == nucleus34_peel(as_csr(g)).lam, \
                g.name

    @given(dense_small_graphs(max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_random_elementwise(self, g):
        direct = nucleus34_peel(as_csr(g))
        generic = peel(build_view(g, 3, 4))
        assert direct.lam == generic.lam
        assert direct.max_lambda == generic.max_lambda


# ---------------------------------------------------------------------------
# LCPS: CSR traversal and the empty-bracket-chain fix
# ---------------------------------------------------------------------------
class TestLcpsCsr:
    def test_fixed_graphs_csr_vs_object(self):
        for g in FIXED_GRAPHS:
            obj = decompose(g, 1, 2, algorithm="lcps", backend="object")
            csr = decompose(as_csr(g), 1, 2, algorithm="lcps")
            assert obj.lam == csr.lam, g.name
            csr.hierarchy.validate()
            assert condensed_signature(obj.hierarchy) == \
                condensed_signature(csr.hierarchy), g.name

    def test_deep_component_has_no_empty_chain(self):
        """A component whose minimum λ is k > 1 must not grow k-1 empty
        intermediate nodes (the open_node(1, ...) regression)."""
        g = generators.complete_graph(5)  # single component, min lambda 4
        h = nucleus_decomposition(g, 1, 2, algorithm="lcps").hierarchy
        # skeleton: exactly one λ=4 node plus the root
        assert sorted(h.node_lambda) == [0, 4]
        tree = h.condense()
        assert sorted(n.k for n in tree.nodes) == [0, 4]
        for node in tree.nodes:
            assert node.own_cells or node.id == tree.root

    def test_skipped_level_between_cores_is_spliced(self):
        """Two K4s joined by a path: no empty λ=2 bracket nodes survive."""
        g = figure2_graph()
        h = nucleus_decomposition(g, 1, 2, algorithm="lcps").hierarchy
        for node in range(h.num_nodes):
            if node != h.root:
                assert h.members(node), "member-less chain node survived"

    def test_condensed_nodes_match_dft_fixed(self):
        for g in FIXED_GRAPHS:
            lcps = nucleus_decomposition(g, 1, 2, algorithm="lcps").hierarchy
            dft = nucleus_decomposition(g, 1, 2, algorithm="dft").hierarchy
            assert condensed_signature(lcps) == condensed_signature(dft), \
                g.name

    @given(small_graphs(max_n=11))
    @settings(max_examples=40, deadline=None)
    def test_condensed_nodes_match_dft_random(self, g):
        lcps = nucleus_decomposition(g, 1, 2, algorithm="lcps").hierarchy
        lcps.validate()
        dft = nucleus_decomposition(g, 1, 2, algorithm="dft").hierarchy
        assert condensed_signature(lcps) == condensed_signature(dft)

    @given(small_graphs(max_n=11))
    @settings(max_examples=30, deadline=None)
    def test_csr_vs_object_random(self, g):
        csr = as_csr(g)
        peeling = csr_core_peel(csr)
        on_csr = lcps_hierarchy(csr, peeling)
        on_obj = lcps_hierarchy(g, peeling)
        on_csr.validate()
        assert condensed_signature(on_csr) == condensed_signature(on_obj)


# ---------------------------------------------------------------------------
# dispatch defaults: backend=None follows the input representation
# ---------------------------------------------------------------------------
class TestDispatchDefaults:
    def test_core_peel_csr_input_runs_csr_engine(self, monkeypatch):
        """Regression: `core_peel(as_csr(g))` used to silently convert back
        and run the object engine (`backend` defaulted to "object")."""
        calls = []
        real = backends.csr_core_peel
        monkeypatch.setattr(backends, "csr_core_peel",
                            lambda csr: calls.append("csr") or real(csr))
        csr = as_csr(generators.complete_graph(5))
        result = core_peel(csr)
        assert calls == ["csr"]
        assert result.lam == [4] * 5

    def test_truss_peel_csr_input_runs_csr_engine(self, monkeypatch):
        calls = []
        real = backends.csr_truss_peel
        monkeypatch.setattr(backends, "csr_truss_peel",
                            lambda csr: calls.append("csr") or real(csr))
        truss_peel(as_csr(generators.complete_graph(5)))
        assert calls == ["csr"]

    def test_nucleus34_peel_csr_input_runs_csr_engine(self, monkeypatch):
        calls = []
        real = backends.csr_nucleus34_peel
        monkeypatch.setattr(backends, "csr_nucleus34_peel",
                            lambda csr: calls.append("csr") or real(csr))
        nucleus34_peel(as_csr(generators.complete_graph(5)))
        assert calls == ["csr"]

    def test_decompose_follows_input(self):
        g = generators.planted_cliques(2, 5, seed=3)
        csr = as_csr(g)
        assert isinstance(decompose(g, 1, 2).graph, Graph)
        assert decompose(csr, 1, 2).graph is csr
        # the generic (view-driven) algorithms carry the input unconverted too
        for algorithm in ("naive", "dft", "hypo"):
            assert decompose(csr, 1, 2, algorithm=algorithm).graph is csr
        # an explicit backend still overrides the representation
        assert isinstance(decompose(csr, 1, 2, backend="object").graph, Graph)

    def test_object_input_still_defaults_to_object_engine(self, monkeypatch):
        monkeypatch.setattr(backends, "csr_core_peel",
                            lambda csr: pytest.fail("object input ran CSR"))
        core_peel(generators.complete_graph(4))


# ---------------------------------------------------------------------------
# fnd queue_kind validation
# ---------------------------------------------------------------------------
class TestFndQueueKindValidation:
    def test_typo_raises_instead_of_silent_fallback(self):
        view = build_view(generators.complete_graph(4), 1, 2)
        with pytest.raises(InvalidParameterError):
            fnd_decomposition(view, queue_kind="Flat")

    @pytest.mark.parametrize("kind", ["flat", "bucket"])
    def test_valid_kinds_accepted_and_agree(self, kind):
        g = generators.powerlaw_cluster(60, 4, 0.5, seed=9)
        view = build_view(g, 1, 2)
        peeling, hierarchy = fnd_decomposition(view, queue_kind=kind)
        baseline = peel(view)
        assert peeling.lam == baseline.lam
        hierarchy.validate()
