"""Uncertain (k, η)-cores: reduction to classic cores, DP correctness."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.kcore import core_numbers
from repro.kcore.uncertain import (
    _tail_at_least,
    eta_degree,
    uncertain_core_numbers,
    uncertain_k_core,
)

from _graphs import small_graphs


def brute_force_tail(probs, k):
    """P[#live >= k] by enumerating all outcomes."""
    total = 0.0
    for outcome in itertools.product([0, 1], repeat=len(probs)):
        weight = 1.0
        for live, p in zip(outcome, probs):
            weight *= p if live else (1.0 - p)
        if sum(outcome) >= k:
            total += weight
    return total


class TestTailDp:
    def test_trivial_cases(self):
        assert _tail_at_least([0.5, 0.5], 0) == 1.0
        assert _tail_at_least([0.5], 2) == 0.0

    def test_certain_edges(self):
        assert _tail_at_least([1.0, 1.0, 1.0], 3) == pytest.approx(1.0)
        assert _tail_at_least([1.0, 0.0], 2) == pytest.approx(0.0)

    @given(st.lists(st.floats(0.0, 1.0), min_size=0, max_size=8),
           st.integers(0, 9))
    @settings(max_examples=60)
    def test_matches_brute_force(self, probs, k):
        assert _tail_at_least(probs, k) == pytest.approx(
            brute_force_tail(probs, k), abs=1e-9)


class TestEtaDegree:
    def test_certain_is_count(self):
        assert eta_degree([1.0] * 5, 0.9) == 5

    def test_impossible_is_zero(self):
        assert eta_degree([0.0, 0.0], 0.5) == 0

    def test_halves(self):
        # two p=0.5 edges: P[>=1] = .75, P[>=2] = .25
        assert eta_degree([0.5, 0.5], 0.7) == 1
        assert eta_degree([0.5, 0.5], 0.2) == 2

    def test_monotone_in_eta(self):
        probs = [0.9, 0.6, 0.3]
        degrees = [eta_degree(probs, eta) for eta in (0.1, 0.5, 0.9)]
        assert degrees == sorted(degrees, reverse=True)


class TestUncertainCores:
    def test_certain_reduces_to_classic(self, social):
        lam = uncertain_core_numbers(social, [1.0] * social.m, eta=0.5)
        assert lam == core_numbers(social)

    def test_low_probability_empties(self, k4):
        lam = uncertain_core_numbers(k4, [0.05] * 6, eta=0.9)
        assert lam == [0, 0, 0, 0]

    def test_eta_validation(self, k4):
        with pytest.raises(InvalidParameterError):
            uncertain_core_numbers(k4, [1.0] * 6, eta=0.0)

    def test_probability_validation(self, k4):
        with pytest.raises(InvalidParameterError):
            uncertain_core_numbers(k4, [1.5] * 6)
        with pytest.raises(InvalidParameterError):
            uncertain_core_numbers(k4, [0.5] * 3)

    def test_dict_probabilities(self):
        g = Graph(3, [(0, 1), (1, 2)])
        lam = uncertain_core_numbers(g, {(0, 1): 1.0, (2, 1): 1.0}, eta=0.5)
        assert lam == [1, 1, 1]

    def test_missing_probability(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(InvalidParameterError):
            uncertain_core_numbers(g, {(0, 1): 1.0})

    def test_reliable_clique_survives_unreliable_fringe(self):
        # K4 with p=0.95 plus a fringe vertex attached by p=0.1 edges
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
                 (4, 0), (4, 1), (4, 2)]
        g = Graph(5, edges)
        probs = {e: 0.95 for e in g.edges()}
        probs[(0, 4)] = probs[(1, 4)] = probs[(2, 4)] = 0.1
        lam = uncertain_core_numbers(g, probs, eta=0.6)
        assert min(lam[:4]) >= 2
        assert lam[4] == 0

    def test_connected_uncertain_cores(self):
        # two reliable triangles joined by an unreliable bridge: structural
        # connectivity keeps one core; reliable connectivity splits it
        g = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)])
        probs = {e: 0.9 for e in g.edges()}
        probs[(2, 3)] = 0.05
        structural = uncertain_k_core(g, 2, probs, eta=0.5)
        assert structural == [[0, 1, 2, 3, 4, 5]]
        reliable = uncertain_k_core(g, 2, probs, eta=0.5,
                                    connectivity_threshold=0.5)
        assert reliable == [[0, 1, 2], [3, 4, 5]]


class TestBackendParity:
    def test_backends_agree(self, social):
        # dyadic probabilities keep the tail DP exact on every engine
        probs = [(0.25, 0.5, 0.75, 1.0)[i % 4] for i in range(social.m)]
        reference = uncertain_core_numbers(social, probs, eta=0.5,
                                           backend="object")
        for backend in ("csr", "csr-parallel", "disk"):
            assert uncertain_core_numbers(social, probs, eta=0.5,
                                          backend=backend) == reference


@given(small_graphs(max_n=9), st.sampled_from([0.25, 0.5, 0.75]))
@settings(max_examples=25, deadline=None)
def test_kernel_matches_object_random(g, eta):
    """λ parity: capped-downward η-degree kernel vs the object reference."""
    probs = [(0.25, 0.5, 0.75, 1.0)[(u + v) % 4] for u, v in g.edges()]
    assert uncertain_core_numbers(g, probs, eta=eta, backend="csr") == \
        uncertain_core_numbers(g, probs, eta=eta, backend="object")


@given(small_graphs(max_n=9))
@settings(max_examples=25, deadline=None)
def test_certain_probabilities_match_classic_random(g):
    lam = uncertain_core_numbers(g, [1.0] * g.m, eta=0.99)
    assert lam == core_numbers(g)


@given(small_graphs(max_n=8), st.floats(0.2, 0.9))
@settings(max_examples=25, deadline=None)
def test_eta_monotonicity_random(g, eta):
    """Stricter eta never raises a core number."""
    probs = [0.7] * g.m
    loose = uncertain_core_numbers(g, probs, eta=eta / 2)
    strict = uncertain_core_numbers(g, probs, eta=eta)
    assert all(s <= l for s, l in zip(strict, loose))
