"""The level-wise parallel hierarchy construction (PR 4).

The contract under test: ``decompose(..., backend="csr-parallel",
workers=N)`` produces λ elementwise identical and a *condensed*
hierarchy node-for-node identical to the sequential CSR FND engine, for
(1,2), (2,3) and (3,4), at every worker count, deterministically.
Covers the layers bottom-up:

* the level-edge kernels against brute-force oracles;
* the worker-side spanning-forest reduction;
* the batch forest primitives (``make_nodes`` / ``adopt_roots``) on
  both the flat and the shared rooted forest;
* the in-process (``pool=None``) level-wise build vs the sequential
  fused engine;
* the full pooled pipeline — including every-level farming, repeated-run
  determinism, and the single-core / ``workers=1`` degradation paths;
* the sparse pool-farmed decrement merge of the bulk peels.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro.parallel.bulk as bulk_module
import repro.parallel.construct as construct_module
import repro.parallel.fnd as parallel_fnd_module
from repro.backends import as_backend, decompose
from repro.core.csr_peel import (
    csr_core_peel,
    csr_nucleus34_peel,
    csr_truss_peel,
    truss_incidence_arrays,
)
from repro.core.disjoint_set import ArrayRootedForest
from repro.graph import generators
from repro.graph.csr import CSRGraph, csr_arrays_int64
from repro.parallel import (
    WorkerPool,
    bulk_core_peel,
    bulk_nucleus34_peel,
    bulk_truss_peel,
    core_hierarchy_from_lambda,
    core_level_edges,
    incidence_hierarchy_from_lambda,
    incidence_level_edges,
    merge_sparse_decrements,
    share_forest,
    spanning_forest_reduce,
)
from repro.parallel.bulk import FORCE_SHARDING_ENV

RS_PAIRS = ((1, 2), (2, 3), (3, 4))


def random_csr(seed: int, max_n: int = 40) -> CSRGraph:
    rng = random.Random(seed)
    n = rng.randint(1, max_n)
    p = rng.choice([0.0, 0.1, 0.3, 0.6])
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)
             if rng.random() < p]
    return CSRGraph(n, edges)


def condensed_signature(hierarchy):
    tree = hierarchy.condense()
    return sorted((node.k, tuple(sorted(tree.subtree_cells(node.id))))
                  for node in tree.nodes)


def skeleton_signature(hierarchy):
    """The raw skeleton — byte-level determinism, stricter than condensed."""
    return (hierarchy.node_lambda, hierarchy.parent, hierarchy.comp,
            hierarchy.root)


@pytest.fixture(scope="module")
def powerlaw_csr() -> CSRGraph:
    graph = generators.powerlaw_cluster(400, 6, 0.5, seed=9)
    return as_backend(graph, "csr")


@pytest.fixture
def forced_sharding(monkeypatch):
    monkeypatch.setenv(FORCE_SHARDING_ENV, "1")


# ---------------------------------------------------------------------------
# level-edge kernels
# ---------------------------------------------------------------------------
class TestLevelEdgeKernels:
    @pytest.mark.parametrize("seed", range(6))
    def test_core_level_edges_match_brute_force(self, seed):
        csr = random_csr(seed)
        arrays = csr_arrays_int64(csr)
        indptr, indices = arrays["indptr"], arrays["indices"]
        lam = np.asarray(csr_core_peel(csr).lam, dtype=np.int64)
        for k in range(1, int(lam.max(initial=0)) + 1):
            frontier = np.flatnonzero(lam == k)
            a, b = core_level_edges(indptr, indices, lam, frontier, k)
            got = set(zip(a.tolist(), b.tolist()))
            expected = set()
            for u, v in csr.edges():
                if min(lam[u], lam[v]) != k:
                    continue  # the edge activates at a different level
                owner, other = (u, v) if lam[u] == k else (v, u)
                if lam[other] == k:
                    owner, other = min(u, v), max(u, v)
                expected.add((owner, other))
            assert got == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_incidence_level_edges_match_brute_force(self, seed):
        csr = random_csr(seed, max_n=30)
        sup, ptr, comps = truss_incidence_arrays(csr)
        lam = np.asarray(csr_truss_peel(csr).lam, dtype=np.int64)
        for k in range(1, int(lam.max(initial=0)) + 1):
            frontier = np.flatnonzero(lam == k)
            a, b = incidence_level_edges(ptr, comps, lam, frontier, k)
            got = set(zip(a.tolist(), b.tolist()))
            expected = set()
            for u in frontier.tolist():
                for slot in range(ptr[u], ptr[u + 1]):
                    clique = [u] + [int(c[slot]) for c in comps]
                    lams = [int(lam[c]) for c in clique]
                    if min(lams) != k:
                        continue
                    if min(c for c, cl in zip(clique, lams) if cl == k) != u:
                        continue  # another frontier edge owns this triangle
                    for other in clique[1:]:
                        expected.add((u, other))
            assert got == expected

    def test_spanning_forest_reduce_preserves_connectivity(self):
        rng = random.Random(3)
        nodes = list(range(50))
        a = np.array([rng.choice(nodes) for _ in range(300)], dtype=np.int64)
        b = np.array([rng.choice(nodes) for _ in range(300)], dtype=np.int64)
        ra, rb = spanning_forest_reduce(a, b)
        # a spanning forest: subset of the input pairs, no redundant edge
        assert set(zip(ra.tolist(), rb.tolist())) <= set(
            zip(a.tolist(), b.tolist()))
        touched = set(a.tolist()) | set(b.tolist())
        full = _components(zip(a.tolist(), b.tolist()), touched)
        reduced = _components(zip(ra.tolist(), rb.tolist()), touched)
        assert full == reduced
        assert len(ra) == len(touched) - len(full)

    def test_spanning_forest_reduce_empty_and_deterministic(self):
        empty = np.empty(0, dtype=np.int64)
        ra, rb = spanning_forest_reduce(empty, empty)
        assert len(ra) == 0 and len(rb) == 0
        a = np.array([5, 1, 5, 1, 9], dtype=np.int64)
        b = np.array([6, 2, 6, 6, 9], dtype=np.int64)
        first = spanning_forest_reduce(a, b)
        second = spanning_forest_reduce(a, b)
        assert first[0].tolist() == second[0].tolist()
        assert first[1].tolist() == second[1].tolist()


def _components(pairs, nodes):
    parent = {x: x for x in nodes}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for x, y in pairs:
        parent[find(x)] = find(y)
    groups: dict[int, set] = {}
    for x in nodes:
        groups.setdefault(find(x), set()).add(x)
    return {frozenset(g) for g in groups.values()}


# ---------------------------------------------------------------------------
# forest batch primitives
# ---------------------------------------------------------------------------
class TestForestBatchPrimitives:
    def test_array_forest_make_nodes_and_adopt_roots(self):
        forest = ArrayRootedForest()
        first = forest.make_nodes(4)
        assert first == 0 and len(forest) == 4
        forest.link(0, 1)
        root = forest.make_node()
        forest.adopt_roots(root)
        assert forest.parent == [1, root, root, root, -1]

    def test_shared_forest_make_nodes_and_adopt_roots(self):
        forest = share_forest(ArrayRootedForest(), capacity=6)
        try:
            first = forest.make_nodes(4)
            assert first == 0 and len(forest) == 4
            forest.link(2, 3)
            root = forest.make_node()
            forest.adopt_roots(root)
            assert forest.parent[:forest.size].tolist() == [
                root, root, 3, root, -1]
            with pytest.raises(IndexError):
                forest.make_nodes(2)
        finally:
            forest.bundle.unlink()

    def test_attach_node_alias_matches_attach(self):
        forest = ArrayRootedForest()
        forest.make_nodes(3)
        forest.attach_node(1, 0)
        assert forest.parent[1] == 0 and forest.root[1] == 0


# ---------------------------------------------------------------------------
# in-process level-wise construction
# ---------------------------------------------------------------------------
class TestLevelwiseConstruction:
    @pytest.mark.parametrize("seed", range(8))
    def test_core_hierarchy_matches_sequential(self, seed):
        csr = random_csr(seed)
        sequential = decompose(csr, 1, 2, algorithm="fnd", backend="csr")
        lam = np.asarray(csr_core_peel(csr).lam, dtype=np.int64)
        hierarchy = core_hierarchy_from_lambda(csr, lam)
        hierarchy.validate()
        assert condensed_signature(hierarchy) == \
            condensed_signature(sequential.hierarchy)

    @pytest.mark.parametrize("seed", range(8))
    def test_truss_hierarchy_matches_sequential(self, seed):
        csr = random_csr(seed, max_n=30)
        sequential = decompose(csr, 2, 3, algorithm="fnd", backend="csr")
        _, ptr, comps = truss_incidence_arrays(csr)
        lam = np.asarray(csr_truss_peel(csr).lam, dtype=np.int64)
        hierarchy = incidence_hierarchy_from_lambda(2, 3, lam, ptr, comps)
        hierarchy.validate()
        assert condensed_signature(hierarchy) == \
            condensed_signature(sequential.hierarchy)

    def test_nucleus34_hierarchy_matches_sequential(self, powerlaw_csr):
        from repro.core.csr_peel import nucleus34_incidence_arrays

        sequential = decompose(powerlaw_csr, 3, 4, algorithm="fnd",
                               backend="csr")
        _, _, ptr, comps = nucleus34_incidence_arrays(powerlaw_csr)
        lam = np.asarray(csr_nucleus34_peel(powerlaw_csr).lam,
                         dtype=np.int64)
        hierarchy = incidence_hierarchy_from_lambda(3, 4, lam, ptr, comps)
        hierarchy.validate()
        assert condensed_signature(hierarchy) == \
            condensed_signature(sequential.hierarchy)

    def test_empty_and_edgeless_graphs(self):
        for csr in (CSRGraph(0, []), CSRGraph(5, [])):
            lam = np.asarray(csr_core_peel(csr).lam, dtype=np.int64)
            hierarchy = core_hierarchy_from_lambda(csr, lam)
            hierarchy.validate()
            assert hierarchy.num_subnuclei == 0
            assert all(c == hierarchy.root for c in hierarchy.comp)


# ---------------------------------------------------------------------------
# the pooled pipeline through the backend
# ---------------------------------------------------------------------------
class TestParallelFndParity:
    @pytest.mark.parametrize("rs", RS_PAIRS, ids=["12", "23", "34"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_condensed_parity_at_every_worker_count(
            self, powerlaw_csr, forced_sharding, rs, workers):
        sequential = decompose(powerlaw_csr, *rs, algorithm="fnd",
                               backend="csr")
        parallel = decompose(powerlaw_csr, *rs, algorithm="fnd",
                             backend="csr-parallel", workers=workers)
        assert parallel.lam == sequential.lam
        parallel.hierarchy.validate()
        assert condensed_signature(parallel.hierarchy) == \
            condensed_signature(sequential.hierarchy)

    @pytest.mark.parametrize("rs", RS_PAIRS, ids=["12", "23", "34"])
    def test_deterministic_across_repeated_runs(
            self, powerlaw_csr, forced_sharding, rs):
        first = decompose(powerlaw_csr, *rs, algorithm="fnd",
                          backend="csr-parallel", workers=3)
        second = decompose(powerlaw_csr, *rs, algorithm="fnd",
                           backend="csr-parallel", workers=3)
        assert skeleton_signature(first.hierarchy) == \
            skeleton_signature(second.hierarchy)
        assert first.lam == second.lam

    @pytest.mark.parametrize("rs", RS_PAIRS, ids=["12", "23", "34"])
    def test_parity_with_every_level_farmed(
            self, powerlaw_csr, forced_sharding, monkeypatch, rs):
        monkeypatch.setattr(construct_module, "MIN_LEVEL_SLOTS", 0)
        sequential = decompose(powerlaw_csr, *rs, algorithm="fnd",
                               backend="csr")
        parallel = decompose(powerlaw_csr, *rs, algorithm="fnd",
                             backend="csr-parallel", workers=2)
        assert parallel.lam == sequential.lam
        assert condensed_signature(parallel.hierarchy) == \
            condensed_signature(sequential.hierarchy)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graph_sweep_two_workers(self, forced_sharding, seed):
        csr = random_csr(seed)
        for rs in RS_PAIRS:
            sequential = decompose(csr, *rs, algorithm="fnd", backend="csr")
            parallel = decompose(csr, *rs, algorithm="fnd",
                                 backend="csr-parallel", workers=2)
            assert parallel.lam == sequential.lam, (seed, rs)
            assert condensed_signature(parallel.hierarchy) == \
                condensed_signature(sequential.hierarchy), (seed, rs)

    def test_single_core_hosts_degrade_to_sequential_path(
            self, powerlaw_csr, monkeypatch):
        monkeypatch.setenv(FORCE_SHARDING_ENV, "0")
        monkeypatch.setattr(
            parallel_fnd_module, "WorkerPool",
            _RaisingPool)  # the degraded path must never build a pool
        sequential = decompose(powerlaw_csr, 2, 3, algorithm="fnd",
                               backend="csr")
        degraded = decompose(powerlaw_csr, 2, 3, algorithm="fnd",
                             backend="csr-parallel", workers=4)
        assert degraded.lam == sequential.lam
        assert condensed_signature(degraded.hierarchy) == \
            condensed_signature(sequential.hierarchy)

    def test_workers_one_never_builds_a_pool(
            self, powerlaw_csr, forced_sharding, monkeypatch):
        monkeypatch.setattr(parallel_fnd_module, "WorkerPool", _RaisingPool)
        result = decompose(powerlaw_csr, 1, 2, algorithm="fnd",
                           backend="csr-parallel", workers=1)
        sequential = decompose(powerlaw_csr, 1, 2, algorithm="fnd",
                               backend="csr")
        assert result.lam == sequential.lam


class _RaisingPool:
    def __init__(self, *args, **kwargs):
        raise AssertionError("a worker pool must not be built on this path")


# ---------------------------------------------------------------------------
# sparse pool-farmed decrements
# ---------------------------------------------------------------------------
class TestSparseShardedDecrement:
    @pytest.fixture
    def every_round_farmed(self, monkeypatch):
        monkeypatch.setattr(bulk_module, "MIN_SHARD_SLOTS", 0)

    def test_merge_sparse_decrements_sums_overlaps(self):
        empty = np.empty(0, dtype=np.int64)
        targets, counts = merge_sparse_decrements([
            (empty, empty),
            (np.array([2, 5], dtype=np.int64),
             np.array([1, 3], dtype=np.int64)),
            (np.array([5, 9], dtype=np.int64),
             np.array([2, 1], dtype=np.int64)),
        ])
        assert targets.tolist() == [2, 5, 9]
        assert counts.tolist() == [1, 5, 1]
        targets, counts = merge_sparse_decrements([(empty, empty)])
        assert len(targets) == 0 and len(counts) == 0

    def test_farmed_rounds_match_sequential(self, powerlaw_csr,
                                            every_round_farmed):
        with WorkerPool(2) as pool:
            assert bulk_core_peel(powerlaw_csr, pool).lam == \
                csr_core_peel(powerlaw_csr).lam
            assert bulk_truss_peel(powerlaw_csr, pool).lam == \
                csr_truss_peel(powerlaw_csr).lam

    def test_farmed_nucleus34_matches_sequential(self, every_round_farmed):
        csr = as_backend(generators.powerlaw_cluster(150, 6, 0.6, seed=2),
                         "csr")
        with WorkerPool(3) as pool:
            assert bulk_nucleus34_peel(csr, pool).lam == \
                csr_nucleus34_peel(csr).lam
