"""End-to-end integration: the full stack on every tiny dataset stand-in.

Each dataset flows through: load → decompose with every algorithm at every
(r,s) → hierarchies agree → stats/density/queries/export all operate on
the result.  These are the workflows README advertises, run verbatim.
"""

import pytest

from repro.analysis.comparison import compare_hierarchies
from repro.analysis.density import densest_nuclei
from repro.analysis.skeleton import skeleton_report
from repro.analysis.stats import hierarchy_stats
from repro.core.decomposition import nucleus_decomposition
from repro.core.partition import decompose_by_components
from repro.core.views import build_view
from repro.export import hierarchy_from_json, hierarchy_to_json
from repro.graph.datasets import dataset_names, load_dataset
from repro.queries import HierarchyIndex


@pytest.fixture(scope="module", params=dataset_names())
def tiny(request):
    return load_dataset(request.param, "tiny")


class TestFullStack:
    def test_12_algorithms_agree(self, tiny):
        view = build_view(tiny, 1, 2)
        results = {a: nucleus_decomposition(tiny, 1, 2, algorithm=a, view=view)
                   for a in ("naive", "dft", "fnd", "lcps")}
        for result in results.values():
            result.hierarchy.validate()
        baseline = results["naive"].hierarchy
        for name, result in results.items():
            assert compare_hierarchies(baseline, result.hierarchy).identical, name

    def test_23_algorithms_agree(self, tiny):
        view = build_view(tiny, 2, 3)
        results = [nucleus_decomposition(tiny, 2, 3, algorithm=a, view=view)
                   for a in ("naive", "dft", "fnd")]
        families = [r.hierarchy.canonical_nuclei() for r in results]
        assert families[0] == families[1] == families[2]

    def test_34_dft_fnd_agree(self, tiny):
        view = build_view(tiny, 3, 4)
        dft = nucleus_decomposition(tiny, 3, 4, algorithm="dft", view=view)
        fnd = nucleus_decomposition(tiny, 3, 4, algorithm="fnd", view=view)
        assert dft.hierarchy.canonical_nuclei() == \
            fnd.hierarchy.canonical_nuclei()

    def test_analysis_layer_runs(self, tiny):
        result = nucleus_decomposition(tiny, 2, 3, algorithm="fnd")
        stats = hierarchy_stats(result)
        assert stats.num_nuclei >= 0
        report = skeleton_report(result.hierarchy)
        assert report.num_subnuclei == result.hierarchy.num_subnuclei
        for nucleus in densest_nuclei(result, min_vertices=4, limit=3):
            assert 0.0 <= nucleus.density <= 1.0

    def test_queries_and_export_round_trip(self, tiny):
        result = nucleus_decomposition(tiny, 1, 2, algorithm="fnd")
        index = HierarchyIndex(result)
        hub = max(tiny.vertices(), key=tiny.degree)
        profile = index.profile(hub)
        if profile:
            assert profile[-1].k == result.lam[hub]
        restored = hierarchy_from_json(hierarchy_to_json(result.hierarchy))
        assert restored.canonical_nuclei() == \
            result.hierarchy.canonical_nuclei()

    def test_component_decomposition_matches(self, tiny):
        merged = decompose_by_components(tiny, 1, 2)
        whole = nucleus_decomposition(tiny, 1, 2, algorithm="fnd")
        assert merged.hierarchy.canonical_nuclei() == \
            whole.hierarchy.canonical_nuclei()
