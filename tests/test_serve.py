"""The serving tier: mmap loads, the registry, the coalescer, both wire
protocols, and the `repro-nucleus serve` process end to end."""

import json
import os
import signal
import socket
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.backends import build_query_index, load_query_index
from repro.errors import InvalidParameterError
from repro.flatindex import FlatHierarchyIndex, mmap_npz
from repro.graph import generators
from repro.serve import (
    IndexRegistry,
    ServeClient,
    ServeError,
    ServerConfig,
    ServerThread,
)


@pytest.fixture(scope="module")
def graph():
    return generators.powerlaw_cluster(200, 6, 0.5, seed=9)


@pytest.fixture(scope="module")
def flat(graph):
    return build_query_index(graph, 1, 2, backend="csr")


@pytest.fixture(scope="module")
def npz_path(flat, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "kcore.npz"
    flat.save(path)
    return path


@pytest.fixture(scope="module")
def registry(npz_path):
    reg = IndexRegistry()
    reg.open("kcore", npz_path)
    return reg


def _expected_communities(flat, vertex, k):
    return [[int(x) for x in community]
            for community in flat.communities_of_vertex(vertex, k)]


# ---------------------------------------------------------------------------
# mmap'd .npz loads (the registry load path)
# ---------------------------------------------------------------------------
class TestMmapLoad:
    def test_members_are_read_only_memmaps(self, npz_path):
        arrays = mmap_npz(npz_path)
        assert arrays is not None
        member = arrays["lam"]
        assert isinstance(member, np.memmap)
        assert not member.flags.writeable

    def test_load_mmap_marks_index(self, npz_path):
        index = FlatHierarchyIndex.load(npz_path, mmap_mode="r")
        assert index.mmapped
        assert isinstance(index.lam, np.memmap)
        assert not index.lam.flags.writeable

    def test_eager_load_does_not(self, npz_path):
        index = FlatHierarchyIndex.load(npz_path)
        assert not index.mmapped
        assert not isinstance(index.lam, np.memmap)

    def test_mmap_answers_match_eager(self, npz_path, flat):
        mapped = FlatHierarchyIndex.load(npz_path, mmap_mode="r")
        for vertex in range(0, flat.n, 7):
            assert mapped.communities_of_vertex(vertex, 2) == \
                flat.communities_of_vertex(vertex, 2)
            assert mapped.profile(vertex) == flat.profile(vertex)
        for cell in range(0, flat.num_cells, 11):
            assert mapped.max_nucleus(cell) == flat.max_nucleus(cell)

    def test_load_query_index_defaults_to_mmap(self, npz_path):
        assert load_query_index(npz_path).mmapped
        assert not load_query_index(npz_path, mmap_mode=None).mmapped

    def test_bad_mmap_mode_rejected(self, npz_path):
        with pytest.raises(InvalidParameterError):
            FlatHierarchyIndex.load(npz_path, mmap_mode="r+")

    def test_cli_query_uses_mmap(self, npz_path, capsys):
        from repro.cli import main

        assert main(["query", str(npz_path), "--vertices", "0,5", "--k",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "(mmap)" in out
        assert "vertex 0:" in out


class TestMmapCompressedFallback:
    def test_compressed_npz_loads_eagerly(self, flat, tmp_path):
        path = tmp_path / "compressed.npz"
        eager_path = tmp_path / "plain.npz"
        flat.save(eager_path)
        with np.load(eager_path) as payload:
            np.savez_compressed(path, **dict(payload.items()))
        assert mmap_npz(path) is None  # not mappable...
        index = FlatHierarchyIndex.load(path, mmap_mode="r")  # ...so fallback
        assert not index.mmapped
        assert index.communities_of_vertex(0, 2) == \
            flat.communities_of_vertex(0, 2)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_from_specs_named_and_bare(self, npz_path):
        reg = IndexRegistry.from_specs(
            [f"web={npz_path}", str(npz_path)])
        assert reg.names() == ["web", "kcore"]
        assert reg.default_name == "web"
        assert "web" in reg and len(reg) == 2
        assert reg.get() is reg.get("web")

    def test_duplicate_name_rejected(self, npz_path):
        reg = IndexRegistry()
        reg.open("a", npz_path)
        with pytest.raises(InvalidParameterError, match="duplicate"):
            reg.open("a", npz_path)

    def test_unknown_name_lists_served(self, registry):
        with pytest.raises(InvalidParameterError, match="kcore"):
            registry.get("nope")

    def test_empty_specs_rejected(self):
        with pytest.raises(InvalidParameterError):
            IndexRegistry.from_specs([])
        with pytest.raises(InvalidParameterError):
            IndexRegistry.from_specs(["=path"])

    def test_empty_registry_has_no_default(self):
        with pytest.raises(InvalidParameterError):
            IndexRegistry().get()

    def test_describe(self, registry, npz_path):
        info = registry.describe()["kcore"]
        assert info["path"] == str(npz_path)
        assert (info["r"], info["s"]) == (1, 2)
        assert info["mmapped"] is True
        assert info["default"] is True


# ---------------------------------------------------------------------------
# server config
# ---------------------------------------------------------------------------
class TestServerConfig:
    def test_defaults(self):
        config = ServerConfig()
        assert config.coalesce_window == 0.0
        assert config.workers == 1

    @pytest.mark.parametrize("kwargs", [
        dict(coalesce_window=-1), dict(max_batch=0), dict(workers=0)])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            ServerConfig(**kwargs)


# ---------------------------------------------------------------------------
# NDJSON protocol over a threaded server
# ---------------------------------------------------------------------------
class TestNdjsonServer:
    @pytest.fixture(scope="class")
    def server(self, registry):
        with ServerThread(registry) as thread:
            yield thread

    @pytest.fixture
    def client(self, server):
        with ServeClient(port=server.port) as client:
            yield client

    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_routes_match_direct_index(self, client, flat):
        for vertex in range(0, flat.n, 13):
            assert client.communities_of_vertex(vertex, 2) == \
                _expected_communities(flat, vertex, 2)
            profile = client.profile(vertex)
            expected = flat.profile(vertex)
            assert [(lv["k"], lv["node_id"]) for lv in profile] == \
                [(lv.k, lv.node_id) for lv in expected]
        for cell in range(0, flat.num_cells, 17):
            assert client.max_nucleus(cell) == \
                [int(x) for x in flat.max_nucleus(cell)]
            lam = int(flat.lam[cell])
            if lam >= 1:
                assert client.nucleus_at(cell, lam) == \
                    [int(x) for x in flat.nucleus_at(cell, lam)]

    def test_pipelined_batch_coalesces(self, server, flat):
        vertices = [v % flat.n for v in range(300)]
        with ServeClient(port=server.port) as client:
            before = client.stats()["batching"]["batches"]
            answers = client.call_many(
                [{"op": "communities_of_vertex", "vertex": v, "k": 2}
                 for v in vertices])
            after_stats = client.stats()["batching"]
        assert answers == [_expected_communities(flat, v, 2)
                           for v in vertices]
        # 300 pipelined requests must have shared kernel calls
        new_batches = after_stats["batches"] - before
        assert 0 < new_batches < 300
        assert after_stats["max_batch"] > 1

    def test_named_index_routing(self, client, flat):
        assert client.communities_of_vertex(3, 2, index="kcore") == \
            _expected_communities(flat, 3, 2)
        with pytest.raises(ServeError, match="unknown index"):
            client.communities_of_vertex(3, 2, index="absent")

    def test_stats_and_indexes(self, client):
        stats = client.stats()
        assert stats["config"]["workers"] == 1
        assert "kcore" in stats["indexes"]
        assert stats["routes"]  # at least one route recorded by now
        assert client.indexes()["kcore"]["default"] is True

    def test_request_validation(self, client, flat):
        with pytest.raises(ServeError, match="unknown op"):
            client.call("frobnicate")
        with pytest.raises(ServeError, match="out of range"):
            client.max_nucleus(flat.num_cells + 5)
        with pytest.raises(ServeError, match="integer"):
            client.call("communities_of_vertex", vertex="zero", k=2)
        lam0 = int(flat.lam[0])
        with pytest.raises(ServeError, match="lambda"):
            client.nucleus_at(0, lam0 + 1)

    def test_error_does_not_poison_batch(self, server, flat):
        """A bad request in a pipelined block fails alone."""
        requests = [{"op": "communities_of_vertex", "vertex": 1, "k": 2},
                    {"op": "communities_of_vertex", "vertex": -7, "k": 2},
                    {"op": "communities_of_vertex", "vertex": 2, "k": 2}]
        with ServeClient(port=server.port) as client:
            results = client.call_many(requests, raise_on_error=False)
        assert results[0] == _expected_communities(flat, 1, 2)
        assert isinstance(results[1], ServeError)
        assert results[2] == _expected_communities(flat, 2, 2)

    def test_malformed_lines(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n[1, 2, 3]\n")
            first = json.loads(reader.readline())
            second = json.loads(reader.readline())
        assert not first["ok"] and "malformed" in first["error"]
        assert not second["ok"] and "object" in second["error"]

    def test_max_batch_flushes_early(self, registry, flat):
        with ServerThread(registry, max_batch=4) as thread:
            with ServeClient(port=thread.port) as client:
                answers = client.call_many(
                    [{"op": "max_nucleus", "cell": c % flat.num_cells}
                     for c in range(32)])
                batching = client.stats()["batching"]
        assert len(answers) == 32
        assert batching["max_batch"] <= 4

    def test_uncoalesced_mode_same_answers(self, registry, flat):
        with ServerThread(registry, uncoalesced=True) as thread:
            with ServeClient(port=thread.port) as client:
                vertices = list(range(0, flat.n, 9))
                answers = client.call_many(
                    [{"op": "communities_of_vertex", "vertex": v, "k": 2}
                     for v in vertices])
                batching = client.stats()["batching"]
        assert answers == [_expected_communities(flat, v, 2)
                           for v in vertices]
        assert batching["batches"] == 0  # the coalescer never ran


# ---------------------------------------------------------------------------
# HTTP protocol
# ---------------------------------------------------------------------------
class TestHttpServer:
    @pytest.fixture(scope="class")
    def server(self, registry):
        with ServerThread(registry) as thread:
            yield thread

    @staticmethod
    def _get(server, path):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}{path}") as response:
            return json.loads(response.read())

    def test_healthz_and_root(self, server):
        assert self._get(server, "/healthz") == {"ok": True}
        assert self._get(server, "/") == {"ok": True}

    def test_stats_and_indexes(self, server):
        stats = self._get(server, "/stats")
        assert stats["config"]["max_batch"] == 512
        assert self._get(server, "/indexes")["kcore"]["r"] == 1

    def test_query_route(self, server, flat):
        payload = self._get(server, "/query/communities_of_vertex"
                                    "?vertex=4&k=2")
        assert payload["ok"]
        assert payload["result"] == _expected_communities(flat, 4, 2)

    def test_post_single_and_array(self, server, flat):
        url = f"http://127.0.0.1:{server.port}/query"
        single = json.dumps(
            {"op": "max_nucleus", "cell": 0}).encode()
        with urllib.request.urlopen(
                urllib.request.Request(url, data=single)) as response:
            answer = json.loads(response.read())
        assert answer["result"] == [int(x) for x in flat.max_nucleus(0)]
        batch = json.dumps(
            [{"op": "communities_of_vertex", "vertex": v, "k": 2}
             for v in (1, 2, 3)]).encode()
        with urllib.request.urlopen(
                urllib.request.Request(url, data=batch)) as response:
            answers = json.loads(response.read())
        assert [a["result"] for a in answers] == \
            [_expected_communities(flat, v, 2) for v in (1, 2, 3)]

    def test_bad_routes(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            self._get(server, "/nope")
        assert caught.value.code == 404
        url = f"http://127.0.0.1:{server.port}/stats"
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(
                urllib.request.Request(url, data=b"{}"))
        assert caught.value.code == 405

    def test_http_error_envelope(self, server, flat):
        payload = self._get(
            server, f"/query/max_nucleus?cell={flat.num_cells + 1}")
        assert not payload["ok"]
        assert "out of range" in payload["error"]


# ---------------------------------------------------------------------------
# the real process: `repro-nucleus serve` end to end
# ---------------------------------------------------------------------------
class TestServeProcess:
    def _spawn(self, npz_path, *extra):
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(npz_path),
             "--port", "0", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True)
        line = proc.stdout.readline()
        if not line.startswith("serving "):
            rest = proc.stdout.read() or ""
            proc.kill()
            proc.wait()
            raise AssertionError(f"server failed to start: {line}{rest}")
        port = int(line.split(" on ", 1)[1].split()[0].rsplit(":", 1)[1])
        return proc, port

    def _shutdown(self, proc):
        proc.terminate()
        try:
            return proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()

    def test_multi_worker_serve_and_clean_shutdown(self, npz_path, flat):
        proc, port = self._spawn(npz_path, "--workers", "2")
        try:
            with ServeClient(port=port) as client:
                assert client.ping() == "pong"
                vertices = list(range(0, flat.n, 11))
                answers = client.call_many(
                    [{"op": "communities_of_vertex", "vertex": v, "k": 2}
                     for v in vertices])
                assert answers == [_expected_communities(flat, v, 2)
                                   for v in vertices]
                described = client.indexes()
                assert described["kcore"]["mmapped"] is True
        finally:
            returncode = self._shutdown(proc)
        assert returncode == 0  # SIGTERM exits cleanly

    def test_sigint_also_clean(self, npz_path):
        proc, port = self._spawn(npz_path)
        try:
            with ServeClient(port=port) as client:
                assert client.ping() == "pong"
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                returncode = proc.wait(timeout=10)
            finally:
                if proc.poll() is None:
                    proc.kill()
                proc.stdout.close()
        assert returncode == 0

    def test_missing_index_fails_fast(self, tmp_path):
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             str(tmp_path / "absent.npz"), "--port", "0"],
            capture_output=True, text=True, env=env, timeout=60)
        assert proc.returncode == 2
        assert "error" in proc.stderr
