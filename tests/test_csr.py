"""CSR backend: structural parity, peel parity and backend dispatch.

Every test pits :class:`CSRGraph` (and the direct peels built on it)
against the object backend, which the rest of the suite already validates
against networkx and brute-force oracles — so agreement here transitively
certifies the CSR engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.backends import (
    BACKENDS,
    as_backend,
    as_csr,
    as_object,
    core_peel,
    decompose,
    resolve_backend,
    truss_peel,
)
from repro.core.bucket import FlatBucketQueue
from repro.core.csr_peel import (
    _truss_peel_replay,
    _truss_peel_scan,
    csr_core_peel,
    csr_truss_peel,
)
from repro.core.peeling import peel
from repro.core.views import EdgeView, VertexView, build_view
from repro.errors import InvalidGraphError, InvalidParameterError
from repro.graph import generators
from repro.graph.adjacency import Graph
from repro.graph.cliques import (
    edge_triangle_counts,
    triangle_k4_counts,
    triangles,
)
from repro.graph.csr import (
    HAVE_NUMPY,
    CSRGraph,
    csr_edge_support,
    csr_triangle_k4_counts,
    csr_triangles,
)
from repro.kcore.core import core_numbers, degeneracy
from repro.ktruss.truss import truss_numbers

from _graphs import dense_small_graphs, small_graphs

GENERATOR_SUITE = [
    Graph.empty(0, name="empty"),
    Graph.empty(7, name="isolated"),
    Graph(6, [(0, 1), (2, 3)], name="disconnected-edges"),
    generators.complete_graph(6, name="k6"),
    generators.path_graph(9, name="path"),
    generators.star(8, name="star"),
    generators.ring_of_cliques(4, 5, name="ring-of-cliques"),
    generators.planted_cliques(3, 6, bridge_edges=2, name="planted"),
    generators.erdos_renyi(60, 0.15, seed=3, name="er"),
    generators.barabasi_albert(120, 4, seed=5, name="ba"),
    generators.powerlaw_cluster(150, 5, 0.6, seed=9, name="plc"),
]

_ids = [g.name for g in GENERATOR_SUITE]


def _build_variants(graph: Graph) -> list[CSRGraph]:
    edges = list(graph.edges())
    variants = [CSRGraph(graph.n, edges, use_numpy=False),
                CSRGraph.from_graph(graph)]
    if HAVE_NUMPY:
        variants.append(CSRGraph(graph.n, edges, use_numpy=True))
    return variants


# ---------------------------------------------------------------------------
# structural parity
# ---------------------------------------------------------------------------
class TestStructure:
    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_adjacency_matches_object(self, graph):
        for csr in _build_variants(graph):
            assert (csr.n, csr.m) == (graph.n, graph.m)
            assert csr.degrees() == graph.degrees()
            for v in graph.vertices():
                assert list(csr.neighbors(v)) == graph.neighbors(v)
                assert csr.neighbor_set(v) == graph.neighbor_set(v)
            assert list(csr.edges()) == list(graph.edges())

    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_edge_ids_match_edge_index(self, graph):
        index = graph.edge_index
        for csr in _build_variants(graph):
            assert len(csr.edge_index) == len(index)
            for eid in range(graph.m):
                u, v = index.endpoints(eid)
                assert csr.endpoints(eid) == (u, v)
                assert csr.edge_id(u, v) == eid
                assert csr.edge_id(v, u) == eid
                assert csr.edge_index.id_of(u, v) == eid
            assert csr.edge_id(0, graph.n + 5) is None or graph.n == 0

    def test_build_paths_agree_exactly(self):
        graph = generators.powerlaw_cluster(300, 6, 0.5, seed=2)
        python_built, from_graph, numpy_built = (
            _build_variants(graph) if HAVE_NUMPY
            else _build_variants(graph) + [None])
        for other in (from_graph, numpy_built):
            if other is None:
                continue
            assert other.indptr == python_built.indptr
            assert other.indices == python_built.indices
            assert other.eids == python_built.eids
            assert other.esrc == python_built.esrc
            assert other.etgt == python_built.etgt

    def test_duplicate_and_reversed_edges_tolerated(self):
        csr = CSRGraph(3, [(0, 1), (1, 0), (0, 1), (1, 2)])
        assert csr.m == 2
        assert list(csr.edges()) == [(0, 1), (1, 2)]

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError):
            CSRGraph(3, [(1, 1)])
        if HAVE_NUMPY:
            with pytest.raises(InvalidGraphError):
                CSRGraph(3, [(1, 1)], use_numpy=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidGraphError):
            CSRGraph(2, [(0, 5)])
        with pytest.raises(InvalidGraphError):
            CSRGraph(-1, [])

    @given(small_graphs())
    @settings(max_examples=40)
    def test_common_neighbors_match(self, g):
        csr = CSRGraph.from_graph(g)
        for u in range(min(g.n, 6)):
            for v in range(min(g.n, 6)):
                if u != v:
                    assert csr.common_neighbors(u, v) == g.common_neighbors(u, v)
                    assert csr.has_edge(u, v) == g.has_edge(u, v)

    def test_round_trip(self):
        graph = generators.erdos_renyi(40, 0.2, seed=1, name="rt")
        csr = as_csr(graph)
        back = as_object(csr)
        assert back == graph
        assert back.name == "rt"


# ---------------------------------------------------------------------------
# triangle / clique enumeration parity
# ---------------------------------------------------------------------------
class TestEnumeration:
    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_edge_support_matches(self, graph):
        csr = CSRGraph.from_graph(graph)
        expected = edge_triangle_counts(graph)
        assert csr_edge_support(csr, use_numpy=False) == expected
        if HAVE_NUMPY:
            assert csr_edge_support(csr, use_numpy=True) == expected

    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_triangle_sets_match(self, graph):
        csr = CSRGraph.from_graph(graph)
        assert set(csr_triangles(csr)) == set(triangles(graph))

    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_k4_counts_match_by_triple(self, graph):
        csr = CSRGraph.from_graph(graph)
        obj_id, obj_counts = triangle_k4_counts(graph)
        csr_id, csr_counts = csr_triangle_k4_counts(csr)
        assert {t: obj_counts[i] for t, i in obj_id.items()} == \
            {t: csr_counts[i] for t, i in csr_id.items()}


# ---------------------------------------------------------------------------
# peel parity
# ---------------------------------------------------------------------------
class TestPeels:
    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_core_peel_matches(self, graph):
        expected = peel(VertexView(graph))
        result = csr_core_peel(CSRGraph.from_graph(graph))
        assert result.lam == expected.lam
        assert result.max_lambda == expected.max_lambda

    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_truss_peel_matches_both_strategies(self, graph):
        expected = peel(EdgeView(graph))
        csr = CSRGraph.from_graph(graph)
        assert _truss_peel_scan(csr).lam == expected.lam
        if HAVE_NUMPY:
            assert _truss_peel_replay(csr).lam == expected.lam
        assert csr_truss_peel(csr).max_lambda == expected.max_lambda

    @given(small_graphs())
    @settings(max_examples=60)
    def test_core_peel_matches_random(self, g):
        assert csr_core_peel(as_csr(g)).lam == peel(VertexView(g)).lam

    @given(dense_small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_truss_peel_matches_random(self, g):
        expected = peel(EdgeView(g)).lam
        csr = as_csr(g)
        assert _truss_peel_scan(csr).lam == expected
        if HAVE_NUMPY:
            assert _truss_peel_replay(csr).lam == expected

    def test_core_peel_order_is_degeneracy_order(self):
        g = generators.powerlaw_cluster(80, 4, 0.5, seed=9)
        result = csr_core_peel(as_csr(g))
        position = {v: i for i, v in enumerate(result.order)}
        for v in g.vertices():
            later = sum(1 for w in g.neighbors(v) if position[w] > position[v])
            assert later <= result.max_lambda
        values = [result.lam[v] for v in result.order]
        assert values == sorted(values)

    @given(small_graphs())
    @settings(max_examples=40)
    def test_generic_peel_flat_queue_matches(self, g):
        view = VertexView(g)
        assert peel(view, queue_kind="flat").lam == peel(view).lam

    def test_flat_queue_rejects_non_unit_updates(self):
        queue = FlatBucketQueue([3, 3, 3])
        with pytest.raises(ValueError):
            queue.update(0, 1)


# ---------------------------------------------------------------------------
# cell views over CSR
# ---------------------------------------------------------------------------
class TestCSRViews:
    @given(dense_small_graphs(max_n=9))
    @settings(max_examples=25, deadline=None)
    def test_view_lambda_matches_all_rs(self, g):
        """Cell ids are representation-independent, so the λ arrays of the
        two backends must agree element-for-element on every (r, s)."""
        csr = as_csr(g)
        for r, s in ((1, 2), (2, 3), (3, 4), (1, 3)):
            obj_view = build_view(g, r, s)
            csr_view = build_view(csr, r, s)
            cells = [obj_view.cell_vertices(c)
                     for c in range(obj_view.num_cells)]
            assert cells == [csr_view.cell_vertices(c)
                             for c in range(csr_view.num_cells)]
            assert peel(obj_view).lam == peel(csr_view).lam


# ---------------------------------------------------------------------------
# backend dispatch layer
# ---------------------------------------------------------------------------
class TestBackends:
    def test_unknown_backend_rejected(self):
        g = generators.complete_graph(4)
        with pytest.raises(InvalidParameterError):
            core_peel(g, backend="gpu")
        with pytest.raises(InvalidParameterError):
            as_backend(g, "gpu")

    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_peel_helpers_agree_across_backends(self, graph):
        assert core_peel(graph, "object").lam == core_peel(graph, "csr").lam
        assert truss_peel(graph, "object").lam == truss_peel(graph, "csr").lam

    @pytest.mark.parametrize("graph", GENERATOR_SUITE, ids=_ids)
    def test_high_level_helpers_accept_both_representations(self, graph):
        csr = as_csr(graph)
        assert core_numbers(csr) == core_numbers(graph)
        assert core_numbers(graph, backend="csr") == core_numbers(graph)
        assert degeneracy(csr) == degeneracy(graph)
        assert truss_numbers(csr) == truss_numbers(graph)
        assert truss_numbers(graph, backend="csr", convention="truss") == \
            truss_numbers(graph, convention="truss")

    @pytest.mark.parametrize("rs", [(1, 2), (2, 3)])
    @pytest.mark.parametrize("algorithm", ["fnd", "dft", "naive"])
    def test_decompose_hierarchies_match(self, rs, algorithm, monkeypatch):
        # force sharding so the csr-parallel leg really runs the worker
        # path even on single-core hosts (with the default workers=1 it
        # would silently duplicate the csr leg)
        monkeypatch.setenv("REPRO_FORCE_SHARDING", "1")
        graph = generators.powerlaw_cluster(120, 5, 0.6, seed=4)
        r, s = rs
        # the disk backend runs traversal algorithms for (1,2) only (the
        # spooled incidence is consumed by the peel); FND covers all (r,s)
        under_test = [b for b in BACKENDS
                      if b != "disk" or algorithm == "fnd" or rs == (1, 2)]
        results = {b: decompose(graph, r, s, algorithm=algorithm, backend=b,
                                workers=2 if b == "csr-parallel" else None)
                   for b in under_test}
        obj = results["object"]
        for backend in under_test[1:]:
            other = results[backend]
            assert obj.lam == other.lam, backend
            assert obj.hierarchy.canonical_nuclei() == \
                other.hierarchy.canonical_nuclei(), backend

    def test_decompose_34_matches_elementwise(self):
        graph = generators.planted_cliques(3, 6, bridge_edges=2, seed=1)
        obj = decompose(graph, 3, 4, backend="object")
        csr = decompose(graph, 3, 4, backend="csr")
        assert obj.lam == csr.lam
        assert [obj.view.cell_vertices(c) for c in range(obj.view.num_cells)] \
            == [csr.view.cell_vertices(c) for c in range(csr.view.num_cells)]

    def test_explicit_backend_request_is_honored(self):
        g = generators.complete_graph(5)
        csr = as_csr(g)
        assert resolve_backend(csr, None) == "csr"
        assert resolve_backend(g, None) == "object"
        assert resolve_backend(csr, "object") == "object"  # not overridden
        with pytest.raises(InvalidParameterError):
            resolve_backend(g, "gpu")
        assert core_numbers(csr, backend="object") == core_numbers(csr)
