"""Skeleton anatomy reports (paper §6 open question)."""

from repro.analysis.skeleton import skeleton_report
from repro.core.decomposition import nucleus_decomposition
from repro.examples_graphs import figure4_graph, figure5_graph
from repro.graph import generators


class TestSkeletonReport:
    def test_figure5_levels(self):
        h = nucleus_decomposition(figure5_graph(), 1, 2, algorithm="dft").hierarchy
        report = skeleton_report(h)
        assert report.max_lambda == 6
        assert report.num_levels == 3
        assert [p.lam for p in report.levels] == [6, 5, 4]
        assert report.level(6).count == 1
        assert report.level(5).count == 2
        assert report.level(4).total_cells == 6  # the frame vertices

    def test_figure4_equal_lambda_edges(self):
        h = nucleus_decomposition(figure4_graph(), 1, 2, algorithm="dft").hierarchy
        report = skeleton_report(h)
        # the two single-vertex sub-cores merge: one dashed edge in Fig-5 terms
        assert report.equal_lambda_edges == 1
        assert report.cross_lambda_edges == 1  # K4 under a 2-level node

    def test_level_profile_sizes(self):
        h = nucleus_decomposition(figure4_graph(), 1, 2, algorithm="dft").hierarchy
        report = skeleton_report(h)
        level2 = report.level(2)
        assert level2.count == 2
        assert level2.largest == 1 and level2.smallest == 1
        assert level2.mean_size == 1.0

    def test_missing_level_none(self):
        h = nucleus_decomposition(figure5_graph(), 1, 2, algorithm="dft").hierarchy
        assert skeleton_report(h).level(99) is None

    def test_fnd_has_at_least_dft_subnuclei(self):
        g = generators.powerlaw_cluster(150, 5, 0.6, seed=17)
        dft = nucleus_decomposition(g, 2, 3, algorithm="dft").hierarchy
        fnd = nucleus_decomposition(g, 2, 3, algorithm="fnd").hierarchy
        assert skeleton_report(fnd).num_subnuclei >= \
            skeleton_report(dft).num_subnuclei

    def test_format_renders(self):
        h = nucleus_decomposition(figure5_graph(), 1, 2, algorithm="dft").hierarchy
        text = skeleton_report(h).format()
        assert "sub-nuclei" in text
        assert "lambda" in text

    def test_counts_are_consistent(self):
        g = generators.powerlaw_cluster(120, 5, 0.5, seed=3)
        h = nucleus_decomposition(g, 1, 2, algorithm="dft").hierarchy
        report = skeleton_report(h)
        assert sum(p.count for p in report.levels) == report.num_subnuclei
        assert report.equal_lambda_edges + report.cross_lambda_edges \
            <= report.num_subnuclei
