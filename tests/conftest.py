"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.graph import generators


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def small_graphs(draw, min_n: int = 2, max_n: int = 12, max_m: int = 36):
    """Random simple graphs small enough for brute-force oracles."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        edges = draw(st.lists(st.sampled_from(possible), max_size=max_m,
                              unique=True))
    else:
        edges = []
    return Graph(n, edges)


@st.composite
def dense_small_graphs(draw, min_n: int = 4, max_n: int = 10):
    """Small graphs biased dense, so (2,3)/(3,4) structure actually appears."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    keep = draw(st.lists(st.booleans(), min_size=len(possible),
                         max_size=len(possible)))
    edges = [e for e, flag in zip(possible, keep) if flag]
    return Graph(n, edges)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to networkx (all vertices preserved, including isolated)."""
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    nxg.add_edges_from(graph.edges())
    return nxg


# ---------------------------------------------------------------------------
# fixtures: the recurring example graphs
# ---------------------------------------------------------------------------
@pytest.fixture
def triangle() -> Graph:
    return Graph(3, [(0, 1), (0, 2), (1, 2)])


@pytest.fixture
def k4() -> Graph:
    return generators.complete_graph(4)


@pytest.fixture
def k5() -> Graph:
    return generators.complete_graph(5)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph: 3-regular, triangle-free."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    return Graph(10, outer + inner + spokes)


@pytest.fixture
def social() -> Graph:
    """A 200-vertex clustered power-law graph for integration tests."""
    return generators.powerlaw_cluster(200, 6, 0.6, seed=42)
