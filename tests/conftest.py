"""Shared fixtures for the test suite.

Hypothesis strategies and converters live in :mod:`_graphs`; import them
from there (``from _graphs import small_graphs``), not from this conftest.
"""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph import generators


# ---------------------------------------------------------------------------
# fixtures: the recurring example graphs
# ---------------------------------------------------------------------------
@pytest.fixture
def triangle() -> Graph:
    return Graph(3, [(0, 1), (0, 2), (1, 2)])


@pytest.fixture
def k4() -> Graph:
    return generators.complete_graph(4)


@pytest.fixture
def k5() -> Graph:
    return generators.complete_graph(5)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph: 3-regular, triangle-free."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    return Graph(10, outer + inner + spokes)


@pytest.fixture
def social() -> Graph:
    """A 200-vertex clustered power-law graph for integration tests."""
    return generators.powerlaw_cluster(200, 6, 0.6, seed=42)
