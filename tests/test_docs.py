"""Executable documentation: every fenced ```python block in README.md
and docs/*.md runs, in order, in one namespace per file.

Non-runnable snippets in the docs use ```console / ```text fences; a
python fence is a promise that the code works against the current tree.
Blocks run chdir'd into a fresh tmp dir, so snippets may freely write
artifact files (``index.save("graph.npz")`` and friends).
"""

import re
from pathlib import Path

import pytest

pytest.importorskip("numpy")  # the docs lean on the flat index + serving

ROOT = Path(__file__).resolve().parents[1]

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$",
                    re.MULTILINE | re.DOTALL)


def _documents() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def _blocks(path: Path) -> list[str]:
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


def test_docs_directory_exists():
    names = {path.name for path in _documents()}
    assert {"README.md", "ARCHITECTURE.md", "SERVING.md",
            "CLI.md"} <= names


@pytest.mark.parametrize("path", _documents(), ids=lambda p: p.name)
def test_python_blocks_execute(path, tmp_path, monkeypatch):
    blocks = _blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python blocks")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docs_{path.stem.lower()}"}
    for number, block in enumerate(blocks, 1):
        code = compile(block, f"{path.name}[python block {number}]", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:
            pytest.fail(
                f"{path.name} python block {number} does not execute "
                f"against the current tree: {exc!r}\n---\n{block}")


@pytest.mark.parametrize("path", _documents(), ids=lambda p: p.name)
def test_no_anonymous_fences(path):
    """Every fence declares a language: python runs, console/text don't."""
    inside = False
    for number, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if not stripped.startswith("```"):
            continue
        if not inside:
            assert stripped[3:].strip(), \
                f"{path.name}:{number}: fence without a language label"
        inside = not inside
    assert not inside, f"{path.name}: unclosed fence"
