"""Unit tests for connectivity utilities."""

import networkx as nx
from hypothesis import given

from repro.graph.adjacency import Graph
from repro.graph.components import (
    bfs_order,
    components_from_adjacency,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graph import generators

from _graphs import small_graphs, to_networkx


class TestConnectedComponents:
    def test_single_component(self):
        g = generators.path_graph(5)
        assert connected_components(g) == [[0, 1, 2, 3, 4]]

    def test_two_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]

    def test_all_isolated(self):
        g = Graph.empty(3)
        assert connected_components(g) == [[0], [1], [2]]

    def test_empty_graph(self):
        assert connected_components(Graph.empty(0)) == []

    def test_components_sorted_by_smallest_vertex(self):
        g = Graph(6, [(4, 5), (0, 1)])
        comps = connected_components(g)
        assert comps[0] == [0, 1]
        assert [4, 5] in comps


class TestBfs:
    def test_bfs_covers_component(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert sorted(bfs_order(g, 0)) == [0, 1, 2]
        assert sorted(bfs_order(g, 3)) == [3, 4]

    def test_bfs_breadth_order(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = bfs_order(g, 0)
        assert order[0] == 0
        assert set(order[1:3]) == {1, 2}
        assert order[3] == 3


class TestIsConnected:
    def test_connected(self):
        assert is_connected(generators.cycle_graph(4))

    def test_disconnected(self):
        assert not is_connected(Graph(3, [(0, 1)]))

    def test_empty_is_connected(self):
        assert is_connected(Graph.empty(0))

    def test_singleton_is_connected(self):
        assert is_connected(Graph.empty(1))


class TestLargestComponent:
    def test_picks_biggest(self):
        g = Graph(7, [(0, 1), (1, 2), (2, 0), (3, 4)])
        big = largest_component(g)
        assert big.n == 3
        assert big.m == 3

    def test_empty(self):
        assert largest_component(Graph.empty(0)).n == 0


class TestImplicitComponents:
    def test_adjacency_callback(self):
        # items 0-4 in a ring defined implicitly
        comps = components_from_adjacency(
            5, lambda i: [(i + 1) % 5, (i - 1) % 5])
        assert comps == [[0, 1, 2, 3, 4]]

    def test_seeds_restrict_search(self):
        neighbors = {0: [1], 1: [0], 2: [3], 3: [2], 4: []}
        comps = components_from_adjacency(5, neighbors.__getitem__, seeds=[2])
        assert comps == [[2, 3]]


@given(small_graphs())
def test_components_match_networkx(g):
    ours = {frozenset(c) for c in connected_components(g)}
    theirs = {frozenset(c) for c in nx.connected_components(to_networkx(g))}
    assert ours == theirs


@given(small_graphs())
def test_components_partition_vertices(g):
    comps = connected_components(g)
    seen = [v for comp in comps for v in comp]
    assert sorted(seen) == list(range(g.n))
