"""The generic peel kernel: λ parity with the tuned direct peels.

The tentpole claim — one flat-array skeleton parameterised by (initial
values, decrement rule, bucket kind) reproduces every tuned peel element
for element — is proven here, on fixtures and on random graphs.
"""

import pytest
from hypothesis import given, settings

from repro.backends import as_csr
from repro.core.csr_peel import csr_core_peel, csr_nucleus34_peel, csr_truss_peel
from repro.core.generic_peel import (
    BUCKET_KINDS,
    generic_peel,
    kernel_core_peel,
    kernel_nucleus34_peel,
    kernel_truss_peel,
)
from repro.errors import InvalidParameterError
from repro.kcore import core_numbers

from _graphs import dense_small_graphs, small_graphs


def _no_rule(cell, peeled):
    return ()


class TestValidation:
    def test_needs_exactly_one_rule(self):
        with pytest.raises(InvalidParameterError):
            generic_peel([0, 0])
        with pytest.raises(InvalidParameterError):
            generic_peel([0, 0], unit_rule=_no_rule,
                         revalue_rule=lambda c, k, p, cur: ())

    def test_unknown_bucket_kind(self):
        with pytest.raises(InvalidParameterError, match="bucket kind"):
            generic_peel([0], unit_rule=_no_rule, bucket="fifo")
        assert BUCKET_KINDS == ("auto", "flat", "heap", "bucket")

    def test_unit_rule_rejects_lazy_buckets(self):
        for bucket in ("heap", "bucket"):
            with pytest.raises(InvalidParameterError):
                generic_peel([0], unit_rule=_no_rule, bucket=bucket)

    def test_revalue_rule_rejects_flat(self):
        with pytest.raises(InvalidParameterError):
            generic_peel([0], revalue_rule=lambda c, k, p, cur: (),
                         bucket="flat")

    def test_flat_needs_int_values(self):
        with pytest.raises(InvalidParameterError, match="integer cell"):
            generic_peel([1.5], unit_rule=_no_rule)

    def test_bucket_needs_int_values(self):
        with pytest.raises(InvalidParameterError, match="integer cell"):
            generic_peel([1.5], revalue_rule=lambda c, k, p, cur: (),
                         bucket="bucket")

    def test_negative_values_rejected(self):
        with pytest.raises(InvalidParameterError, match="non-negative"):
            generic_peel([-1], unit_rule=_no_rule)

    def test_empty(self):
        result = generic_peel([], unit_rule=_no_rule)
        assert result.lam == [] and result.max_lambda == 0


class TestKernelInstancesOnFixtures:
    def test_core_parity(self, social):
        csr = as_csr(social)
        direct = csr_core_peel(csr)
        kernel = kernel_core_peel(csr)
        assert kernel.lam == direct.lam
        assert kernel.max_lambda == direct.max_lambda
        assert kernel.order == direct.order

    def test_truss_parity(self, social):
        csr = as_csr(social)
        direct = csr_truss_peel(csr)
        kernel = kernel_truss_peel(csr)
        assert kernel.lam == direct.lam
        assert kernel.max_lambda == direct.max_lambda

    def test_nucleus34_parity(self, social):
        csr = as_csr(social)
        direct = csr_nucleus34_peel(csr)
        kernel = kernel_nucleus34_peel(csr)
        assert kernel.lam == direct.lam
        assert kernel.max_lambda == direct.max_lambda

    def test_k5_levels(self, k5):
        csr = as_csr(k5)
        assert kernel_core_peel(csr).lam == [4] * 5
        assert kernel_truss_peel(csr).lam == [3] * 10
        assert kernel_nucleus34_peel(csr).lam == [2] * 10


class TestBucketKindsAgree:
    """One decomposition, three bucket engines, identical λ.

    Unit-decrement core peeling re-expressed as a revalue rule must give
    the same core numbers through the heap and the lazy bucket queue as
    the flat block-swap layout does natively — λ is unique for monotone
    degree functions, whatever the tie order.
    """

    @staticmethod
    def _revalue_core(csr):
        indptr, indices, _ = csr.hot_arrays()

        def recount(v, k, peeled, current):
            for p in range(indptr[v], indptr[v + 1]):
                w = indices[p]
                if not peeled[w]:
                    yield w, current[w] - 1

        return recount

    def test_three_engines(self, social):
        csr = as_csr(social)
        expected = core_numbers(social)
        degrees = list(csr.degrees())
        rule = self._revalue_core(csr)
        assert kernel_core_peel(csr).lam == expected
        assert generic_peel(degrees, revalue_rule=rule,
                            bucket="heap").lam == expected
        assert generic_peel(list(csr.degrees()), revalue_rule=rule,
                            bucket="bucket").lam == expected

    def test_float_heap_matches_int_heap(self, petersen):
        csr = as_csr(petersen)
        rule = self._revalue_core(csr)
        ints = generic_peel(list(csr.degrees()), revalue_rule=rule,
                            bucket="heap")
        floats = generic_peel([float(d) for d in csr.degrees()],
                              revalue_rule=rule, bucket="heap")
        assert floats.lam == [float(x) for x in ints.lam]
        assert isinstance(floats.max_lambda, float)


@given(small_graphs(max_n=12))
@settings(max_examples=50, deadline=None)
def test_core_kernel_parity_random(g):
    csr = as_csr(g)
    direct = csr_core_peel(csr)
    kernel = kernel_core_peel(csr)
    assert kernel.lam == direct.lam
    assert kernel.order == direct.order


@given(dense_small_graphs(max_n=9))
@settings(max_examples=30, deadline=None)
def test_truss_kernel_parity_random(g):
    csr = as_csr(g)
    assert kernel_truss_peel(csr).lam == csr_truss_peel(csr).lam


@given(dense_small_graphs(max_n=8))
@settings(max_examples=25, deadline=None)
def test_nucleus34_kernel_parity_random(g):
    csr = as_csr(g)
    assert kernel_nucleus34_peel(csr).lam == csr_nucleus34_peel(csr).lam
