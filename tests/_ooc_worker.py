"""Out-of-core worker: build, then decompose under a hard address-space cap.

Run as a subprocess by ``tests/test_outofcore.py`` (and the CI
``out-of-core`` job), once per mode:

``--mode build``
    Stream deterministic random edges through the external-sort builder
    into ``--dir`` (uncapped: the builder's chunk buffers are the build
    memory knob, not the claim under test).

``--mode serve``
    Fresh process: clamp the ``RLIMIT_AS`` soft limit to the current
    ``VmSize`` plus ``--slack-mb`` — a slack *smaller than the on-disk
    arrays* — then open the graph and decompose on the disk backend.  An
    engine that materialised the flat arrays would exceed the cap and die
    with ``MemoryError``; finishing is the memory-boundedness proof, and
    the printed λ/hierarchy hashes let the parent check the answer
    matches the in-memory CSR engine bit for bit.  The build and serve
    phases must be separate processes: freed build memory stays mapped in
    the building process, so a same-process cap would not be binding.

``--mode materialise``
    Control: under the identical cap, load the arrays fully into memory.
    Exits 0 only if that dies with ``MemoryError`` — proving the cap the
    serve mode survived really is too small for the in-memory strategy.

Each mode prints one JSON object on stdout; non-zero exit on any
violated precondition.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import sys
import time


def edge_arrays(seed: int, n: int, m_target: int):
    """Deterministic random edge endpoints (lo, hi) — shared with the
    in-process reference run so both sides decompose the same graph."""
    import numpy as np

    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m_target * 2)
    v = rng.integers(0, n, m_target * 2)
    mask = u != v
    u, v = u[mask][:m_target], v[mask][:m_target]
    return np.minimum(u, v), np.maximum(u, v)


def lam_sha(lam) -> str:
    return hashlib.sha256(",".join(map(str, lam)).encode()).hexdigest()


def canonical_sha(hierarchy) -> str:
    return hashlib.sha256(
        repr(hierarchy.canonical_nuclei()).encode()).hexdigest()


def vm_size_bytes() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmSize not found in /proc/self/status")


def dir_bytes(directory: str) -> int:
    return sum(os.path.getsize(os.path.join(directory, name))
               for name in os.listdir(directory))


def clamp_address_space(slack_mb: int) -> int:
    """Soft-clamp RLIMIT_AS to VmSize + slack; returns the cap."""
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    cap = vm_size_bytes() + slack_mb * (1 << 20)
    resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    return cap


def run_build(args) -> int:
    from repro.external.build import build_diskcsr

    lo, hi = edge_arrays(args.seed, args.n, args.m)
    start = time.perf_counter()
    disk = build_diskcsr(zip(lo.tolist(), hi.tolist()), args.dir, n=args.n)
    m = disk.m
    disk.close()
    print(json.dumps({
        "mode": "build", "n": args.n, "m": m,
        "file_bytes": dir_bytes(args.dir),
        "build_seconds": round(time.perf_counter() - start, 3),
    }))
    return 0


def run_serve(args) -> int:
    from repro.backends import decompose
    from repro.external.diskcsr import DiskCSRGraph

    file_bytes = dir_bytes(args.dir)
    slack = args.slack_mb * (1 << 20)
    cap = None
    if not args.skip_cap:
        if file_bytes <= slack:
            print(f"working set {file_bytes} <= slack {slack}: the cap "
                  "would prove nothing", file=sys.stderr)
            return 3
        cap = clamp_address_space(args.slack_mb)

    soft0, hard0 = resource.getrlimit(resource.RLIMIT_AS)
    start = time.perf_counter()
    with DiskCSRGraph(args.dir) as disk:
        m = disk.m
        result = decompose(disk, 1, 2, algorithm="fnd", backend="disk")
    decompose_seconds = time.perf_counter() - start
    if cap is not None:  # hashing large results is not part of the claim
        resource.setrlimit(resource.RLIMIT_AS,
                           (resource.RLIM_INFINITY
                            if hard0 == resource.RLIM_INFINITY else hard0,
                            hard0))

    print(json.dumps({
        "mode": "serve", "n": args.n, "m": m,
        "file_bytes": file_bytes,
        "cap_bytes": cap, "slack_mb": args.slack_mb,
        "max_lambda": result.max_lambda,
        "lam_sha": lam_sha(result.lam),
        "canonical_sha": canonical_sha(result.hierarchy),
        "decompose_seconds": round(decompose_seconds, 3),
    }))
    return 0


def run_materialise(args) -> int:
    import numpy as np

    cap = clamp_address_space(args.slack_mb)
    try:
        arrays = [np.load(os.path.join(args.dir, name))
                  for name in ("indices.npy", "eids.npy",
                               "esrc.npy", "etgt.npy")]
        loaded = int(sum(a.nbytes for a in arrays))
    except MemoryError:
        print(json.dumps({"mode": "materialise", "oom": True,
                          "cap_bytes": cap}))
        return 0
    print(f"in-memory load of {loaded} bytes fit under the cap: the cap "
          "is not binding", file=sys.stderr)
    return 4


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--mode", choices=["build", "serve", "materialise"],
                        required=True)
    parser.add_argument("--dir", required=True,
                        help="the .diskcsr directory (created by build)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--n", type=int, default=60000)
    parser.add_argument("--m", type=int, default=1_500_000)
    parser.add_argument("--slack-mb", type=int, default=24)
    parser.add_argument("--skip-cap", action="store_true",
                        help="serve uncapped (the small ungated smoke mode)")
    args = parser.parse_args()
    if args.mode == "build":
        return run_build(args)
    if args.mode == "serve":
        return run_serve(args)
    return run_materialise(args)


if __name__ == "__main__":
    sys.exit(main())
