"""k-core convenience layer vs networkx and the connectivity semantics."""

import networkx as nx
from hypothesis import given, settings

from repro.graph.adjacency import Graph
from repro.kcore import (
    core_hierarchy,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
    k_core_subgraph,
    shells,
)
from repro.examples_graphs import figure2_graph

from _graphs import small_graphs, to_networkx


class TestCoreNumbers:
    def test_matches_networkx(self, social):
        expected = nx.core_number(to_networkx(social))
        assert core_numbers(social) == [expected[v] for v in range(social.n)]

    def test_degeneracy(self, k5):
        assert degeneracy(k5) == 4

    def test_degeneracy_ordering_is_permutation(self, social):
        order = degeneracy_ordering(social)
        assert sorted(order) == list(range(social.n))


class TestConnectedKCores:
    def test_figure2_has_two_3cores(self):
        g = figure2_graph()
        cores = k_core(g, 3)
        assert sorted(map(tuple, cores)) == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_2core_is_single(self):
        g = figure2_graph()
        cores = k_core(g, 2)
        assert len(cores) == 1
        assert cores[0] == list(range(10))

    def test_0core_includes_isolated(self):
        g = Graph(3, [(0, 1)])
        cores = k_core(g, 0)
        assert [2] in cores

    def test_no_cores_above_degeneracy(self, k4):
        assert k_core(k4, 4) == []

    def test_precomputed_lambda_reused(self):
        g = figure2_graph()
        lam = core_numbers(g)
        assert k_core(g, 3, lam=lam) == k_core(g, 3)


class TestKCoreSubgraph:
    def test_batagelj_closure_disconnected(self):
        """The BZ convention keeps both 3-cores in ONE subgraph."""
        g = figure2_graph()
        sub = k_core_subgraph(g, 3)
        assert sub.m == 12  # the two K4s
        assert not sub.has_edge(3, 8)

    def test_matches_networkx_k_core(self, social):
        for k in (1, 2, 3):
            ours = k_core_subgraph(social, k)
            theirs = nx.k_core(to_networkx(social), k)
            assert sorted(ours.edges()) == sorted(theirs.edges())


class TestShells:
    def test_partition(self, social):
        sh = shells(social)
        assert sorted(v for vs in sh.values() for v in vs) == list(range(social.n))

    def test_figure2_shells(self):
        sh = shells(figure2_graph())
        assert sh[3] == [0, 1, 2, 3, 4, 5, 6, 7]
        assert sh[2] == [8, 9]
        assert sh[1] == [10]


class TestCoreHierarchy:
    def test_default_lcps(self):
        result = core_hierarchy(figure2_graph())
        assert result.algorithm == "lcps"
        assert result.hierarchy is not None

    def test_other_algorithm(self):
        result = core_hierarchy(figure2_graph(), algorithm="fnd")
        assert result.algorithm == "fnd"


@given(small_graphs(max_n=12))
@settings(max_examples=40)
def test_connected_cores_partition_closure(g):
    """Connected k-cores partition the BZ closure, for every k."""
    lam = core_numbers(g)
    top = max(lam, default=0)
    for k in range(1, top + 1):
        closure = {v for v in g.vertices() if lam[v] >= k}
        cores = k_core(g, k, lam=lam)
        seen = [v for core in cores for v in core]
        assert sorted(seen) == sorted(closure)
        assert len(set(seen)) == len(seen)


@given(small_graphs(max_n=12))
@settings(max_examples=40)
def test_each_connected_core_has_min_degree_k(g):
    lam = core_numbers(g)
    top = max(lam, default=0)
    for k in range(1, top + 1):
        for core in k_core(g, k, lam=lam):
            members = set(core)
            for v in core:
                inside = sum(1 for w in g.neighbors(v) if w in members)
                assert inside >= k
