"""Hierarchy comparison metrics."""

from hypothesis import given, settings

from repro.analysis.comparison import (
    compare_hierarchies,
    nucleus_jaccard,
)
from repro.core.decomposition import nucleus_decomposition
from repro.examples_graphs import figure2_graph
from repro.graph import generators

from _graphs import small_graphs


class TestJaccard:
    def test_identical(self):
        s = frozenset({1, 2, 3})
        assert nucleus_jaccard(s, s) == 1.0

    def test_disjoint(self):
        assert nucleus_jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_empty(self):
        assert nucleus_jaccard(frozenset(), frozenset()) == 1.0

    def test_partial(self):
        assert nucleus_jaccard(frozenset({1, 2}), frozenset({2, 3})) == 1 / 3


class TestCompare:
    def test_same_algorithm_identical(self):
        g = figure2_graph()
        a = nucleus_decomposition(g, 1, 2, algorithm="dft").hierarchy
        b = nucleus_decomposition(g, 1, 2, algorithm="fnd").hierarchy
        result = compare_hierarchies(a, b)
        assert result.identical
        assert result.precision == result.recall == 1.0
        assert result.mean_best_jaccard == 1.0

    def test_perturbed_graph_similar_not_identical(self):
        g = generators.powerlaw_cluster(100, 5, 0.6, seed=8)
        thinned = generators.edge_dropout(g, 0.05, seed=9)
        a = nucleus_decomposition(g, 1, 2, algorithm="fnd").hierarchy
        b = nucleus_decomposition(thinned, 1, 2, algorithm="fnd").hierarchy
        result = compare_hierarchies(a, b)
        assert not result.identical
        assert result.mean_best_jaccard > 0.3

    def test_unrelated_graphs_dissimilar(self):
        a = nucleus_decomposition(generators.complete_graph(6), 1, 2,
                                  algorithm="fnd").hierarchy
        b = nucleus_decomposition(generators.path_graph(6), 1, 2,
                                  algorithm="fnd").hierarchy
        result = compare_hierarchies(a, b)
        assert result.shared_nuclei == 0

    def test_empty_hierarchies(self):
        from repro.graph.adjacency import Graph
        a = nucleus_decomposition(Graph.empty(3), 1, 2, algorithm="fnd").hierarchy
        b = nucleus_decomposition(Graph.empty(3), 1, 2, algorithm="fnd").hierarchy
        result = compare_hierarchies(a, b)
        assert result.identical
        assert result.precision == 1.0


@given(small_graphs(max_n=10))
@settings(max_examples=30, deadline=None)
def test_all_algorithms_score_identical_random(g):
    hierarchies = [nucleus_decomposition(g, 1, 2, algorithm=a).hierarchy
                   for a in ("naive", "dft", "fnd", "lcps")]
    for other in hierarchies[1:]:
        result = compare_hierarchies(hierarchies[0], other)
        assert result.identical
        assert result.mean_best_jaccard == 1.0
