"""Hierarchy JSON round-trips and DOT exports."""

import pytest
from hypothesis import given, settings

from repro.core.decomposition import nucleus_decomposition
from repro.errors import GraphFormatError
from repro.examples_graphs import figure2_graph, figure5_graph
from repro.export import (
    hierarchy_from_json,
    hierarchy_to_json,
    load_hierarchy,
    save_hierarchy,
    skeleton_to_dot,
    tree_to_dot,
)

from _graphs import small_graphs


class TestJsonRoundTrip:
    def test_identity(self):
        h = nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd").hierarchy
        restored = hierarchy_from_json(hierarchy_to_json(h))
        assert restored.lam == h.lam
        assert restored.node_lambda == h.node_lambda
        assert restored.parent == h.parent
        assert restored.comp == h.comp
        assert restored.root == h.root
        assert restored.algorithm == h.algorithm
        assert restored.canonical_nuclei() == h.canonical_nuclei()

    def test_file_round_trip(self, tmp_path):
        h = nucleus_decomposition(figure5_graph(), 1, 2, algorithm="dft").hierarchy
        path = tmp_path / "h.json"
        save_hierarchy(h, path)
        restored = load_hierarchy(path)
        restored.validate()
        assert restored.canonical_nuclei() == h.canonical_nuclei()

    def test_malformed_raises(self):
        with pytest.raises(GraphFormatError):
            hierarchy_from_json("{}")
        with pytest.raises(GraphFormatError):
            hierarchy_from_json("not json at all")

    def test_23_hierarchy_round_trip(self):
        h = nucleus_decomposition(figure2_graph(), 2, 3, algorithm="fnd").hierarchy
        restored = hierarchy_from_json(hierarchy_to_json(h))
        assert (restored.r, restored.s) == (2, 3)
        assert restored.canonical_nuclei() == h.canonical_nuclei()


class TestDot:
    def test_tree_dot_structure(self):
        result = nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd")
        dot = tree_to_dot(result.hierarchy.condense())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == len(result.hierarchy.condense()) - 1
        assert "root" in dot

    def test_skeleton_dot_edge_styles(self):
        # figure4: two equal-lambda sub-cores merged => at least one dashed edge
        from repro.examples_graphs import figure4_graph
        h = nucleus_decomposition(figure4_graph(), 1, 2, algorithm="dft").hierarchy
        dot = skeleton_to_dot(h)
        assert "dashed" in dot
        assert "solid" in dot

    def test_dot_on_empty_graph(self):
        from repro.graph.adjacency import Graph
        h = nucleus_decomposition(Graph.empty(3), 1, 2, algorithm="fnd").hierarchy
        dot = tree_to_dot(h.condense())
        assert "digraph" in dot


@given(small_graphs(max_n=10))
@settings(max_examples=25, deadline=None)
def test_round_trip_random(g):
    h = nucleus_decomposition(g, 1, 2, algorithm="fnd").hierarchy
    restored = hierarchy_from_json(hierarchy_to_json(h))
    restored.validate()
    assert restored.canonical_nuclei() == h.canonical_nuclei()


class TestNpzDispatch:
    def test_save_hierarchy_dispatches_on_suffix(self, tmp_path):
        h = nucleus_decomposition(figure2_graph(), 1, 2,
                                  algorithm="fnd").hierarchy
        pytest.importorskip("numpy")
        path = tmp_path / "h.npz"
        save_hierarchy(h, path)
        restored = load_hierarchy(path)
        restored.validate()
        assert restored.lam == h.lam
        assert restored.canonical_nuclei() == h.canonical_nuclei()

    def test_json_path_still_json(self, tmp_path):
        h = nucleus_decomposition(figure2_graph(), 1, 2,
                                  algorithm="fnd").hierarchy
        path = tmp_path / "h.json"
        save_hierarchy(h, path)
        assert path.read_text().startswith("{")
