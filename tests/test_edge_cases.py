"""Adversarial and degenerate inputs across the whole stack."""

import pytest
from hypothesis import given, settings

from repro.core.decomposition import nucleus_decomposition
from repro.core.peeling import peel
from repro.core.views import build_view
from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.graph.adjacency import Graph

from _graphs import small_graphs

ALL_ALGORITHMS_12 = ("naive", "dft", "fnd", "lcps", "hypo")


class TestDegenerateGraphs:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS_12)
    def test_empty_graph(self, algorithm):
        result = nucleus_decomposition(Graph.empty(0), 1, 2, algorithm=algorithm)
        assert result.lam == []
        if result.hierarchy is not None:
            result.hierarchy.validate()
            assert result.hierarchy.canonical_nuclei() == set()

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS_12)
    def test_only_isolated_vertices(self, algorithm):
        result = nucleus_decomposition(Graph.empty(5), 1, 2, algorithm=algorithm)
        assert result.lam == [0] * 5
        if result.hierarchy is not None:
            # all vertices hang off the root; no nuclei exist
            assert result.hierarchy.canonical_nuclei() == set()

    @pytest.mark.parametrize("algorithm", ("naive", "dft", "fnd"))
    def test_single_edge_all_rs(self, algorithm):
        g = Graph(2, [(0, 1)])
        for (r, s) in ((1, 2), (2, 3)):
            result = nucleus_decomposition(g, r, s, algorithm=algorithm)
            result.hierarchy.validate()
        # at (1,2) a single edge is a 1-nucleus
        fam = nucleus_decomposition(g, 1, 2, algorithm=algorithm) \
            .hierarchy.canonical_nuclei()
        assert fam == {(1, frozenset({0, 1}))}

    def test_edgeless_truss_views(self):
        g = Graph.empty(4)
        for (r, s) in ((2, 3), (3, 4)):
            result = nucleus_decomposition(g, r, s, algorithm="fnd")
            assert result.lam == []
            assert result.hierarchy.canonical_nuclei() == set()

    def test_huge_star(self):
        g = generators.star(500)
        for algorithm in ALL_ALGORITHMS_12:
            result = nucleus_decomposition(g, 1, 2, algorithm=algorithm)
            assert result.max_lambda == 1
            if result.hierarchy is not None:
                assert result.hierarchy.canonical_nuclei() == {
                    (1, frozenset(range(501)))}

    def test_long_path(self):
        g = generators.path_graph(1000)
        fam = nucleus_decomposition(g, 1, 2, algorithm="fnd") \
            .hierarchy.canonical_nuclei()
        assert fam == {(1, frozenset(range(1000)))}

    def test_disjoint_cliques_many_components(self):
        blocks = 12
        edges = []
        for b in range(blocks):
            base = 4 * b
            edges.extend((base + i, base + j)
                         for i in range(4) for j in range(i + 1, 4))
        g = Graph(4 * blocks, edges)
        for algorithm in ("naive", "dft", "fnd", "lcps"):
            fam = nucleus_decomposition(g, 1, 2, algorithm=algorithm) \
                .hierarchy.canonical_nuclei()
            assert len(fam) == blocks
            assert all(k == 3 for k, _ in fam)

    def test_nested_cliques_deep_hierarchy(self):
        # K4 inside K8 inside K12 (as vertex subsets with extra edges)
        edges = set()
        for span in (range(12), range(8), range(4)):
            for i in span:
                for j in span:
                    if i < j:
                        edges.add((i, j))
        g = Graph(12, list(edges))  # it's just K12
        fam = nucleus_decomposition(g, 1, 2, algorithm="fnd") \
            .hierarchy.canonical_nuclei()
        assert fam == {(11, frozenset(range(12)))}


class TestParameterValidation:
    def test_r_ge_s_rejected(self, k4):
        with pytest.raises(InvalidParameterError):
            build_view(k4, 2, 2)
        with pytest.raises(InvalidParameterError):
            nucleus_decomposition(k4, 3, 2)

    def test_bad_queue_kind(self, k4):
        with pytest.raises(InvalidParameterError):
            peel(build_view(k4, 1, 2), queue_kind="fibonacci")

    def test_heap_queue_matches_bucket(self, social):
        view = build_view(social, 1, 2)
        assert peel(view, queue_kind="heap").lam == \
            peel(view, queue_kind="bucket").lam


class TestDftAblation:
    def test_no_compression_same_result(self, social):
        from repro.core.dft import dft_hierarchy
        view = build_view(social, 1, 2)
        peeling = peel(view)
        on = dft_hierarchy(view, peeling, path_compression=True)
        off = dft_hierarchy(view, peeling, path_compression=False)
        off.validate()
        assert on.canonical_nuclei() == off.canonical_nuclei()


@given(small_graphs(max_n=10))
@settings(max_examples=30, deadline=None)
def test_heap_and_bucket_agree_random(g):
    for (r, s) in ((1, 2), (2, 3)):
        view = build_view(g, r, s)
        assert peel(view, queue_kind="heap").lam == \
            peel(view, queue_kind="bucket").lam


@given(small_graphs(max_n=10))
@settings(max_examples=30, deadline=None)
def test_dft_compression_ablation_random(g):
    from repro.core.dft import dft_hierarchy
    view = build_view(g, 1, 2)
    peeling = peel(view)
    on = dft_hierarchy(view, peeling, path_compression=True)
    off = dft_hierarchy(view, peeling, path_compression=False)
    assert on.canonical_nuclei() == off.canonical_nuclei()
