"""Disjoint-set forests: unit + model-based property tests."""

from hypothesis import given, strategies as st

from repro.core.disjoint_set import (
    ArrayRootedForest,
    DisjointSetForest,
    RootedForest,
)


class TestDisjointSetForest:
    def test_initial_singletons(self):
        dsu = DisjointSetForest(4)
        assert dsu.set_count == 4
        assert all(dsu.find(i) == i for i in range(4))

    def test_union_connects(self):
        dsu = DisjointSetForest(4)
        dsu.union(0, 1)
        assert dsu.connected(0, 1)
        assert not dsu.connected(0, 2)
        assert dsu.set_count == 3

    def test_union_idempotent(self):
        dsu = DisjointSetForest(3)
        dsu.union(0, 1)
        root = dsu.union(0, 1)
        assert dsu.set_count == 2
        assert root == dsu.find(0)

    def test_transitivity(self):
        dsu = DisjointSetForest(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        dsu.union(3, 4)
        assert dsu.connected(0, 2)
        assert not dsu.connected(2, 3)

    def test_make_set(self):
        dsu = DisjointSetForest(2)
        new = dsu.make_set()
        assert new == 2
        assert dsu.find(new) == new
        assert dsu.set_count == 3

    def test_len(self):
        assert len(DisjointSetForest(7)) == 7


class TestRootedForest:
    def test_make_node(self):
        f = RootedForest()
        a, b = f.make_node(), f.make_node()
        assert (a, b) == (0, 1)
        assert f.parent[a] is None
        assert f.find(a) == a

    def test_union_sets_parent_and_root(self):
        f = RootedForest()
        a, b = f.make_node(), f.make_node()
        survivor = f.union(a, b)
        loser = b if survivor == a else a
        assert f.parent[loser] == survivor
        assert f.root[loser] == survivor
        assert f.find(a) == f.find(b) == survivor

    def test_union_by_rank(self):
        f = RootedForest()
        a, b, c = (f.make_node() for _ in range(3))
        big = f.union(a, b)  # rank of survivor becomes 1
        assert f.union(big, c) == big  # lower-rank c goes under big

    def test_attach_preserves_parent_semantics(self):
        f = RootedForest()
        child, parent = f.make_node(), f.make_node()
        f.attach(child, parent)
        assert f.parent[child] == parent
        assert f.find(child) == parent

    def test_find_compresses_root_not_parent(self):
        f = RootedForest()
        a, b, c = (f.make_node() for _ in range(3))
        f.attach(a, b)
        f.attach(b, c)
        assert f.find(a) == c
        assert f.root[a] == c       # compressed
        assert f.parent[a] == b     # hierarchy edge untouched
        assert f.parent[b] == c

    def test_union_self_noop(self):
        f = RootedForest()
        a = f.make_node()
        assert f.union(a, a) == a
        assert f.parent[a] is None

    def test_deep_chain_compression(self):
        f = RootedForest()
        nodes = [f.make_node() for _ in range(50)]
        for child, parent in zip(nodes, nodes[1:]):
            f.attach(child, parent)
        top = f.find(nodes[0])
        assert top == nodes[-1]
        # after one find, the whole chain's roots point at the top
        assert all(f.root[v] == top for v in nodes[:-1])
        # but parents still spell out the original chain
        assert all(f.parent[v] == nodes[i + 1] for i, v in enumerate(nodes[:-1]))


@given(st.integers(2, 25), st.lists(
    st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=60))
def test_dsu_matches_naive_model(n, unions):
    """Model-based: DisjointSetForest vs a dict-of-frozensets partition."""
    dsu = DisjointSetForest(n)
    model: dict[int, set[int]] = {i: {i} for i in range(n)}
    for raw_x, raw_y in unions:
        x, y = raw_x % n, raw_y % n
        dsu.union(x, y)
        sx, sy = model[x], model[y]
        if sx is not sy:
            merged = sx | sy
            for v in merged:
                model[v] = merged
    for x in range(n):
        for y in range(n):
            assert dsu.connected(x, y) == (model[x] is model[y] or model[x] == model[y])


@given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
def test_rooted_forest_find_agrees_with_dsu(pairs):
    """Union-r produces the same partition as the classic structure."""
    n = 15
    f = RootedForest()
    for _ in range(n):
        f.make_node()
    dsu = DisjointSetForest(n)
    for x, y in pairs:
        f.union(x, y)
        dsu.union(x, y)
    for x in range(n):
        for y in range(n):
            assert (f.find(x) == f.find(y)) == dsu.connected(x, y)


@given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=30))
def test_rooted_forest_parent_edges_form_forest(pairs):
    """Parent pointers written by Union-r never form a cycle."""
    n = 12
    f = RootedForest()
    for _ in range(n):
        f.make_node()
    for x, y in pairs:
        f.union(x, y)
    for start in range(n):
        seen = set()
        cur = start
        while cur is not None:
            assert cur not in seen
            seen.add(cur)
            cur = f.parent[cur]


class TestArrayRootedForest:
    """The flat-int twin of RootedForest: -1 sentinel, same discipline."""

    def test_preallocated_and_incremental_nodes(self):
        f = ArrayRootedForest(3)
        assert len(f) == 3
        assert f.make_node() == 3
        assert f.parent == [-1, -1, -1, -1]
        assert all(f.find(x) == x for x in range(4))

    def test_union_sets_parent_and_root(self):
        f = ArrayRootedForest(2)
        survivor = f.union(0, 1)
        loser = 1 - survivor
        assert f.parent[loser] == survivor
        assert f.root[loser] == survivor
        assert f.find(0) == f.find(1) == survivor

    def test_attach_and_find_compress_root_not_parent(self):
        f = ArrayRootedForest(3)
        f.attach(0, 1)
        f.attach(1, 2)
        assert f.find(0) == 2
        assert f.root[0] == 2        # compressed
        assert f.parent[0] == 1      # hierarchy edge untouched
        assert f.parent[1] == 2

    def test_find_without_compression(self):
        f = ArrayRootedForest(3)
        f.attach(0, 1)
        f.attach(1, 2)
        assert f.find(0, compress=False) == 2
        assert f.root[0] == 1        # untouched

    def test_parents_or_none(self):
        f = ArrayRootedForest(2)
        f.attach(0, 1)
        assert f.parents_or_none() == [1, None]


@given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                max_size=50),
       st.lists(st.integers(0, 14), max_size=20))
def test_array_forest_matches_rooted_forest(pairs, finds):
    """Property: ArrayRootedForest mirrors RootedForest operation-for-
    operation — identical parent/root/rank state (modulo sentinel) and
    identical find results, interleaving unions with compressing finds."""
    n = 15
    ref = RootedForest()
    for _ in range(n):
        ref.make_node()
    arr = ArrayRootedForest(n)
    # deterministic interleave: a compressing find after every union
    for i, (x, y) in enumerate(pairs):
        assert ref.union(x, y) == arr.union(x, y)
        if i < len(finds):
            assert ref.find(finds[i]) == arr.find(finds[i])
    for x in finds[len(pairs):]:
        assert ref.find(x) == arr.find(x)
    assert arr.parents_or_none() == ref.parent
    assert [r if r >= 0 else None for r in arr.root] == ref.root
    assert arr.rank == ref.rank
