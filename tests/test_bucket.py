"""Bucket priority queues: model-based and unit tests."""

from hypothesis import given, strategies as st

from repro.core.bucket import MaxBucketQueue, MinBucketQueue


class TestMinBucketQueue:
    def test_pops_in_priority_order(self):
        q = MinBucketQueue([3, 1, 2])
        assert q.pop() == (1, 1)
        assert q.pop() == (2, 2)
        assert q.pop() == (0, 3)
        assert q.pop() is None

    def test_update_moves_item_down(self):
        q = MinBucketQueue([5, 5, 5])
        q.update(2, 1)
        assert q.pop() == (2, 1)

    def test_stale_entries_skipped(self):
        q = MinBucketQueue([4, 4])
        q.update(0, 3)
        q.update(0, 2)  # two updates leave a stale entry at 3
        assert q.pop() == (0, 2)
        assert q.pop() == (1, 4)

    def test_each_item_popped_once(self):
        q = MinBucketQueue([2, 2, 2])
        q.update(1, 1)
        popped = []
        while (item := q.pop()) is not None:
            popped.append(item[0])
        assert sorted(popped) == [0, 1, 2]

    def test_empty(self):
        assert MinBucketQueue([]).pop() is None

    def test_equal_priority_all_returned(self):
        q = MinBucketQueue([0, 0, 0, 0])
        assert sorted(q.pop()[0] for _ in range(4)) == [0, 1, 2, 3]


class TestMaxBucketQueue:
    def test_pops_maximum_first(self):
        q = MaxBucketQueue(10)
        q.push(0, 2)
        q.push(1, 7)
        q.push(2, 5)
        assert q.pop() == (1, 7)
        assert q.pop() == (2, 5)
        assert q.pop() == (0, 2)
        assert q.pop() is None

    def test_interleaved_push_pop(self):
        q = MaxBucketQueue(10)
        q.push(0, 3)
        assert q.pop() == (0, 3)
        q.push(1, 1)
        q.push(2, 9)  # pushing above cursor must rewind it
        assert q.pop() == (2, 9)
        assert q.pop() == (1, 1)

    def test_len(self):
        q = MaxBucketQueue(5)
        assert len(q) == 0
        q.push(0, 1)
        q.push(1, 2)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
def test_min_queue_is_a_sort(priorities):
    q = MinBucketQueue(list(priorities))
    out = []
    while (popped := q.pop()) is not None:
        out.append(popped[1])
    assert out == sorted(priorities)


@given(st.lists(st.tuples(st.integers(0, 20)), min_size=1, max_size=50))
def test_max_queue_is_a_reverse_sort(items):
    q = MaxBucketQueue(20)
    for i, (p,) in enumerate(items):
        q.push(i, p)
    out = []
    while (popped := q.pop()) is not None:
        out.append(popped[1])
    assert out == sorted((p for (p,) in items), reverse=True)


@given(st.lists(st.integers(0, 15), min_size=1, max_size=30),
       st.data())
def test_min_queue_with_monotone_updates(priorities, data):
    """Simulate peeling: repeatedly pop, then decrement some survivors."""
    q = MinBucketQueue(list(priorities))
    current = list(priorities)
    extracted: list[tuple[int, int]] = []
    alive = set(range(len(priorities)))
    while True:
        popped = q.pop()
        if popped is None:
            break
        item, priority = popped
        assert item in alive
        assert priority == current[item]
        # pop order must be globally non-decreasing, like lambda values
        if extracted:
            assert priority >= extracted[-1][1]
        extracted.append(popped)
        alive.discard(item)
        for other in list(alive):
            if current[other] > priority and data.draw(st.booleans()):
                current[other] -= 1
                q.update(other, current[other])
    assert not alive
