"""Per-algorithm behaviour: naive, DFT, FND, LCPS, Hypo."""

import pytest

from repro.core.decomposition import nucleus_decomposition
from repro.core.dft import dft_hierarchy
from repro.core.fnd import FndInstrumentation, fnd_decomposition
from repro.core.hypo import hypo_traversal
from repro.core.lcps import lcps_hierarchy
from repro.core.peeling import peel
from repro.core.traversal import naive_hierarchy
from repro.core.views import EdgeView, VertexView, build_view
from repro.errors import InvalidParameterError, UnknownAlgorithmError
from repro.examples_graphs import figure2_graph, figure4_graph
from repro.graph import generators
from repro.graph.adjacency import Graph


class TestNaive:
    def test_two_three_cores(self):
        g = figure2_graph()
        view = VertexView(g)
        h = naive_hierarchy(view, peel(view))
        h.validate()
        fam = h.canonical_nuclei()
        assert (3, frozenset({0, 1, 2, 3})) in fam
        assert (3, frozenset({4, 5, 6, 7})) in fam

    def test_empty_graph(self):
        g = Graph.empty(3)
        view = VertexView(g)
        h = naive_hierarchy(view, peel(view))
        h.validate()
        assert h.num_subnuclei == 0
        assert h.canonical_nuclei() == set()

    def test_hierarchy_nesting(self):
        g = figure2_graph()
        view = VertexView(g)
        h = naive_hierarchy(view, peel(view))
        tree = h.condense()
        three_cores = [n for n in tree.nodes if n.k == 3]
        assert all(tree[n.parent].k == 2 for n in three_cores)


class TestDft:
    def test_subnuclei_are_maximal(self):
        g = figure4_graph()
        view = VertexView(g)
        h = dft_hierarchy(view, peel(view))
        h.validate()
        # T_{1,2}: the K4, and the two one-vertex sub-cores {4}, {5}
        assert h.num_subnuclei == 3

    def test_equal_lambda_merge_across_denser_region(self):
        """The paper's A/E case: sub-cores merged via Find-r through the K4."""
        g = figure4_graph()
        view = VertexView(g)
        h = dft_hierarchy(view, peel(view))
        fam = h.canonical_nuclei()
        assert (2, frozenset(range(6))) in fam  # one 2-core with both 4 and 5

    def test_isolated_cells_attach_to_root(self):
        g = Graph(4, [(0, 1)])
        view = VertexView(g)
        h = dft_hierarchy(view, peel(view))
        assert h.comp[2] == h.root
        assert h.comp[3] == h.root

    def test_triangle_free_23_hierarchy_is_trivial(self, petersen):
        view = EdgeView(petersen)
        h = dft_hierarchy(view, peel(view))
        h.validate()
        assert h.num_subnuclei == 0


class TestFnd:
    def test_instrumentation_counts(self):
        g = figure2_graph()
        stats = FndInstrumentation()
        view = VertexView(g)
        peeling, h = fnd_decomposition(view, instrumentation=stats)
        h.validate()
        assert stats.num_subnuclei == h.num_subnuclei
        assert stats.num_subnuclei >= 4  # >= |T_{1,2}|
        assert stats.num_downward_connections >= 1

    def test_lambda_matches_plain_peeling(self):
        g = generators.powerlaw_cluster(100, 5, 0.5, seed=8)
        view = VertexView(g)
        plain = peel(view)
        peeling, _ = fnd_decomposition(view)
        assert peeling.lam == plain.lam
        assert peeling.max_lambda == plain.max_lambda

    def test_star_late_center(self):
        """Star graph: the centre is processed last; FND must still unify."""
        g = generators.star(6)
        view = VertexView(g)
        _, h = fnd_decomposition(view)
        h.validate()
        fam = h.canonical_nuclei()
        assert fam == {(1, frozenset(range(7)))}

    def test_nonmaximal_count_at_least_maximal(self):
        g = generators.powerlaw_cluster(150, 5, 0.6, seed=3)
        view = VertexView(g)
        stats = FndInstrumentation()
        fnd_decomposition(view, instrumentation=stats)
        dft = dft_hierarchy(view, peel(view))
        assert stats.num_subnuclei >= dft.num_subnuclei

    def test_empty_graph(self):
        view = VertexView(Graph.empty(0))
        peeling, h = fnd_decomposition(view)
        assert peeling.lam == []
        h.validate()


class TestLcps:
    def test_requires_12_peeling(self):
        g = figure2_graph()
        wrong = peel(EdgeView(g))
        with pytest.raises(InvalidParameterError):
            lcps_hierarchy(g, wrong)

    def test_disconnected_components(self):
        g = Graph(8, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)])
        view = VertexView(g)
        h = lcps_hierarchy(g, peel(view))
        h.validate()
        fam = h.canonical_nuclei()
        assert (2, frozenset({0, 1, 2})) in fam
        assert (2, frozenset({4, 5, 6})) in fam

    def test_chain_nodes_filtered_canonically(self):
        g = generators.complete_graph(5)  # lambda 4 everywhere
        view = VertexView(g)
        h = lcps_hierarchy(g, peel(view))
        fam = h.canonical_nuclei()
        assert fam == {(4, frozenset(range(5)))}

    def test_deep_then_shallow_then_deep(self):
        """Two K4s joined by a 2-path: close/open brackets on one queue."""
        g = figure2_graph()
        view = VertexView(g)
        h = lcps_hierarchy(g, peel(view))
        fam = h.canonical_nuclei()
        assert (3, frozenset({0, 1, 2, 3})) in fam
        assert (3, frozenset({4, 5, 6, 7})) in fam


class TestHypo:
    def test_counts_components(self):
        g = Graph(6, [(0, 1), (2, 3)])
        view = VertexView(g)
        assert hypo_traversal(view, peel(view)) == 4  # 2 pairs + 2 isolated

    def test_visits_everything(self, social):
        view = VertexView(social)
        assert hypo_traversal(view, peel(view)) >= 1


class TestDecompositionApi:
    def test_unknown_algorithm(self, k4):
        with pytest.raises(UnknownAlgorithmError):
            nucleus_decomposition(k4, 1, 2, algorithm="magic")

    def test_lcps_rejected_for_23(self, k4):
        with pytest.raises(InvalidParameterError):
            nucleus_decomposition(k4, 2, 3, algorithm="lcps")

    def test_hypo_has_no_hierarchy(self, k4):
        result = nucleus_decomposition(k4, 1, 2, algorithm="hypo")
        assert result.hierarchy is None
        with pytest.raises(InvalidParameterError):
            result.nucleus_vertices(0)

    def test_timings_populated(self, social):
        result = nucleus_decomposition(social, 1, 2, algorithm="dft")
        assert result.peel_seconds > 0
        assert result.post_seconds >= 0
        assert result.total_seconds >= result.peel_seconds

    def test_fnd_reports_split(self, social):
        result = nucleus_decomposition(social, 2, 3, algorithm="fnd")
        assert result.fnd_stats is not None
        assert result.post_seconds == pytest.approx(
            result.fnd_stats.build_seconds, abs=1e-6)

    def test_view_reuse(self, social):
        view = build_view(social, 1, 2)
        a = nucleus_decomposition(social, 1, 2, algorithm="dft", view=view)
        b = nucleus_decomposition(social, 1, 2, algorithm="fnd", view=view)
        assert a.lam == b.lam

    def test_nucleus_subgraph(self):
        g = figure2_graph()
        result = nucleus_decomposition(g, 1, 2, algorithm="fnd")
        tree = result.hierarchy.condense()
        k3 = next(n for n in tree.nodes if n.k == 3)
        sub = result.nucleus_subgraph(k3.id)
        assert sub.n == 4 and sub.m == 6  # a K4

    def test_nuclei_at_level(self):
        g = figure2_graph()
        result = nucleus_decomposition(g, 1, 2, algorithm="fnd")
        dense = result.nuclei_at_level(3)
        assert len(dense) == 2
        tree = result.hierarchy.condense()
        assert all(tree[i].k == 3 for i in dense)
