"""The Hierarchy / NucleusTree result types."""

import pytest

from repro.core.decomposition import nucleus_decomposition
from repro.core.hierarchy import Hierarchy
from repro.examples_graphs import figure2_graph, figure5_graph
from repro.graph import generators


def build_manual_hierarchy() -> Hierarchy:
    """Small hand-made skeleton: root(0) <- A(2) <- B(3), C(3); B~B2 merged."""
    #   nodes: 0=A(λ2) 1=B(λ3) 2=B2(λ3, same nucleus as B) 3=C(λ3) 4=root
    node_lambda = [2, 3, 3, 3, 0]
    parent = [4, 0, 1, 0, None]
    #   cells: λ: two at 2 (A), three at 3 (B/B2/C), one at 0 (root)
    lam = [2, 2, 3, 3, 3, 0]
    comp = [0, 0, 1, 2, 3, 4]
    return Hierarchy(1, 2, lam, node_lambda, parent, comp, root=4,
                     algorithm="manual")


class TestHierarchyBasics:
    def test_counts(self):
        h = build_manual_hierarchy()
        assert h.num_cells == 6
        assert h.num_nodes == 5
        assert h.num_subnuclei == 4
        assert h.max_lambda == 3

    def test_members(self):
        h = build_manual_hierarchy()
        assert h.members(0) == [0, 1]
        assert h.members(4) == [5]

    def test_children_lists(self):
        h = build_manual_hierarchy()
        children = h.children_lists()
        assert children[4] == [0]
        assert sorted(children[0]) == [1, 3]

    def test_validate_passes(self):
        build_manual_hierarchy().validate()

    def test_validate_catches_bad_comp(self):
        h = build_manual_hierarchy()
        h.comp[0] = 1  # cell with lambda 2 assigned to a lambda-3 node
        with pytest.raises(AssertionError):
            h.validate()

    def test_validate_catches_cycle(self):
        h = build_manual_hierarchy()
        h.parent[1] = 2
        h.parent[2] = 1
        with pytest.raises(AssertionError):
            h.validate()

    def test_repr(self):
        assert "manual" in repr(build_manual_hierarchy())


class TestCondense:
    def test_equal_lambda_nodes_grouped(self):
        h = build_manual_hierarchy()
        tree = h.condense()
        # B and B2 collapse: root, A, B+B2, C
        assert len(tree) == 4
        ks = sorted(node.k for node in tree.nodes)
        assert ks == [0, 2, 3, 3]

    def test_subtree_cells_nested(self):
        h = build_manual_hierarchy()
        tree = h.condense()
        a = next(n for n in tree.nodes if n.k == 2)
        assert sorted(tree.subtree_cells(a.id)) == [0, 1, 2, 3, 4]

    def test_own_cells_partition(self):
        h = build_manual_hierarchy()
        tree = h.condense()
        all_cells = sorted(c for n in tree.nodes for c in n.own_cells)
        assert all_cells == list(range(6))

    def test_condense_cached(self):
        h = build_manual_hierarchy()
        assert h.condense() is h.condense()

    def test_depth_and_leaves(self):
        tree = build_manual_hierarchy().condense()
        assert tree.depth() == 2
        assert len(tree.leaves()) == 2

    def test_format_output(self):
        text = build_manual_hierarchy().condense().format()
        assert "k=0" in text and "k=3" in text

    def test_format_truncation(self):
        text = build_manual_hierarchy().condense().format(max_nodes=1)
        assert "truncated" in text


class TestCanonicalNuclei:
    def test_manual(self):
        fam = build_manual_hierarchy().canonical_nuclei()
        assert (2, frozenset({0, 1, 2, 3, 4})) in fam
        assert (3, frozenset({2, 3})) in fam
        assert (3, frozenset({4})) in fam
        assert len(fam) == 3

    def test_chain_nodes_dropped(self):
        # root <- empty chain node (λ1, no members, one child) <- leaf (λ2)
        h = Hierarchy(1, 2, lam=[2, 2], node_lambda=[1, 2, 0],
                      parent=[2, 0, None], comp=[1, 1], root=2,
                      algorithm="manual")
        fam = h.canonical_nuclei()
        assert fam == {(2, frozenset({0, 1}))}


class TestNucleusOfCell:
    def test_max_nucleus(self):
        g = figure2_graph()
        h = nucleus_decomposition(g, 1, 2, algorithm="dft").hierarchy
        assert sorted(h.nucleus_of_cell(0)) == [0, 1, 2, 3]      # its 3-core
        assert sorted(h.nucleus_of_cell(8)) == list(range(10))   # the 2-core

    def test_lower_level_nucleus(self):
        g = figure2_graph()
        h = nucleus_decomposition(g, 1, 2, algorithm="fnd").hierarchy
        assert sorted(h.nucleus_of_cell(0, k=2)) == list(range(10))
        assert sorted(h.nucleus_of_cell(0, k=1)) == list(range(11))

    def test_k_above_lambda_raises(self):
        g = figure2_graph()
        h = nucleus_decomposition(g, 1, 2, algorithm="fnd").hierarchy
        with pytest.raises(ValueError):
            h.nucleus_of_cell(10, k=5)

    def test_skipped_level_resolves_to_denser_nucleus(self):
        g = generators.complete_graph(5)  # all lambda 4, no level-2 node
        h = nucleus_decomposition(g, 1, 2, algorithm="dft").hierarchy
        assert sorted(h.nucleus_of_cell(0, k=2)) == [0, 1, 2, 3, 4]


class TestOnRealDecompositions:
    def test_figure5_three_levels(self):
        g = figure5_graph()
        result = nucleus_decomposition(g, 1, 2, algorithm="fnd")
        tree = result.hierarchy.condense()
        ks = sorted({n.k for n in tree.nodes})
        assert ks == [0, 4, 5, 6]
        leaves = tree.leaves()
        assert len(leaves) == 3  # K7 and the two K6s

    def test_all_cells_covered_once(self):
        g = generators.powerlaw_cluster(120, 5, 0.5, seed=4)
        h = nucleus_decomposition(g, 2, 3, algorithm="fnd").hierarchy
        tree = h.condense()
        cells = sorted(c for n in tree.nodes for c in n.own_cells)
        assert cells == list(range(h.num_cells))
