"""FlatHierarchyIndex: parity with HierarchyIndex, batch queries, and the
persisted build-once/serve-many path."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.backends import as_backend, build_query_index, decompose
from repro.core.decomposition import nucleus_decomposition
from repro.errors import GraphFormatError, InvalidParameterError
from repro.examples_graphs import bowtie, figure2_graph
from repro.export import load_hierarchy_npz, save_hierarchy_npz
from repro.flatindex import FlatHierarchyIndex
from repro.graph import generators
from repro.queries import HierarchyIndex

RS_PAIRS = [(1, 2), (2, 3), (3, 4)]


@pytest.fixture(scope="module")
def parity_graph():
    return generators.powerlaw_cluster(120, 5, 0.5, seed=9)


def _decompose(graph, backend, r, s):
    converted = as_backend(graph, "csr" if backend != "object" else "object")
    workers = 2 if backend == "csr-parallel" else None
    return decompose(converted, r, s, algorithm="fnd", backend=backend,
                     workers=workers)


def _assert_parity(decomposition, graph):
    legacy = HierarchyIndex(decomposition)
    flat = FlatHierarchyIndex(decomposition)
    num_cells = flat.num_cells
    for cell in range(num_cells):
        assert flat.node_of_cell(cell) == legacy.node_of_cell(cell)
        assert flat.max_nucleus(cell) == sorted(legacy.max_nucleus(cell))
    for cell in range(0, num_cells, 5):
        for k in range(decomposition.lam[cell] + 1):
            assert flat.nucleus_at(cell, k) == \
                sorted(legacy.nucleus_at(cell, k))
    for k in (1, 2, 3):
        for vertex in range(graph.n):
            ours = flat.communities_of_vertex(vertex, k)
            theirs = [sorted(c)
                      for c in legacy.communities_of_vertex(vertex, k)]
            assert ours == theirs
    for vertex in range(graph.n):
        assert flat.profile(vertex) == legacy.profile(vertex)


class TestParity:
    @pytest.mark.parametrize("rs", RS_PAIRS, ids=["12", "23", "34"])
    @pytest.mark.parametrize("backend", ["object", "csr"])
    def test_matches_legacy_index(self, parity_graph, backend, rs):
        decomposition = _decompose(parity_graph, backend, *rs)
        _assert_parity(decomposition, parity_graph)

    @pytest.mark.parametrize("rs", RS_PAIRS, ids=["12", "23", "34"])
    def test_matches_legacy_index_parallel(self, parity_graph, rs):
        decomposition = _decompose(parity_graph, "csr-parallel", *rs)
        _assert_parity(decomposition, parity_graph)

    @pytest.mark.parametrize("algorithm", ["naive", "dft", "lcps"])
    def test_other_algorithms_index_too(self, parity_graph, algorithm):
        decomposition = nucleus_decomposition(parity_graph, 1, 2,
                                              algorithm=algorithm)
        _assert_parity(decomposition, parity_graph)


class TestBatchVariants:
    @pytest.fixture(scope="class")
    def flat(self, parity_graph):
        return FlatHierarchyIndex(
            decompose(parity_graph, 2, 3, algorithm="fnd", backend="csr"))

    def test_max_nucleus_batch(self, flat):
        cells = np.arange(flat.num_cells)
        batch = flat.max_nucleus_batch(cells)
        assert len(batch) == flat.num_cells
        for cell, answer in zip(cells.tolist(), batch):
            assert answer.tolist() == flat.max_nucleus(cell)

    def test_nucleus_at_batch(self, flat):
        cells = [c for c in range(flat.num_cells) if flat.lam[c] >= 1]
        for answer, cell in zip(flat.nucleus_at_batch(cells, 1), cells):
            assert answer.tolist() == flat.nucleus_at(cell, 1)

    def test_nucleus_at_batch_rejects_shallow_cells(self, flat):
        shallow = int(np.argmin(flat.lam))
        with pytest.raises(InvalidParameterError):
            flat.nucleus_at_batch([shallow], int(flat.lam[shallow]) + 1)

    def test_communities_batch(self, flat, parity_graph):
        vertices = list(range(parity_graph.n))
        batch = flat.communities_of_vertex_batch(vertices, 2)
        for vertex, communities in zip(vertices, batch):
            assert [c.tolist() for c in communities] == \
                flat.communities_of_vertex(vertex, 2)

    def test_profile_batch(self, flat, parity_graph):
        vertices = list(range(parity_graph.n))
        batch = flat.profile_batch(vertices)
        for vertex, levels in zip(vertices, batch):
            assert levels == flat.profile(vertex)

    def test_out_of_range_vertices_are_empty(self, flat):
        batch = flat.communities_of_vertex_batch([-3, 10 ** 6], 1)
        assert batch == [[], []]
        assert flat.profile_batch([10 ** 6]) == [[]]

    def test_rejects_non_flat_input(self, flat):
        with pytest.raises(InvalidParameterError):
            flat.communities_of_vertex_batch([[0, 1], [2, 3]], 1)


class TestStructure:
    def test_is_ancestor_matches_tree(self, parity_graph):
        decomposition = decompose(parity_graph, 2, 3, algorithm="fnd",
                                  backend="csr")
        flat = FlatHierarchyIndex(decomposition)
        tree = decomposition.hierarchy.condense()
        for node in tree.nodes:
            for other in tree.nodes:
                # interval test vs an explicit parent walk
                current, found = other.id, False
                while current is not None:
                    if current == node.id:
                        found = True
                        break
                    current = tree[current].parent
                assert flat.is_ancestor(node.id, other.id) == found

    def test_rejects_hypo(self, parity_graph):
        decomposition = nucleus_decomposition(parity_graph, 1, 2,
                                              algorithm="hypo")
        with pytest.raises(InvalidParameterError):
            FlatHierarchyIndex(decomposition)

    def test_nucleus_at_too_deep_raises(self):
        flat = FlatHierarchyIndex(
            nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd"))
        with pytest.raises(InvalidParameterError):
            flat.nucleus_at(10, 3)

    def test_figure2_answers(self):
        flat = FlatHierarchyIndex(
            nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd"))
        assert flat.max_nucleus(0) == [0, 1, 2, 3]
        assert flat.nucleus_at(0, 2) == list(range(10))
        assert flat.nucleus_at(0, 1) == list(range(11))

    def test_bowtie_center_two_communities(self):
        flat = FlatHierarchyIndex(
            nucleus_decomposition(bowtie(), 2, 3, algorithm="fnd"))
        communities = flat.communities_of_vertex(0, 1)
        assert len(communities) == 2
        assert all(len(c) == 3 for c in communities)


class TestPersistence:
    @pytest.fixture(scope="class")
    def built(self, parity_graph):
        return FlatHierarchyIndex(
            decompose(parity_graph, 2, 3, algorithm="fnd", backend="csr"))

    def test_round_trip(self, built, parity_graph, tmp_path):
        path = tmp_path / "index.npz"
        built.save(path)
        loaded = FlatHierarchyIndex.load(path)
        assert loaded.r == built.r and loaded.s == built.s
        assert loaded.algorithm == built.algorithm
        vertices = list(range(parity_graph.n))
        fresh = built.communities_of_vertex_batch(vertices, 2)
        again = loaded.communities_of_vertex_batch(vertices, 2)
        for row_a, row_b in zip(fresh, again):
            assert [c.tolist() for c in row_a] == [c.tolist() for c in row_b]
        # stats were persisted: profiles answer with no graph attached
        assert loaded.graph is None
        assert loaded.profile_batch(vertices) == \
            built.profile_batch(vertices)

    def test_stats_false_profile_needs_graph(self, built, parity_graph,
                                             tmp_path):
        path = tmp_path / "lean.npz"
        built.save(path, stats=False)
        loaded = FlatHierarchyIndex.load(path)
        assert loaded.communities_of_vertex(0, 1) == \
            built.communities_of_vertex(0, 1)
        with pytest.raises(InvalidParameterError):
            loaded.profile(0)
        attached = FlatHierarchyIndex.load(path, graph=parity_graph)
        assert attached.profile(0) == built.profile(0)

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(GraphFormatError):
            FlatHierarchyIndex.load(path)

    def test_wrong_payload_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(GraphFormatError):
            FlatHierarchyIndex.load(path)

    def test_fresh_process_round_trip(self, built, parity_graph, tmp_path):
        """save → load → query in a brand-new interpreter."""
        path = tmp_path / "served.npz"
        built.save(path)
        vertices = list(range(0, parity_graph.n, 3))
        script = (
            "import json, sys\n"
            "from repro.flatindex import FlatHierarchyIndex\n"
            "index = FlatHierarchyIndex.load(sys.argv[1])\n"
            "vertices = json.loads(sys.argv[2])\n"
            "answers = [[c.tolist() for c in row] for row in\n"
            "           index.communities_of_vertex_batch(vertices, 2)]\n"
            "profiles = [[(lvl.k, lvl.node_id, lvl.num_vertices,\n"
            "              lvl.num_edges, lvl.density) for lvl in row]\n"
            "            for row in index.profile_batch(vertices)]\n"
            "print(json.dumps({'answers': answers, 'profiles': profiles}))\n")
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        out = subprocess.run(
            [sys.executable, "-c", script, str(path), json.dumps(vertices)],
            capture_output=True, text=True, env=env)
        assert out.returncode == 0, out.stderr
        served = json.loads(out.stdout)
        expected = [[c.tolist() for c in row] for row in
                    built.communities_of_vertex_batch(vertices, 2)]
        assert served["answers"] == expected
        expected_profiles = [
            [(lvl.k, lvl.node_id, lvl.num_vertices, lvl.num_edges,
              lvl.density) for lvl in row]
            for row in built.profile_batch(vertices)]
        assert [[tuple(lvl) for lvl in row] for row in served["profiles"]] \
            == expected_profiles


class TestHierarchyNpz:
    def test_round_trip(self, parity_graph, tmp_path):
        hierarchy = decompose(parity_graph, 2, 3, algorithm="fnd",
                              backend="csr").hierarchy
        path = tmp_path / "h.npz"
        save_hierarchy_npz(hierarchy, path)
        restored = load_hierarchy_npz(path)
        restored.validate()
        assert restored.lam == hierarchy.lam
        assert restored.node_lambda == hierarchy.node_lambda
        assert restored.parent == hierarchy.parent
        assert restored.comp == hierarchy.comp
        assert restored.root == hierarchy.root
        assert restored.algorithm == hierarchy.algorithm

    def test_index_from_persisted_hierarchy(self, parity_graph, tmp_path):
        """hierarchy .npz + graph → index, no re-peeling, same answers."""
        decomposition = decompose(parity_graph, 2, 3, algorithm="fnd",
                                  backend="csr")
        path = tmp_path / "h.npz"
        save_hierarchy_npz(decomposition.hierarchy, path)
        rebuilt = FlatHierarchyIndex(hierarchy=load_hierarchy_npz(path),
                                     graph=decomposition.graph)
        direct = FlatHierarchyIndex(decomposition)
        for vertex in range(0, parity_graph.n, 7):
            assert rebuilt.communities_of_vertex(vertex, 2) == \
                direct.communities_of_vertex(vertex, 2)

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"nope")
        with pytest.raises(GraphFormatError):
            load_hierarchy_npz(path)


class TestWiring:
    def test_build_query_index(self, parity_graph):
        index = build_query_index(parity_graph, 2, 3, backend="csr")
        assert isinstance(index, FlatHierarchyIndex)
        assert (index.r, index.s) == (2, 3)
        assert index.num_cells == parity_graph.m

    def test_flat_index_requires_graph_with_bare_hierarchy(self,
                                                           parity_graph):
        hierarchy = decompose(parity_graph, 1, 2).hierarchy
        with pytest.raises(InvalidParameterError):
            FlatHierarchyIndex(hierarchy=hierarchy)

    def test_lazy_legacy_index_builds_nothing_up_front(self, parity_graph):
        decomposition = decompose(parity_graph, 2, 3, algorithm="fnd",
                                  backend="csr")
        index = HierarchyIndex(decomposition)
        assert index._tree is None
        assert index._vertex_map is None
        index.communities_of_vertex(0, 1)
        assert index._vertex_map is not None
