"""HierarchyIndex community-search queries."""

import pytest
from hypothesis import given, settings

from repro.core.decomposition import nucleus_decomposition
from repro.errors import InvalidParameterError
from repro.examples_graphs import bowtie, figure2_graph
from repro.graph import generators
from repro.ktruss.tcp import build_tcp_index
from repro.queries import HierarchyIndex

from _graphs import dense_small_graphs


class TestBasics:
    def test_rejects_hypo(self, k4):
        result = nucleus_decomposition(k4, 1, 2, algorithm="hypo")
        with pytest.raises(InvalidParameterError):
            HierarchyIndex(result)

    def test_max_nucleus_figure2(self):
        index = HierarchyIndex(
            nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd"))
        assert sorted(index.max_nucleus(0)) == [0, 1, 2, 3]
        assert sorted(index.max_nucleus(8)) == list(range(10))

    def test_nucleus_at_level(self):
        index = HierarchyIndex(
            nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd"))
        assert sorted(index.nucleus_at(0, 2)) == list(range(10))
        assert sorted(index.nucleus_at(0, 1)) == list(range(11))

    def test_nucleus_at_too_deep_raises(self):
        index = HierarchyIndex(
            nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd"))
        with pytest.raises(InvalidParameterError):
            index.nucleus_at(10, 3)


class TestVertexCommunities:
    def test_bowtie_center_in_two_triangle_communities(self):
        g = bowtie()
        index = HierarchyIndex(nucleus_decomposition(g, 2, 3, algorithm="fnd"))
        communities = index.communities_of_vertex(0, 1)
        assert len(communities) == 2
        assert all(len(c) == 3 for c in communities)

    def test_leaf_vertex_single_community(self):
        g = bowtie()
        index = HierarchyIndex(nucleus_decomposition(g, 2, 3, algorithm="fnd"))
        assert len(index.communities_of_vertex(3, 1)) == 1

    def test_level_zero_gives_everything_reachable(self):
        g = figure2_graph()
        index = HierarchyIndex(nucleus_decomposition(g, 1, 2, algorithm="fnd"))
        communities = index.communities_of_vertex(0, 1)
        assert len(communities) == 1
        assert sorted(communities[0]) == list(range(11))

    def test_unknown_vertex_empty(self):
        g = bowtie()
        index = HierarchyIndex(nucleus_decomposition(g, 2, 3, algorithm="fnd"))
        assert index.communities_of_vertex(99, 1) == []


class TestProfile:
    def test_profile_is_nested_and_density_increases_with_k(self):
        g = generators.planted_hierarchy(2, 2, 8, base_p=0.05,
                                         level_p_step=0.45, seed=3)
        index = HierarchyIndex(nucleus_decomposition(g, 1, 2, algorithm="fnd"))
        profile = index.profile(0)
        assert profile
        ks = [level.k for level in profile]
        assert ks == sorted(ks)
        sizes = [level.num_vertices for level in profile]
        assert sizes == sorted(sizes, reverse=True)

    def test_isolated_vertex_profile_empty(self):
        from repro.graph.adjacency import Graph
        g = Graph(3, [(0, 1)])
        index = HierarchyIndex(nucleus_decomposition(g, 1, 2, algorithm="fnd"))
        assert index.profile(2) == []

    def test_profile_str(self):
        index = HierarchyIndex(
            nucleus_decomposition(figure2_graph(), 1, 2, algorithm="fnd"))
        text = str(index.profile(0)[-1])
        assert "k=3" in text and "density" in text


@given(dense_small_graphs(max_n=8))
@settings(max_examples=20, deadline=None)
def test_queries_match_tcp_index(g):
    """Hierarchy-based vertex queries == TCP-index queries (k-truss)."""
    decomposition = nucleus_decomposition(g, 2, 3, algorithm="fnd")
    index = HierarchyIndex(decomposition)
    tcp = build_tcp_index(g)
    edge_index = g.edge_index
    for v in g.vertices():
        for truss_k in (3, 4):
            ours = {frozenset(edge_index.endpoints(e) for e in community)
                    for community in index.communities_of_vertex(v, truss_k - 2)}
            # hierarchy query returns nuclei CONTAINING v's cells at level
            # >= k; keep only those that actually touch v, as TCP does
            ours = {c for c in ours if any(v in e for e in c)}
            theirs = {frozenset(c) for c in tcp.communities_of(v, truss_k)}
            assert ours == theirs
