"""Weighted and directed core variants."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidGraphError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.kcore import core_numbers
from repro.kcore.variants import (
    directed_core_numbers,
    weighted_core_numbers,
    weighted_k_core,
)

from _graphs import small_graphs


class TestWeightedCores:
    def test_unit_weights_match_unweighted(self, social):
        weights = [1.0] * social.m
        weighted = weighted_core_numbers(social, weights)
        assert weighted == [float(x) for x in core_numbers(social)]

    def test_scaling_weights_scales_lambda(self, k4):
        ones = weighted_core_numbers(k4, [1.0] * 6)
        doubled = weighted_core_numbers(k4, [2.0] * 6)
        assert doubled == [2 * x for x in ones]

    def test_weight_dict_either_orientation(self):
        g = Graph(3, [(0, 1), (1, 2)])
        by_pair = {(1, 0): 3.0, (1, 2): 1.0}
        lam = weighted_core_numbers(g, by_pair)
        assert lam[0] == 3.0

    def test_missing_weight_raises(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(InvalidParameterError):
            weighted_core_numbers(g, {(0, 1): 1.0})

    def test_wrong_length_raises(self, k4):
        with pytest.raises(InvalidParameterError):
            weighted_core_numbers(k4, [1.0])

    def test_negative_weight_raises(self, k4):
        with pytest.raises(InvalidParameterError):
            weighted_core_numbers(k4, [-1.0] * 6)

    def test_heavy_block_separates(self):
        # two triangles, one with heavy edges: only it survives threshold 4
        g = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        weights = {(0, 1): 5.0, (0, 2): 5.0, (1, 2): 5.0,
                   (3, 4): 1.0, (3, 5): 1.0, (4, 5): 1.0}
        cores = weighted_k_core(g, 4.0, weights)
        assert cores == [[0, 1, 2]]

    def test_connected_weighted_cores_split(self):
        # figure-2 style: two heavy triangles joined by a light path
        g = Graph(7, [(0, 1), (0, 2), (1, 2), (4, 5), (4, 6), (5, 6),
                      (2, 3), (3, 4)])
        weights = {e: (5.0 if e in {(0, 1), (0, 2), (1, 2),
                                    (4, 5), (4, 6), (5, 6)} else 0.5)
                   for e in g.edges()}
        cores = weighted_k_core(g, 6.0, weights)
        assert cores == [[0, 1, 2], [4, 5, 6]]


class TestDirectedCores:
    def test_directed_cycle(self):
        arcs = [(0, 1), (1, 2), (2, 0)]
        in_core, out_core = directed_core_numbers(3, arcs)
        assert in_core == [1, 1, 1]
        assert out_core == [1, 1, 1]

    def test_acyclic_graph_all_zero(self):
        # a DAG has no subgraph with min in-degree >= 1: peeling cascades
        arcs = [(0, i) for i in range(1, 5)]
        in_core, out_core = directed_core_numbers(5, arcs)
        assert in_core == [0] * 5
        assert out_core == [0] * 5

    def test_self_loops_ignored(self):
        in_core, out_core = directed_core_numbers(2, [(0, 0), (0, 1)])
        assert in_core == [0, 0]  # the lone arc unravels once 0 is peeled

    def test_cycle_with_tail(self):
        arcs = [(0, 1), (1, 2), (2, 0), (2, 3)]
        in_core, out_core = directed_core_numbers(4, arcs)
        # the tail vertex is fed by the cycle, so it has in-core 1 —
        # but it feeds nothing, so its out-core is 0
        assert in_core == [1, 1, 1, 1]
        assert out_core == [1, 1, 1, 0]

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidGraphError):
            directed_core_numbers(2, [(0, 5)])

    def test_complete_bidirected_matches_undirected(self, k4):
        arcs = [(u, v) for u, v in k4.edges()] + \
               [(v, u) for u, v in k4.edges()]
        in_core, out_core = directed_core_numbers(4, arcs)
        assert in_core == [3, 3, 3, 3]
        assert out_core == [3, 3, 3, 3]


@given(small_graphs(max_n=10))
@settings(max_examples=40, deadline=None)
def test_unit_weighted_equals_unweighted_random(g):
    weighted = weighted_core_numbers(g, [1.0] * g.m)
    assert weighted == [float(x) for x in core_numbers(g)]


@given(small_graphs(max_n=10))
@settings(max_examples=30, deadline=None)
def test_bidirected_equals_undirected_random(g):
    arcs = [(u, v) for u, v in g.edges()] + [(v, u) for u, v in g.edges()]
    in_core, out_core = directed_core_numbers(g.n, arcs)
    expected = core_numbers(g)
    assert in_core == expected
    assert out_core == expected
