"""Weighted and directed core variants."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidGraphError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.directed import DirectedGraph
from repro.kcore import core_numbers
from repro.kcore.variants import (
    directed_core_numbers,
    weighted_core_numbers,
    weighted_k_core,
)

from _graphs import small_graphs


class TestWeightedCores:
    def test_unit_weights_match_unweighted(self, social):
        weights = [1.0] * social.m
        weighted = weighted_core_numbers(social, weights)
        assert weighted == [float(x) for x in core_numbers(social)]

    def test_scaling_weights_scales_lambda(self, k4):
        ones = weighted_core_numbers(k4, [1.0] * 6)
        doubled = weighted_core_numbers(k4, [2.0] * 6)
        assert doubled == [2 * x for x in ones]

    def test_weight_dict_either_orientation(self):
        g = Graph(3, [(0, 1), (1, 2)])
        by_pair = {(1, 0): 3.0, (1, 2): 1.0}
        lam = weighted_core_numbers(g, by_pair)
        assert lam[0] == 3.0

    def test_missing_weight_raises(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(InvalidParameterError):
            weighted_core_numbers(g, {(0, 1): 1.0})

    def test_wrong_length_raises(self, k4):
        with pytest.raises(InvalidParameterError):
            weighted_core_numbers(k4, [1.0])

    def test_negative_weight_raises(self, k4):
        with pytest.raises(InvalidParameterError):
            weighted_core_numbers(k4, [-1.0] * 6)

    def test_backends_agree(self, social):
        weights = [0.5 + (i % 7) * 0.25 for i in range(social.m)]
        reference = weighted_core_numbers(social, weights, backend="object")
        for backend in ("csr", "csr-parallel", "disk"):
            assert weighted_core_numbers(social, weights,
                                         backend=backend) == reference

    def test_heavy_block_separates(self):
        # two triangles, one with heavy edges: only it survives threshold 4
        g = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        weights = {(0, 1): 5.0, (0, 2): 5.0, (1, 2): 5.0,
                   (3, 4): 1.0, (3, 5): 1.0, (4, 5): 1.0}
        cores = weighted_k_core(g, 4.0, weights)
        assert cores == [[0, 1, 2]]

    def test_connected_weighted_cores_split(self):
        # figure-2 style: two heavy triangles joined by a light path
        g = Graph(7, [(0, 1), (0, 2), (1, 2), (4, 5), (4, 6), (5, 6),
                      (2, 3), (3, 4)])
        weights = {e: (5.0 if e in {(0, 1), (0, 2), (1, 2),
                                    (4, 5), (4, 6), (5, 6)} else 0.5)
                   for e in g.edges()}
        cores = weighted_k_core(g, 6.0, weights)
        assert cores == [[0, 1, 2], [4, 5, 6]]


class TestDirectedGraph:
    def test_shape(self):
        g = DirectedGraph(3, [(0, 1), (1, 2), (2, 0)])
        assert g.n == 3 and g.m == 3
        assert g.out_degrees() == [1, 1, 1]
        assert g.in_degrees() == [1, 1, 1]

    def test_duplicate_arcs_merged(self):
        g = DirectedGraph(2, [(0, 1), (0, 1)])
        assert g.m == 1

    def test_self_loops_dropped(self):
        g = DirectedGraph(2, [(0, 0), (0, 1)])
        assert g.m == 1

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidGraphError):
            DirectedGraph(2, [(0, 5)])

    def test_csr_matches_arcs(self):
        arcs = [(0, 2), (0, 1), (2, 1)]
        g = DirectedGraph(3, arcs)
        sptr, sidx = g.succ_arrays()
        assert [sidx[p] for p in range(sptr[0], sptr[1])] == [1, 2]
        pptr, pidx = g.pred_arrays()
        assert [pidx[p] for p in range(pptr[1], pptr[2])] == [0, 2]


class TestDirectedCores:
    def test_directed_cycle(self):
        g = DirectedGraph(3, [(0, 1), (1, 2), (2, 0)])
        in_core, out_core = directed_core_numbers(g)
        assert in_core == [1, 1, 1]
        assert out_core == [1, 1, 1]

    def test_acyclic_graph_all_zero(self):
        # a DAG has no subgraph with min in-degree >= 1: peeling cascades
        g = DirectedGraph(5, [(0, i) for i in range(1, 5)])
        in_core, out_core = directed_core_numbers(g)
        assert in_core == [0] * 5
        assert out_core == [0] * 5

    def test_self_loops_ignored(self):
        in_core, out_core = directed_core_numbers(
            DirectedGraph(2, [(0, 0), (0, 1)]))
        assert in_core == [0, 0]  # the lone arc unravels once 0 is peeled

    def test_cycle_with_tail(self):
        g = DirectedGraph(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        in_core, out_core = directed_core_numbers(g)
        # the tail vertex is fed by the cycle, so it has in-core 1 —
        # but it feeds nothing, so its out-core is 0
        assert in_core == [1, 1, 1, 1]
        assert out_core == [1, 1, 1, 0]

    def test_complete_bidirected_matches_undirected(self, k4):
        arcs = [(u, v) for u, v in k4.edges()] + \
               [(v, u) for u, v in k4.edges()]
        in_core, out_core = directed_core_numbers(DirectedGraph(4, arcs))
        assert in_core == [3, 3, 3, 3]
        assert out_core == [3, 3, 3, 3]

    def test_backends_agree(self):
        g = DirectedGraph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4),
                              (4, 2), (1, 4)])
        assert directed_core_numbers(g, backend="object") == \
            directed_core_numbers(g, backend="csr")

    def test_requires_directed_graph(self, k4):
        with pytest.raises(InvalidParameterError):
            directed_core_numbers(k4)

    def test_disk_backend_rejected(self):
        g = DirectedGraph(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(InvalidParameterError):
            directed_core_numbers(g, backend="disk")


class TestDeprecatedDirectedForm:
    def test_shim_warns_and_agrees(self):
        arcs = [(0, 1), (1, 2), (2, 0)]
        with pytest.warns(DeprecationWarning, match="DirectedGraph"):
            legacy = directed_core_numbers(3, arcs)
        assert legacy == directed_core_numbers(DirectedGraph(3, arcs))

    def test_arcs_with_graph_rejected(self):
        g = DirectedGraph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError):
            directed_core_numbers(g, [(0, 1)])


@given(small_graphs(max_n=10))
@settings(max_examples=40, deadline=None)
def test_unit_weighted_equals_unweighted_random(g):
    weighted = weighted_core_numbers(g, [1.0] * g.m)
    assert weighted == [float(x) for x in core_numbers(g)]


@given(small_graphs(max_n=10))
@settings(max_examples=30, deadline=None)
def test_bidirected_equals_undirected_random(g):
    arcs = [(u, v) for u, v in g.edges()] + [(v, u) for u, v in g.edges()]
    in_core, out_core = directed_core_numbers(DirectedGraph(g.n, arcs))
    expected = core_numbers(g)
    assert in_core == expected
    assert out_core == expected


@given(small_graphs(max_n=10))
@settings(max_examples=30, deadline=None)
def test_weighted_kernel_matches_object_random(g):
    """λ parity between the object reference and the generic heap kernel."""
    weights = [0.25 * (1 + (u + 2 * v) % 5) for u, v in g.edges()]
    assert weighted_core_numbers(g, weights, backend="csr") == \
        weighted_core_numbers(g, weights, backend="object")


@given(small_graphs(max_n=9))
@settings(max_examples=30, deadline=None)
def test_directed_kernel_matches_object_random(g):
    arcs = [(u, v) if (u + v) % 2 else (v, u) for u, v in g.edges()]
    dg = DirectedGraph(g.n, arcs)
    assert directed_core_numbers(dg, backend="csr") == \
        directed_core_numbers(dg, backend="object")
