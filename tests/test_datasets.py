"""The dataset registry: determinism, sizes, and structural signatures."""

import pytest

from repro.errors import UnknownDatasetError
from repro.graph.datasets import (
    DATASETS,
    PAPER_STATS,
    dataset_names,
    load_dataset,
    table1_datasets,
)


class TestRegistry:
    def test_nine_datasets_in_paper_order(self):
        names = dataset_names()
        assert len(names) == 9
        assert names[0] == "skitter"
        assert names[-1] == "wiki_0611"

    def test_all_have_paper_stats(self):
        assert set(dataset_names()) == set(PAPER_STATS)

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownDatasetError):
            load_dataset("facebook_of_mars")

    def test_unknown_size_raises(self):
        with pytest.raises(UnknownDatasetError):
            load_dataset("skitter", size="enormous")

    def test_table1_subset(self):
        assert set(table1_datasets()) <= set(dataset_names())

    def test_spec_repr_stable(self):
        spec = DATASETS["mit"]
        assert spec.paper_name.startswith("MIT")


class TestDeterminismAndScale:
    @pytest.mark.parametrize("name", dataset_names())
    def test_tiny_deterministic(self, name):
        a = load_dataset(name, "tiny")
        b = load_dataset(name, "tiny")
        assert a == b

    @pytest.mark.parametrize("name", dataset_names())
    def test_sizes_increase(self, name):
        tiny = load_dataset(name, "tiny")
        small = load_dataset(name, "small")
        assert small.n > tiny.n
        assert small.m > tiny.m

    @pytest.mark.parametrize("name", dataset_names())
    def test_graph_named_after_dataset(self, name):
        assert load_dataset(name, "tiny").name == f"{name}-tiny"


class TestStructuralSignatures:
    """Each stand-in must reproduce its original's qualitative trait."""

    def test_facebook_standins_are_dense(self):
        for name in ("berkeley13", "mit", "stanford3", "texas84"):
            g = load_dataset(name, "tiny")
            assert g.m / g.n > 5.0, name  # paper: E/V between 37 and 49

    def test_web_and_wiki_standins_are_sparse(self):
        for name in ("google", "wiki_0611"):
            g = load_dataset(name, "tiny")
            assert g.m / g.n < 6.0, name

    def test_uk2005_signature_extreme_k4_ratio(self):
        from repro.graph.cliques import four_clique_count, triangle_count
        g = load_dataset("uk2005", "tiny")
        ours = four_clique_count(g) / max(1, triangle_count(g))
        others = []
        for name in ("google", "skitter"):
            other = load_dataset(name, "tiny")
            others.append(four_clique_count(other) / max(1, triangle_count(other)))
        assert all(ours > o for o in others)

    def test_facebook_triangle_density_above_web(self):
        from repro.graph.cliques import triangle_count
        fb = load_dataset("mit", "tiny")
        web = load_dataset("google", "tiny")
        assert triangle_count(fb) / fb.m > triangle_count(web) / web.m
