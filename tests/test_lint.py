"""The repro-lint static-analysis pass: every rule fires on its target
pattern, stays quiet on the sanctioned alternative, and the tree under
``src/`` is clean under the full rule set."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rule, lint_paths, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.registry import Violation, select_rules

REPO = Path(__file__).resolve().parents[1]

# paths chosen so _relpath scoping matches the real tree
PARALLEL = "src/repro/parallel/fixture.py"
SERVE = "src/repro/serve/fixture.py"
ANALYSIS = "src/repro/analysis/fixture.py"
VARIANT = "src/repro/kcore/temporal.py"


def codes(source: str, path: str) -> list[str]:
    return [v.code for v in lint_source(source, path=path)]


# ---------------------------------------------------------------------------
# RL001 no-silent-mmap-copy
# ---------------------------------------------------------------------------
class TestMmapCopy:
    def test_fires_on_npz_mmap_load(self):
        src = 'import numpy as np\npayload = np.load(path, mmap_mode="r")\n'
        assert codes(src, ANALYSIS) == ["RL001"]

    def test_quiet_on_eager_load(self):
        src = "import numpy as np\npayload = np.load(path)\n"
        assert codes(src, ANALYSIS) == []

    def test_quiet_on_literal_npy(self):
        src = ('import numpy as np\n'
               'arr = np.load("cells.npy", mmap_mode="r")\n')
        assert codes(src, ANALYSIS) == []

    def test_fires_on_serve_path_astype(self):
        src = ("def answer(index, cells):\n"
               "    return index.lam.astype('int64')[cells]\n")
        assert codes(src, SERVE) == ["RL001"]

    def test_fires_inside_loader_function_elsewhere(self):
        src = ("import numpy as np\n"
               "def load_query_index(path):\n"
               "    arrays = read(path)\n"
               "    return arrays['lam'].astype(np.int64)\n")
        assert codes(src, ANALYSIS) == ["RL001"]

    def test_quiet_on_build_side_astype(self):
        src = ("import numpy as np\n"
               "def build(tree):\n"
               "    return np.asarray(tree.ids).astype(np.int32)\n")
        assert codes(src, ANALYSIS) == []


# ---------------------------------------------------------------------------
# RL002 shm-lifecycle
# ---------------------------------------------------------------------------
class TestShmLifecycle:
    def test_fires_on_leaked_acquisition(self):
        src = ("from multiprocessing import shared_memory\n"
               "def worker(n):\n"
               "    seg = shared_memory.SharedMemory(create=True, size=n)\n"
               "    total = seg.size + n\n"
               "    return total\n")
        assert codes(src, PARALLEL) == ["RL002"]

    def test_fires_on_discarded_acquisition(self):
        src = ("def setup(arrays):\n"
               "    SharedArrayBundle.create(arrays)\n")
        assert codes(src, PARALLEL) == ["RL002"]

    def test_quiet_on_with_block(self):
        src = ("def worker(arrays):\n"
               "    bundle = SharedArrayBundle.create(arrays)\n"
               "    with bundle:\n"
               "        return bundle['lam'].sum()\n")
        assert codes(src, PARALLEL) == []

    def test_quiet_on_try_finally(self):
        src = ("def worker(forest):\n"
               "    shared = share_forest(forest)\n"
               "    try:\n"
               "        return shared.find(0)\n"
               "    finally:\n"
               "        shared.bundle.unlink()\n")
        assert codes(src, PARALLEL) == []

    def test_quiet_on_ownership_escape(self):
        src = ("def export(arrays):\n"
               "    bundle = SharedArrayBundle.create(arrays)\n"
               "    return bundle\n")
        assert codes(src, PARALLEL) == []

    def test_out_of_scope_layer_is_ignored(self):
        src = ("def setup(arrays):\n"
               "    SharedArrayBundle.create(arrays)\n")
        assert codes(src, ANALYSIS) == []


# ---------------------------------------------------------------------------
# RL003 no-blocking-in-async
# ---------------------------------------------------------------------------
class TestAsyncBlocking:
    def test_fires_on_time_sleep(self):
        src = ("import time\n"
               "async def flush(self):\n"
               "    time.sleep(0.1)\n")
        assert codes(src, SERVE) == ["RL003"]

    def test_fires_on_builtin_open(self):
        src = ("async def dump(self, path):\n"
               "    with open(path) as handle:\n"
               "        return handle.read()\n")
        assert codes(src, SERVE) == ["RL003"]

    def test_quiet_on_asyncio_sleep(self):
        src = ("import asyncio\n"
               "async def flush(self):\n"
               "    await asyncio.sleep(0.1)\n")
        assert codes(src, SERVE) == []

    def test_quiet_in_sync_function(self):
        src = "import time\ndef flush(self):\n    time.sleep(0.1)\n"
        assert codes(src, SERVE) == []

    def test_nested_sync_helper_is_skipped(self):
        src = ("async def handler(loop):\n"
               "    def read_blocking(path):\n"
               "        return open(path).read()\n"
               "    return await loop.run_in_executor(None, read_blocking, 'x')\n")
        assert codes(src, SERVE) == []


# ---------------------------------------------------------------------------
# RL004 int32-overflow
# ---------------------------------------------------------------------------
class TestInt32Overflow:
    def test_fires_on_tainted_multiplication(self):
        src = ("import numpy as np\n"
               "def pack(nodes, n):\n"
               "    ids = nodes.astype(np.int32)\n"
               "    return ids * n + 1\n")
        assert codes(src, ANALYSIS) == ["RL004"]

    def test_fires_on_dtype_kwarg_producer(self):
        src = ("import numpy as np\n"
               "def pack(raw, n):\n"
               "    owners = np.frombuffer(raw, dtype=np.int32)\n"
               "    return owners * n\n")
        assert codes(src, ANALYSIS) == ["RL004"]

    def test_quiet_after_promotion(self):
        src = ("import numpy as np\n"
               "def pack(nodes, n):\n"
               "    ids = nodes.astype(np.int32)\n"
               "    return ids.astype(np.int64) * n + 1\n")
        assert codes(src, ANALYSIS) == []

    def test_rebinding_clears_taint(self):
        src = ("import numpy as np\n"
               "def pack(nodes, n):\n"
               "    ids = nodes.astype(np.int32)\n"
               "    ids = ids.astype(np.int64)\n"
               "    return ids * n\n")
        assert codes(src, ANALYSIS) == []

    def test_quiet_on_int64_arrays(self):
        src = ("import numpy as np\n"
               "def pack(nodes, n):\n"
               "    ids = np.asarray(nodes, dtype=np.int64)\n"
               "    return ids * n\n")
        assert codes(src, ANALYSIS) == []


# ---------------------------------------------------------------------------
# RL005 backend-parity
# ---------------------------------------------------------------------------
class TestBackendParity:
    def test_fires_on_direct_engine_call(self):
        src = ("from repro.core.decomposition import nucleus_decomposition\n"
               "def compare(g):\n"
               "    return nucleus_decomposition(g, 1, 2)\n")
        assert codes(src, ANALYSIS) == ["RL005"]

    def test_fires_on_backend_without_workers(self):
        src = ("def summarise(graph, backend=None):\n"
               "    return graph.n\n")
        assert codes(src, ANALYSIS) == ["RL005"]

    def test_quiet_on_paired_signature(self):
        src = ("from repro.backends import decompose\n"
               "def summarise(graph, backend=None, workers=None):\n"
               "    return decompose(graph, 1, 2, backend=backend,\n"
               "                     workers=workers)\n")
        assert codes(src, ANALYSIS) == []

    def test_engine_layers_exempt(self):
        src = ("def parallel_core_peel(csr, workers):\n"
               "    return csr\n")
        assert codes(src, PARALLEL) == []

    def test_fires_on_generic_kernel_call_outside_engines(self):
        src = ("from repro.core.generic_peel import generic_peel\n"
               "def custom(g, degrees):\n"
               "    return generic_peel(degrees)\n")
        assert codes(src, ANALYSIS) == ["RL005"]

    def test_variant_layer_may_call_engines(self):
        src = ("from repro.core.generic_peel import generic_peel\n"
               "def _kernel_engine(csr, rule):\n"
               "    return generic_peel([], unit_rule=rule)\n")
        assert codes(src, VARIANT) == []

    def test_fires_on_variant_entry_point_missing_dispatch(self):
        src = ("def fancy_core_numbers(graph, h=1):\n"
               "    return graph.n\n")
        assert codes(src, VARIANT) == ["RL005"]

    def test_quiet_on_dispatching_variant_entry_point(self):
        src = ("def fancy_core_numbers(graph, h=1, backend=None,\n"
               "                       workers=None):\n"
               "    return graph.n\n")
        assert codes(src, VARIANT) == []

    def test_variant_helpers_and_non_graph_functions_exempt(self):
        src = ("def _object_engine(graph, wlist):\n"
               "    return wlist\n"
               "def interaction_counts(events):\n"
               "    return {}\n")
        assert codes(src, VARIANT) == []


# ---------------------------------------------------------------------------
# RL006 no-swallowed-worker-errors
# ---------------------------------------------------------------------------
class TestSwallowedErrors:
    def test_fires_on_silent_broad_except(self):
        src = ("def drain(queue):\n"
               "    try:\n"
               "        return queue.get()\n"
               "    except Exception:\n"
               "        return None\n")
        assert codes(src, PARALLEL) == ["RL006"]

    def test_fires_on_bare_except(self):
        src = ("def drain(queue):\n"
               "    try:\n"
               "        return queue.get()\n"
               "    except:\n"
               "        pass\n")
        assert "RL006" in codes(src, PARALLEL)

    def test_quiet_on_reraise(self):
        src = ("def drain(queue):\n"
               "    try:\n"
               "        return queue.get()\n"
               "    except Exception:\n"
               "        queue.close()\n"
               "        raise\n")
        assert codes(src, PARALLEL) == []

    def test_quiet_when_recorded(self):
        src = ("def flush(futures, kernel):\n"
               "    try:\n"
               "        return kernel()\n"
               "    except Exception as exc:\n"
               "        for future in futures:\n"
               "            future.set_exception(exc)\n")
        assert codes(src, PARALLEL) == []

    def test_quiet_on_narrow_except(self):
        src = ("def drain(queue):\n"
               "    try:\n"
               "        return queue.get()\n"
               "    except FileNotFoundError:\n"
               "        return None\n")
        assert codes(src, PARALLEL) == []


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------
class TestPragmas:
    SRC = ("def drain(queue):\n"
           "    try:\n"
           "        return queue.get()\n"
           "    except Exception:{comment}\n"
           "        return None\n")

    def test_inline_disable_by_name(self):
        src = self.SRC.format(
            comment="  # repro-lint: disable=no-swallowed-worker-errors")
        assert codes(src, PARALLEL) == []

    def test_inline_disable_by_code(self):
        src = self.SRC.format(comment="  # repro-lint: disable=RL006")
        assert codes(src, PARALLEL) == []

    def test_other_rule_does_not_suppress(self):
        src = self.SRC.format(comment="  # repro-lint: disable=RL004")
        assert codes(src, PARALLEL) == ["RL006"]

    def test_disable_file(self):
        src = ("# repro-lint: disable-file=no-swallowed-worker-errors\n"
               + self.SRC.format(comment=""))
        assert codes(src, PARALLEL) == []

    def test_pragma_on_any_line_of_a_multiline_call(self):
        src = ("import numpy as np\n"
               "payload = np.load(\n"
               "    path,\n"
               "    mmap_mode='r')  # repro-lint: disable=RL001\n")
        assert codes(src, ANALYSIS) == []

    def test_pragma_inside_decorated_function(self):
        src = ("import functools\n"
               "@functools.lru_cache\n"
               "def drain(queue):\n"
               "    try:\n"
               "        return queue.get()\n"
               "    except Exception:  # repro-lint: disable=RL006\n"
               "        return None\n")
        assert codes(src, PARALLEL) == []
        # same decorated shape without the pragma still fires
        assert codes(src.replace("  # repro-lint: disable=RL006", ""),
                     PARALLEL) == ["RL006"]

    def test_pragma_inside_nested_function(self):
        src = ("def outer(queue):\n"
               "    def inner():\n"
               "        try:\n"
               "            return queue.get()\n"
               "        except Exception:  # repro-lint: disable=RL006\n"
               "            return None\n"
               "    return inner\n")
        assert codes(src, PARALLEL) == []
        assert codes(src.replace("  # repro-lint: disable=RL006", ""),
                     PARALLEL) == ["RL006"]

    def test_pragma_inside_async_function(self):
        src = ("import time\n"
               "async def flush(self):\n"
               "    time.sleep(0.1)  # repro-lint: disable=RL003\n")
        assert codes(src, SERVE) == []
        assert codes(src.replace("  # repro-lint: disable=RL003", ""),
                     SERVE) == ["RL003"]

    def test_pragma_suppresses_project_rule_finding(self):
        src = ("import numpy as np\n"
               "def _pack_base(deg):\n"
               "    return deg.astype(np.int32)\n"
               "def pack_keys(a, b, n):\n"
               "    base = _pack_base(a)\n"
               "    return base * n + b  # repro-lint: disable=RL007\n")
        assert codes(src, PARALLEL) == []


# ---------------------------------------------------------------------------
# registry and engine plumbing
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_nine_rules_registered(self):
        rules = all_rules()
        assert [r.code for r in rules] == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009"]
        assert all(r.description for r in rules)

    def test_get_rule_by_code_and_name(self):
        assert get_rule("RL002") is get_rule("shm-lifecycle")
        with pytest.raises(KeyError):
            get_rule("RL999")

    def test_select_and_ignore(self):
        only = select_rules(["RL001", "int32-overflow"], None)
        assert [r.code for r in only] == ["RL001", "RL004"]
        rest = select_rules(None, ["RL001"])
        assert "RL001" not in [r.code for r in rest]

    def test_violation_format(self):
        violation = Violation(path="a.py", line=3, col=4, code="RL001",
                              name="no-silent-mmap-copy", message="boom")
        assert violation.format() == \
            "a.py:3:4: RL001 [no-silent-mmap-copy] boom"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target)]) == 0
        assert "0 violations" in capsys.readouterr().err

    def test_violations_exit_one(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "parallel" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
        assert lint_main([str(target)]) == 1
        assert "RL006" in capsys.readouterr().out

    def test_select_skips_other_rules(self, tmp_path):
        target = tmp_path / "src" / "repro" / "parallel" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
        assert lint_main(["--select", "RL001", str(target)]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert lint_main(["--select", "RL999", str(tmp_path)]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def (:\n")
        assert lint_main([str(target)]) == 2
        assert "broken.py" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL001" in out and "no-swallowed-worker-errors" in out

    def test_module_entry_point(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target)],
            capture_output=True, text=True, cwd=REPO)
        assert proc.returncode == 0, proc.stderr

    BAD = "try:\n    pass\nexcept Exception:\n    pass\n"

    def _bad_file(self, tmp_path):
        target = tmp_path / "src" / "repro" / "parallel" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(self.BAD)
        return target

    def test_format_json(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        assert lint_main(["--format", "json", str(target)]) == 1
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["code"] == "RL006"

    def test_format_sarif(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        assert lint_main(["--format", "sarif", str(target)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "RL006"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        baseline = tmp_path / "accepted.json"
        assert lint_main(["--write-baseline", str(baseline),
                          str(target)]) == 0
        capsys.readouterr()
        assert lint_main(["--baseline", str(baseline), str(target)]) == 0
        assert "1 baselined" in capsys.readouterr().err
        # without the baseline the finding is back
        assert lint_main(["--no-baseline", str(target)]) == 1

    def test_baseline_autodetected_in_cwd(self, tmp_path, capsys,
                                          monkeypatch):
        target = self._bad_file(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(target)]) == 1
        capsys.readouterr()
        assert lint_main([str(target), "--write-baseline"]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").is_file()
        capsys.readouterr()
        assert lint_main([str(target)]) == 0

    def test_bad_baseline_exits_two(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        baseline = tmp_path / "broken.json"
        baseline.write_text("[not json")
        assert lint_main(["--baseline", str(baseline), str(target)]) == 2
        assert "bad baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# self-application: the shipped tree must stay clean
# ---------------------------------------------------------------------------
def test_src_tree_is_clean():
    violations, errors = lint_paths([REPO / "src"])
    assert errors == []
    assert violations == [], "\n".join(v.format() for v in violations)


def test_mypy_typed_tier_is_clean():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
