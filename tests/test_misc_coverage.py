"""Coverage for remaining paths: LCPS skeleton export, (3,4) queries,
disk directory placement, dataset export via CLI, generic API dispatch."""

import pytest

from repro.core.decomposition import nucleus_decomposition
from repro.export import skeleton_to_dot, tree_to_dot
from repro.external import DiskAdjacency
from repro.graph import generators
from repro.queries import HierarchyIndex


class TestLcpsSkeletonExport:
    def test_chain_nodes_render(self):
        # K5: LCPS opens bracket chains at levels 1..4 and splices the empty
        # ones back out; the exported skeleton must stay consistent
        g = generators.complete_graph(5)
        h = nucleus_decomposition(g, 1, 2, algorithm="lcps").hierarchy
        dot = skeleton_to_dot(h)
        assert dot.count("->") == h.num_nodes - 1
        tree_dot = tree_to_dot(h.condense())
        assert "digraph" in tree_dot

    def test_condense_contracts_chains_to_canonical(self):
        g = generators.complete_graph(5)
        h = nucleus_decomposition(g, 1, 2, algorithm="lcps").hierarchy
        assert h.canonical_nuclei() == {(4, frozenset(range(5)))}


class TestQueriesOn34:
    def test_max_nucleus_of_triangle(self):
        g = generators.planted_cliques(2, 6, bridge_edges=0, seed=1)
        result = nucleus_decomposition(g, 3, 4, algorithm="fnd")
        index = HierarchyIndex(result)
        cells = index.max_nucleus(0)
        vertices = result.view.vertices_of_cells(cells)
        assert len(vertices) == 6  # one planted clique

    def test_vertex_communities_34(self):
        g = generators.planted_cliques(2, 6, bridge_edges=0, seed=1)
        result = nucleus_decomposition(g, 3, 4, algorithm="fnd")
        index = HierarchyIndex(result)
        communities = index.communities_of_vertex(0, 1)
        assert len(communities) == 1


class TestDiskDirectory:
    def test_custom_directory(self, tmp_path, k4):
        with DiskAdjacency(k4, directory=tmp_path) as disk:
            assert disk.neighbors(0) == [1, 2, 3]
            files = list(tmp_path.glob("repro-adj-*"))
            assert len(files) == 1


class TestGenericApiDispatch:
    @pytest.mark.parametrize("rs", [(1, 3), (2, 4), (1, 4)])
    def test_top_level_api_runs_generic(self, rs):
        r, s = rs
        g = generators.complete_graph(6)
        result = nucleus_decomposition(g, r, s, algorithm="fnd")
        result.hierarchy.validate()
        assert result.max_lambda > 0

    def test_k6_13_lambda_values(self):
        # (1,3) on K6: every vertex is in C(5,2) = 10 triangles, and the
        # nucleus peels like a 3-uniform hypergraph core
        g = generators.complete_graph(6)
        result = nucleus_decomposition(g, 1, 3, algorithm="fnd")
        assert result.lam == [10] * 6


class TestDecompositionRepr:
    def test_hierarchy_repr_and_tree_format(self):
        g = generators.ring_of_cliques(3, 4)
        result = nucleus_decomposition(g, 1, 2, algorithm="fnd")
        assert "fnd" in repr(result.hierarchy)
        text = result.hierarchy.condense().format(
            label=lambda n: f"#{n.id}")
        assert "#" in text
