"""Component-wise decomposition must equal the whole-graph run."""

import pytest
from hypothesis import given, settings

from repro.core.decomposition import nucleus_decomposition
from repro.core.partition import decompose_by_components, merge_hierarchies
from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.graph.adjacency import Graph

from _graphs import small_graphs


def two_islands() -> Graph:
    """Two K4-plus-pendant islands and one isolated vertex."""
    edges = []
    for base in (0, 5):
        edges.extend((base + i, base + j) for i in range(4)
                     for j in range(i + 1, 4))
        edges.append((base + 0, base + 4))
    return Graph(11, edges)


class TestMergedEqualsWhole:
    @pytest.mark.parametrize("rs", [(1, 2), (2, 3), (3, 4)])
    def test_islands(self, rs):
        g = two_islands()
        r, s = rs
        merged = decompose_by_components(g, r, s)
        whole = nucleus_decomposition(g, r, s, algorithm="fnd")
        merged.hierarchy.validate()
        assert merged.lam == whole.lam
        assert merged.hierarchy.canonical_nuclei() == \
            whole.hierarchy.canonical_nuclei()

    def test_connected_graph_single_component(self, social):
        merged = decompose_by_components(social, 1, 2)
        whole = nucleus_decomposition(social, 1, 2, algorithm="fnd")
        assert merged.hierarchy.canonical_nuclei() == \
            whole.hierarchy.canonical_nuclei()

    def test_isolated_vertices_only(self):
        merged = decompose_by_components(Graph.empty(4), 1, 2)
        merged.hierarchy.validate()
        assert merged.hierarchy.canonical_nuclei() == set()

    def test_algorithm_choice_propagates(self):
        g = two_islands()
        merged = decompose_by_components(g, 1, 2, algorithm="lcps")
        assert merged.algorithm == "lcps+components"
        whole = nucleus_decomposition(g, 1, 2, algorithm="lcps")
        assert merged.hierarchy.canonical_nuclei() == \
            whole.hierarchy.canonical_nuclei()

    def test_timing_aggregated(self):
        merged = decompose_by_components(two_islands(), 1, 2)
        assert merged.peel_seconds >= 0
        assert merged.total_seconds >= merged.peel_seconds


class TestProcessPool:
    def test_parallel_matches_sequential(self):
        g = two_islands()
        sequential = decompose_by_components(g, 1, 2)
        parallel = decompose_by_components(g, 1, 2, processes=2)
        assert parallel.hierarchy.canonical_nuclei() == \
            sequential.hierarchy.canonical_nuclei()


class TestMergeValidation:
    def test_bad_cell_map_rejected(self):
        g = generators.complete_graph(3)
        h = nucleus_decomposition(g, 1, 2, algorithm="fnd").hierarchy
        with pytest.raises(InvalidParameterError):
            merge_hierarchies([(h, [0, 1])], 1, 2, 3)


@given(small_graphs(max_n=12))
@settings(max_examples=40, deadline=None)
def test_random_graphs_merge_equals_whole(g):
    merged = decompose_by_components(g, 1, 2)
    whole = nucleus_decomposition(g, 1, 2, algorithm="fnd")
    merged.hierarchy.validate()
    assert merged.lam == whole.lam
    assert merged.hierarchy.canonical_nuclei() == \
        whole.hierarchy.canonical_nuclei()


@given(small_graphs(max_n=9))
@settings(max_examples=20, deadline=None)
def test_random_graphs_merge_equals_whole_23(g):
    merged = decompose_by_components(g, 2, 3)
    whole = nucleus_decomposition(g, 2, 3, algorithm="fnd")
    assert merged.hierarchy.canonical_nuclei() == \
        whole.hierarchy.canonical_nuclei()
