"""Unit tests for the Graph data structure."""

import pytest
from hypothesis import given

from repro.errors import InvalidGraphError
from repro.graph.adjacency import EdgeIndex, Graph, normalize_edge

from _graphs import small_graphs


class TestConstruction:
    def test_empty_graph(self):
        g = Graph.empty(0)
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []

    def test_isolated_vertices(self):
        g = Graph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert all(g.degree(v) == 0 for v in range(5))

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        assert g.m == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph(2, [(0, 2)])
        with pytest.raises(InvalidGraphError):
            Graph(2, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph(-1, [])

    def test_from_edges_infers_n(self):
        g = Graph.from_edges([(0, 3), (1, 2)])
        assert g.n == 4
        assert g.m == 2

    def test_from_edges_explicit_n(self):
        g = Graph.from_edges([(0, 1)], n=10)
        assert g.n == 10

    def test_from_edges_empty(self):
        g = Graph.from_edges([])
        assert g.n == 0

    def test_name(self):
        g = Graph(1, [], name="lonely")
        assert g.name == "lonely"
        assert "lonely" in repr(g)


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(5, [(3, 0), (3, 4), (3, 1)])
        assert g.neighbors(3) == [0, 1, 4]

    def test_degree_and_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degrees() == [3, 1, 1, 1]

    def test_edges_lexicographic(self):
        g = Graph(4, [(2, 3), (0, 2), (1, 0)])
        assert list(g.edges()) == [(0, 1), (0, 2), (2, 3)]

    def test_has_edge_bounds(self):
        g = Graph(2, [(0, 1)])
        assert not g.has_edge(5, 0)

    def test_common_neighbors(self):
        g = Graph(5, [(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        assert g.common_neighbors(0, 1) == [2, 3]
        assert g.common_neighbor_count(0, 1) == 2

    def test_common_neighbors_none(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.common_neighbors(0, 3) == []

    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"


class TestSubgraph:
    def test_relabelled(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.n == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_unrelabelled_preserves_ids(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([1, 2, 3], relabel=False)
        assert sub.n == 5
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 1)

    def test_edge_subgraph(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        ids = [g.edge_index.id_of(0, 1), g.edge_index.id_of(2, 3)]
        sub = g.edge_subgraph(ids)
        assert sub.m == 2
        assert sub.has_edge(0, 1) and sub.has_edge(2, 3)
        assert not sub.has_edge(1, 2)

    def test_edge_subgraph_relabel(self):
        g = Graph(10, [(7, 8), (8, 9)])
        eid = g.edge_index.id_of(8, 9)
        sub = g.edge_subgraph([eid], relabel=True)
        assert sub.n == 2
        assert sub.m == 1


class TestEdgeIndex:
    def test_ids_are_dense_and_sorted(self):
        g = Graph(4, [(2, 3), (0, 1), (0, 2)])
        idx = g.edge_index
        assert len(idx) == 3
        assert [idx.endpoints(i) for i in range(3)] == [(0, 1), (0, 2), (2, 3)]

    def test_id_of_either_orientation(self):
        g = Graph(3, [(0, 2)])
        idx = g.edge_index
        assert idx.id_of(0, 2) == idx.id_of(2, 0)

    def test_get_missing(self):
        g = Graph(3, [(0, 1)])
        assert g.edge_index.get(0, 2) is None

    def test_id_of_missing_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(KeyError):
            g.edge_index.id_of(1, 2)

    def test_iteration(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert list(g.edge_index) == [(0, 1), (1, 2)]

    def test_normalize_edge(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_standalone_edge_index(self):
        idx = EdgeIndex([(5, 2), (1, 0)])
        assert idx.endpoints(0) == (0, 1)
        assert idx.endpoints(1) == (2, 5)


@given(small_graphs())
def test_degree_sum_is_twice_edges(g):
    assert sum(g.degrees()) == 2 * g.m


@given(small_graphs())
def test_neighbors_symmetric(g):
    for u in g.vertices():
        for v in g.neighbors(u):
            assert u in g.neighbor_set(v)


@given(small_graphs())
def test_edges_iterate_once_each(g):
    edges = list(g.edges())
    assert len(edges) == g.m
    assert len(set(edges)) == g.m
    assert all(u < v for u, v in edges)
