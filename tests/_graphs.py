"""Graph strategies and converters shared by the test modules.

Lives in a plain module (not ``conftest.py``) so test files can import it
explicitly: importing strategies *from* a conftest relies on which conftest
happens to own the ``conftest`` module name, which breaks as soon as another
directory (``benchmarks/``) also carries one.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import strategies as st

from repro.graph.adjacency import Graph


@st.composite
def small_graphs(draw, min_n: int = 2, max_n: int = 12, max_m: int = 36):
    """Random simple graphs small enough for brute-force oracles."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        edges = draw(st.lists(st.sampled_from(possible), max_size=max_m,
                              unique=True))
    else:
        edges = []
    return Graph(n, edges)


@st.composite
def dense_small_graphs(draw, min_n: int = 4, max_n: int = 10):
    """Small graphs biased dense, so (2,3)/(3,4) structure actually appears."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    keep = draw(st.lists(st.booleans(), min_size=len(possible),
                         max_size=len(possible)))
    edges = [e for e, flag in zip(possible, keep) if flag]
    return Graph(n, edges)


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to networkx (all vertices preserved, including isolated)."""
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    nxg.add_edges_from(graph.edges())
    return nxg
