"""Memory-boundedness of the disk backend, proven under ``RLIMIT_AS``.

The heavyweight proof (``REPRO_OUT_OF_CORE=1``, the CI ``out-of-core``
job) runs three subprocesses over one on-disk graph whose flat arrays
exceed the address-space slack: *build* (uncapped external sort),
*serve* (a fresh process clamps ``RLIMIT_AS`` to its ``VmSize`` plus a
slack smaller than the files, then decomposes on the disk backend), and
*materialise* (a control proving a full in-memory load dies with
``MemoryError`` under the identical cap).  Serve surviving the cap the
control dies under — with λ and the condensed hierarchy hash-identical
to the in-memory CSR engine — is the acceptance claim.  The ungated
smoke keeps the same harness honest at toy scale on every run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.backends import decompose
from repro.graph.csr import CSRGraph

from _ooc_worker import canonical_sha, edge_arrays, lam_sha

WORKER = Path(__file__).resolve().parent / "_ooc_worker.py"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_worker(*extra: str, expect: int = 0) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}:{env['PYTHONPATH']}" \
        if env.get("PYTHONPATH") else str(SRC)
    proc = subprocess.run(
        [sys.executable, str(WORKER), *extra],
        capture_output=True, text=True, env=env)
    assert proc.returncode == expect, proc.stderr
    return json.loads(proc.stdout) if proc.stdout.strip() else {}


def reference_hashes(seed: int, n: int, m: int) -> tuple[str, str]:
    lo, hi = edge_arrays(seed, n, m)
    csr = CSRGraph(n, zip(lo.tolist(), hi.tolist()))
    result = decompose(csr, 1, 2, algorithm="fnd", backend="csr")
    return lam_sha(result.lam), canonical_sha(result.hierarchy)


def test_uncapped_smoke_harness(tmp_path):
    """Ungated: the build→serve worker protocol end-to-end at toy scale
    (uncapped — a toy working set below the slack proves nothing)."""
    target = str(tmp_path / "toy.diskcsr")
    size = ["--seed", "7", "--n", "300", "--m", "2000", "--dir", target]
    built = run_worker("--mode", "build", *size)
    report = run_worker("--mode", "serve", "--skip-cap", *size)
    assert built["file_bytes"] == report["file_bytes"]
    lam, canon = reference_hashes(7, 300, 2000)
    assert report["lam_sha"] == lam
    assert report["canonical_sha"] == canon
    assert report["cap_bytes"] is None


def test_serve_refuses_meaningless_cap(tmp_path):
    """A capped serve over a working set smaller than the slack is a
    vacuous proof — the worker must refuse to run it."""
    target = str(tmp_path / "tiny.diskcsr")
    size = ["--seed", "7", "--n", "300", "--m", "2000", "--dir", target]
    run_worker("--mode", "build", *size)
    run_worker("--mode", "serve", "--slack-mb", "24", *size, expect=3)


@pytest.mark.skipif(os.environ.get("REPRO_OUT_OF_CORE") != "1",
                    reason="heavyweight RLIMIT_AS proof; set "
                           "REPRO_OUT_OF_CORE=1 (the CI out-of-core job)")
def test_decomposition_under_address_space_cap(tmp_path):
    # dense on purpose: the on-disk arrays scale with m (~72MB) while the
    # engine's in-memory peeling state scales with n — so a slack that
    # comfortably holds the O(n) state still cannot hold the arrays
    seed, n, m, slack = 42, 20000, 3_000_000, 32
    target = str(tmp_path / "big.diskcsr")
    size = ["--seed", str(seed), "--n", str(n), "--m", str(m),
            "--dir", target, "--slack-mb", str(slack)]

    built = run_worker("--mode", "build", *size)
    assert built["file_bytes"] > slack * (1 << 20)

    # control first: the identical cap kills the in-memory strategy
    control = run_worker("--mode", "materialise", *size)
    assert control["oom"] is True

    # the disk engine survives that cap ...
    report = run_worker("--mode", "serve", *size)
    assert report["cap_bytes"] is not None
    # ... and its answer is the CSR engine's answer, bit for bit
    lam, canon = reference_hashes(seed, n, m)
    assert report["lam_sha"] == lam
    assert report["canonical_sha"] == canon

    artifact = os.environ.get("REPRO_OOC_ARTIFACT")
    if artifact:  # CI uploads the timing/size evidence
        with open(artifact, "w") as handle:
            json.dump({**built, **report, "control_oom": True}, handle,
                      indent=2)
