"""Peeling (Set-λ) against networkx, the reference oracle, and invariants."""

import networkx as nx
from hypothesis import given, settings

from repro.analysis.reference import reference_core_numbers, reference_lambda
from repro.core.peeling import peel
from repro.core.views import EdgeView, TriangleView, VertexView, build_view
from repro.graph import generators
from repro.graph.adjacency import Graph

from _graphs import dense_small_graphs, small_graphs, to_networkx


class TestCoreNumbers:
    def test_clique(self, k5):
        assert peel(VertexView(k5)).lam == [4] * 5

    def test_path(self):
        g = generators.path_graph(5)
        assert peel(VertexView(g)).lam == [1] * 5

    def test_cycle(self):
        g = generators.cycle_graph(6)
        assert peel(VertexView(g)).lam == [2] * 6

    def test_star(self):
        g = generators.star(5)
        assert peel(VertexView(g)).lam == [1] * 6

    def test_isolated_vertices_zero(self):
        g = Graph(4, [(0, 1)])
        result = peel(VertexView(g))
        assert result.lam == [1, 1, 0, 0]
        assert result.max_lambda == 1

    def test_figure2(self):
        from repro.examples_graphs import figure2_graph
        lam = peel(VertexView(figure2_graph())).lam
        assert lam == [3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 1]

    def test_order_is_valid_degeneracy_order(self):
        g = generators.powerlaw_cluster(80, 4, 0.5, seed=9)
        result = peel(VertexView(g))
        position = {v: i for i, v in enumerate(result.order)}
        degeneracy = result.max_lambda
        for v in g.vertices():
            later = sum(1 for w in g.neighbors(v) if position[w] > position[v])
            assert later <= degeneracy


class TestTrussNumbers:
    def test_k4(self, k4):
        assert peel(EdgeView(k4)).lam == [2] * 6

    def test_triangle_free(self, petersen):
        result = peel(EdgeView(petersen))
        assert result.lam == [0] * 15
        assert result.max_lambda == 0

    def test_bowtie(self):
        from repro.examples_graphs import bowtie
        assert peel(EdgeView(bowtie())).lam == [1] * 6

    def test_figure1_connector_weaker_than_cliques(self):
        from repro.examples_graphs import figure1_graph
        g = figure1_graph()
        lam = peel(EdgeView(g)).lam
        assert lam[g.edge_index.id_of(2, 3)] == 2   # K4 edge
        assert lam[g.edge_index.id_of(2, 4)] == 1   # triangle-chain edge


class TestNucleus34:
    def test_k5(self, k5):
        assert peel(TriangleView(k5)).lam == [2] * 10

    def test_k4_single(self, k4):
        assert peel(TriangleView(k4)).lam == [1] * 4

    def test_k6(self):
        g = generators.complete_graph(6)
        assert peel(TriangleView(g)).lam == [3] * 20


@given(small_graphs(max_n=14))
@settings(max_examples=80)
def test_core_numbers_match_networkx(g):
    ours = peel(VertexView(g)).lam
    theirs = nx.core_number(to_networkx(g))
    assert ours == [theirs[v] for v in range(g.n)]


@given(small_graphs(max_n=14))
@settings(max_examples=40)
def test_core_numbers_match_independent_reference(g):
    assert peel(VertexView(g)).lam == reference_core_numbers(g)


@given(dense_small_graphs(max_n=9))
@settings(max_examples=30, deadline=None)
def test_lambda_matches_oracle_all_rs(g):
    for r, s in ((1, 2), (2, 3), (3, 4)):
        view = build_view(g, r, s)
        assert peel(view).lam == reference_lambda(g, view)


@given(small_graphs(max_n=10, max_m=24))
@settings(max_examples=40)
def test_core_numbers_monotone_under_edge_insertion(g):
    """Adding an edge never lowers any core number."""
    before = peel(VertexView(g)).lam
    missing = [(u, v) for u in range(g.n) for v in range(u + 1, g.n)
               if not g.has_edge(u, v)]
    if not missing:
        return
    extra = missing[len(missing) // 2]
    bigger = Graph(g.n, list(g.edges()) + [extra])
    after = peel(VertexView(bigger)).lam
    assert all(b >= a for a, b in zip(before, after))


@given(small_graphs(max_n=12))
@settings(max_examples=40)
def test_lambda_at_most_degree_and_peel_order_monotone(g):
    result = peel(VertexView(g))
    assert all(result.lam[v] <= g.degree(v) for v in g.vertices())
    values = [result.lam[v] for v in result.order]
    assert values == sorted(values)  # lambda assigned in non-decreasing order


@given(dense_small_graphs(max_n=9))
@settings(max_examples=30)
def test_truss_lambda_bounded_by_core_lambda(g):
    """λ₃(e) <= min(λ₂(u), λ₂(v)) - 1 for e=(u,v) (standard bound)."""
    core = peel(VertexView(g)).lam
    truss = peel(EdgeView(g)).lam
    index = g.edge_index
    for eid in range(len(index)):
        u, v = index.endpoints(eid)
        assert truss[eid] <= max(0, min(core[u], core[v]) - 1)
