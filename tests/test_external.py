"""Semi-external substrate: correctness on disk + the paper's IO claim."""

import pytest
from hypothesis import given, settings

from repro.core.decomposition import nucleus_decomposition
from repro.errors import InvalidGraphError, UnknownAlgorithmError
from repro.external import (
    DiskAdjacency,
    DiskVertexView,
    semi_external_core_decomposition,
    semi_external_decomposition,
)
from repro.graph import generators
from repro.graph.adjacency import Graph
from repro.kcore import core_numbers

from _graphs import small_graphs


class TestDiskAdjacency:
    def test_neighbors_match_memory(self, social):
        with DiskAdjacency(social) as disk:
            for v in range(0, social.n, 7):
                assert disk.neighbors(v) == social.neighbors(v)

    def test_reads_counted(self, k4):
        with DiskAdjacency(k4) as disk:
            disk.neighbors(0)
            disk.neighbors(1)
            assert disk.io.reads == 2
            assert disk.io.ints_read == 6

    def test_degree_is_free(self, k4):
        with DiskAdjacency(k4) as disk:
            assert disk.degree(2) == 3
            assert disk.io.reads == 0  # in-memory index, no IO

    def test_out_of_range(self, k4):
        with DiskAdjacency(k4) as disk:
            with pytest.raises(InvalidGraphError):
                disk.neighbors(9)

    def test_empty_adjacency(self):
        g = Graph(3, [(0, 1)])
        with DiskAdjacency(g) as disk:
            assert disk.neighbors(2) == []

    def test_file_removed_on_close(self, k4):
        from pathlib import Path
        disk = DiskAdjacency(k4)
        path = Path(disk._file.name)
        assert path.exists()
        disk.close()
        assert not path.exists()

    def test_snapshot_phases(self, k4):
        with DiskAdjacency(k4) as disk:
            disk.io.snapshot("a")
            disk.neighbors(0)
            disk.io.snapshot("b")
            assert disk.io.phase_delta("a", "b") == (1, 3)


class TestSemiExternalCorrectness:
    @pytest.mark.parametrize("algorithm", ["naive", "dft", "fnd", "lcps"])
    def test_matches_in_memory(self, algorithm):
        g = generators.powerlaw_cluster(80, 4, 0.5, seed=6)
        thinned = generators.edge_dropout(g, 0.3, seed=7)
        result = semi_external_core_decomposition(thinned, algorithm)
        assert result.lam == core_numbers(thinned)
        expected = nucleus_decomposition(thinned, 1, 2, algorithm=algorithm) \
            .hierarchy.canonical_nuclei()
        assert result.hierarchy.canonical_nuclei() == expected

    def test_hypo_builds_nothing(self, social):
        result = semi_external_core_decomposition(social, "hypo")
        assert result.hierarchy is None

    def test_unknown_algorithm(self, social):
        with pytest.raises(UnknownAlgorithmError):
            semi_external_core_decomposition(social, "magic")


class TestPaperIoClaim:
    """§3.1: traversal IO is at least peeling-scale; FND avoids it."""

    def graph(self):
        g = generators.powerlaw_cluster(150, 5, 0.6, seed=11)
        return generators.edge_dropout(g, 0.3, seed=12)

    def test_dft_traversal_costs_another_pass(self):
        g = self.graph()
        result = semi_external_core_decomposition(g, "dft")
        # DFT's traversal re-reads essentially the whole adjacency
        assert result.post_ints >= 0.9 * result.peel_ints

    def test_naive_costs_many_passes(self):
        g = self.graph()
        naive = semi_external_core_decomposition(g, "naive")
        dft = semi_external_core_decomposition(g, "dft")
        assert naive.post_ints > 1.5 * dft.post_ints

    def test_fnd_needs_no_post_io(self):
        g = self.graph()
        result = semi_external_core_decomposition(g, "fnd")
        assert result.post_ints == 0
        assert result.post_reads == 0

    def test_passes_helper(self):
        g = self.graph()
        result = semi_external_core_decomposition(g, "dft")
        peel_passes, post_passes = result.passes(2 * g.m)
        assert peel_passes >= 0.9
        assert post_passes >= 0.9

    def test_zero_ints_per_pass(self):
        result = semi_external_core_decomposition(Graph(2, []), "fnd")
        assert result.passes(0) == (0.0, 0.0)


class TestHigherOrderIoClaim:
    """§3.1 extended: FND's zero post-peel IO holds for (2,3)/(3,4) too,
    where the disk engine spools the incidence during the peel phase."""

    def graph(self):
        g = generators.powerlaw_cluster(120, 5, 0.6, seed=21)
        return generators.edge_dropout(g, 0.3, seed=22)

    @pytest.mark.parametrize("rs", [(1, 2), (2, 3), (3, 4)])
    def test_fnd_post_io_is_zero(self, rs):
        r, s = rs
        result = semi_external_decomposition(self.graph(), r, s, "fnd")
        assert (result.r, result.s) == (r, s)
        assert result.post_ints == 0
        assert result.post_reads == 0
        assert result.peel_ints > 0

    @pytest.mark.parametrize("rs", [(2, 3), (3, 4)])
    def test_matches_in_memory_engine(self, rs):
        from repro.backends import decompose

        r, s = rs
        g = self.graph()
        result = semi_external_decomposition(g, r, s, "fnd")
        ref = decompose(g, r, s, algorithm="fnd", backend="csr")
        assert result.lam == ref.lam
        assert result.hierarchy.canonical_nuclei() == \
            ref.hierarchy.canonical_nuclei()

    def test_core_wrapper_is_12(self):
        g = self.graph()
        via_wrapper = semi_external_core_decomposition(g, "fnd")
        direct = semi_external_decomposition(g, 1, 2, "fnd")
        assert (via_wrapper.r, via_wrapper.s) == (1, 2)
        assert via_wrapper.lam == direct.lam

    def test_traversal_rejected_beyond_12(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            semi_external_decomposition(self.graph(), 2, 3, "dft")

    def test_persistent_directory(self, tmp_path):
        target = tmp_path / "semi.diskcsr"
        result = semi_external_decomposition(self.graph(), 2, 3, "fnd",
                                             directory=target)
        assert result.post_ints == 0
        assert (target / "meta.json").exists()  # kept for later runs


@given(small_graphs(max_n=10))
@settings(max_examples=25, deadline=None)
def test_disk_view_equivalence_random(g):
    with DiskAdjacency(g) as disk:
        view = DiskVertexView(disk)
        from repro.core.peeling import peel
        assert peel(view).lam == core_numbers(g)
