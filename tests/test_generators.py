"""Generator sanity: determinism, sizes, and the structural traits each
generator exists to provide."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph import generators as gen
from repro.graph.components import is_connected
from repro.analysis.density import edge_density


class TestDeterminism:
    @pytest.mark.parametrize("build", [
        lambda seed: gen.erdos_renyi(40, 0.2, seed=seed),
        lambda seed: gen.barabasi_albert(40, 3, seed=seed),
        lambda seed: gen.powerlaw_cluster(40, 3, 0.5, seed=seed),
        lambda seed: gen.chung_lu(40, 2.5, 6.0, seed=seed),
        lambda seed: gen.copying_model(40, 3, 0.5, seed=seed),
    ])
    def test_same_seed_same_graph(self, build):
        assert build(7) == build(7)

    def test_different_seed_differs(self):
        a = gen.erdos_renyi(50, 0.3, seed=1)
        b = gen.erdos_renyi(50, 0.3, seed=2)
        assert a != b


class TestBasicShapes:
    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.m == 15
        assert edge_density(g) == 1.0

    def test_path(self):
        g = gen.path_graph(5)
        assert g.m == 4
        assert is_connected(g)

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(InvalidParameterError):
            gen.cycle_graph(2)

    def test_star(self):
        g = gen.star(7)
        assert g.n == 8
        assert g.degree(0) == 7


class TestErdosRenyi:
    def test_p_zero(self):
        assert gen.erdos_renyi(20, 0.0, seed=0).m == 0

    def test_p_one_is_complete(self):
        g = gen.erdos_renyi(10, 1.0, seed=0)
        assert g.m == 45

    def test_expected_edge_count_rough(self):
        g = gen.erdos_renyi(200, 0.1, seed=5)
        expected = 0.1 * 200 * 199 / 2
        assert 0.8 * expected < g.m < 1.2 * expected

    def test_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            gen.erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = gen.barabasi_albert(100, 3, seed=1)
        assert g.m == 3 * (100 - 3)

    def test_heavy_tail(self):
        g = gen.barabasi_albert(400, 2, seed=1)
        degrees = sorted(g.degrees())
        assert degrees[-1] > 4 * (2 * g.m / g.n)  # hub way above average

    def test_invalid_m(self):
        with pytest.raises(InvalidParameterError):
            gen.barabasi_albert(10, 0)
        with pytest.raises(InvalidParameterError):
            gen.barabasi_albert(5, 5)


class TestPowerlawCluster:
    def test_higher_closure_more_triangles(self):
        from repro.graph.cliques import triangle_count
        low = gen.powerlaw_cluster(150, 4, 0.0, seed=3)
        high = gen.powerlaw_cluster(150, 4, 0.9, seed=3)
        assert triangle_count(high) > triangle_count(low)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            gen.powerlaw_cluster(10, 0, 0.5)
        with pytest.raises(InvalidParameterError):
            gen.powerlaw_cluster(10, 2, 1.5)


class TestChungLu:
    def test_average_degree_rough(self):
        g = gen.chung_lu(500, 2.5, 10.0, seed=2)
        avg = 2 * g.m / g.n
        assert 4.0 < avg < 14.0  # collisions lose some edges

    def test_invalid_exponent(self):
        with pytest.raises(InvalidParameterError):
            gen.chung_lu(10, 1.0)


class TestCopyingModel:
    def test_size(self):
        g = gen.copying_model(100, 4, 0.5, seed=0)
        assert g.n == 100
        assert g.m >= 4  # at least the seed clique

    def test_invalid_out_degree(self):
        with pytest.raises(InvalidParameterError):
            gen.copying_model(10, 0)


class TestPlantedCliques:
    def test_clique_edges_present(self):
        g = gen.planted_cliques(3, 5, bridge_edges=1, seed=0)
        for c in range(3):
            base = 5 * c
            for i in range(5):
                for j in range(i + 1, 5):
                    assert g.has_edge(base + i, base + j)

    def test_k4_density_extreme(self):
        # the uk-2005 signature: |K4|/|triangles| far above social graphs
        from repro.graph.cliques import four_clique_count, triangle_count
        g = gen.planted_cliques(3, 12, seed=1)
        assert four_clique_count(g) / triangle_count(g) > 2.0

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            gen.planted_cliques(0, 5)


class TestPlantedHierarchy:
    def test_size(self):
        g = gen.planted_hierarchy(branching=2, depth=2, leaf_size=5, seed=0)
        assert g.n == 4 * 5

    def test_leaves_denser_than_graph(self):
        g = gen.planted_hierarchy(branching=2, depth=2, leaf_size=8,
                                  base_p=0.05, level_p_step=0.4, seed=1)
        leaf = g.subgraph(range(8))
        assert edge_density(leaf) > edge_density(g)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            gen.planted_hierarchy(branching=1, depth=2, leaf_size=4)


class TestRmat:
    def test_size_and_determinism(self):
        g = gen.rmat(6, edge_factor=4, seed=3)
        assert g.n == 64
        assert g.m > 0
        assert g == gen.rmat(6, edge_factor=4, seed=3)

    def test_skew(self):
        g = gen.rmat(8, edge_factor=8, seed=1)
        degrees = sorted(g.degrees())
        average = 2 * g.m / g.n
        assert degrees[-1] > 3 * average  # hubs exist

    def test_invalid_partition(self):
        with pytest.raises(InvalidParameterError):
            gen.rmat(4, partition=(0, 0, 0, 0))


class TestStochasticBlock:
    def test_blocks_denser_inside(self):
        g = gen.stochastic_block([15, 15], p_in=0.8, p_out=0.02, seed=4)
        inside = g.subgraph(range(15))
        assert edge_density(inside) > 4 * edge_density(g.subgraph(range(30))) \
            or edge_density(inside) > 0.5

    def test_p_out_zero_disconnects(self):
        from repro.graph.components import connected_components
        g = gen.stochastic_block([8, 8], p_in=1.0, p_out=0.0, seed=0)
        assert len(connected_components(g)) == 2

    def test_invalid_probabilities(self):
        with pytest.raises(InvalidParameterError):
            gen.stochastic_block([4, 4], p_in=0.1, p_out=0.5)


class TestEdgeDropout:
    def test_rate_zero_identity(self):
        g = gen.complete_graph(6)
        assert gen.edge_dropout(g, 0.0, seed=1) == g

    def test_rate_removes_edges(self):
        g = gen.complete_graph(20)
        thinned = gen.edge_dropout(g, 0.5, seed=2)
        assert 0 < thinned.m < g.m
        assert thinned.n == g.n

    def test_deterministic(self):
        g = gen.complete_graph(10)
        assert gen.edge_dropout(g, 0.3, seed=5) == gen.edge_dropout(g, 0.3, seed=5)

    def test_invalid_rate(self):
        with pytest.raises(InvalidParameterError):
            gen.edge_dropout(gen.complete_graph(3), 1.0)


class TestRingOfCliques:
    def test_structure(self):
        g = gen.ring_of_cliques(4, 5)
        assert g.n == 20
        assert g.m == 4 * 10 + 4
        assert is_connected(g)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            gen.ring_of_cliques(2, 5)
