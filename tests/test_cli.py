"""CLI smoke tests (argument parsing and end-to-end output)."""

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_edge_list
from repro.examples_graphs import figure2_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig2.txt"
    save_edge_list(figure2_graph(), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self):
        args = build_parser().parse_args(["decompose", "g.txt"])
        assert (args.r, args.s, args.algorithm) == (1, 2, "fnd")

    def test_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "not_a_dataset"])


class TestCommands:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices : 11" in out
        assert "triangles: 8" in out

    def test_decompose_with_tree(self, graph_file, capsys):
        assert main(["decompose", graph_file, "--algorithm", "lcps",
                     "--tree"]) == 0
        out = capsys.readouterr().out
        assert "max lambda : 3" in out
        assert "k=3" in out

    def test_decompose_truss(self, graph_file, capsys):
        assert main(["decompose", graph_file, "--r", "2", "--s", "3"]) == 0
        assert "nuclei" in capsys.readouterr().out

    def test_decompose_hypo(self, graph_file, capsys):
        assert main(["decompose", graph_file, "--algorithm", "hypo"]) == 0
        assert "builds none" in capsys.readouterr().out

    def test_dataset_command(self, capsys):
        assert main(["dataset", "uk2005", "--size", "tiny"]) == 0
        assert "max lambda" in capsys.readouterr().out

    def test_densest(self, tmp_path, capsys):
        from repro.graph import generators
        path = tmp_path / "g.txt"
        save_edge_list(generators.planted_cliques(2, 6, seed=1), path)
        assert main(["densest", str(path), "--top", "3"]) == 0
        assert "density=" in capsys.readouterr().out

    def test_export_json(self, graph_file, tmp_path, capsys):
        out = tmp_path / "h.json"
        assert main(["export", graph_file, str(out)]) == 0
        from repro.export import load_hierarchy
        load_hierarchy(out).validate()

    def test_export_dot(self, graph_file, tmp_path):
        out = tmp_path / "h.dot"
        assert main(["export", graph_file, str(out), "--format", "dot"]) == 0
        assert out.read_text().startswith("digraph")

    def test_export_skeleton_dot(self, graph_file, tmp_path):
        out = tmp_path / "s.dot"
        assert main(["export", graph_file, str(out),
                     "--format", "skeleton-dot"]) == 0
        assert "digraph" in out.read_text()

    def test_missing_file_friendly_error(self, capsys):
        assert main(["stats", "/definitely/not/here.txt"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("only-one-token\n")
        assert main(["stats", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestQueryCommand:
    def test_build_and_query(self, graph_file, capsys):
        assert main(["query", graph_file, "--r", "2", "--s", "3",
                     "--vertices", "0,8", "--k", "1", "--cells"]) == 0
        out = capsys.readouterr().out
        assert "built  :" in out
        assert "vertex 0:" in out and "vertex 8:" in out

    def test_save_then_serve(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "fig2.npz"
        assert main(["query", graph_file, "--r", "1", "--s", "2",
                     "--save-index", str(index_path)]) == 0
        assert index_path.exists()
        capsys.readouterr()
        assert main(["query", str(index_path), "--vertices", "0,1",
                     "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "loaded :" in out
        assert "communities at k=2" in out

    def test_profile_from_persisted_index(self, graph_file, tmp_path,
                                          capsys):
        index_path = tmp_path / "fig2.npz"
        assert main(["query", graph_file, "--save-index",
                     str(index_path)]) == 0
        capsys.readouterr()
        assert main(["query", str(index_path), "--vertices", "0",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "vertex 0:" in out
        assert "density" in out

    def test_bad_vertices_friendly_error(self, graph_file, capsys):
        assert main(["query", graph_file, "--vertices", "zero"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_index_file_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip")
        assert main(["query", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
