"""CLI smoke tests (argument parsing and end-to-end output)."""

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_edge_list
from repro.examples_graphs import figure2_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig2.txt"
    save_edge_list(figure2_graph(), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self):
        args = build_parser().parse_args(["decompose", "g.txt"])
        assert (args.r, args.s, args.algorithm) == (1, 2, "fnd")

    def test_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "not_a_dataset"])


class TestCommands:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices : 11" in out
        assert "triangles: 8" in out

    def test_decompose_with_tree(self, graph_file, capsys):
        assert main(["decompose", graph_file, "--algorithm", "lcps",
                     "--tree"]) == 0
        out = capsys.readouterr().out
        assert "max lambda : 3" in out
        assert "k=3" in out

    def test_decompose_truss(self, graph_file, capsys):
        assert main(["decompose", graph_file, "--r", "2", "--s", "3"]) == 0
        assert "nuclei" in capsys.readouterr().out

    def test_decompose_hypo(self, graph_file, capsys):
        assert main(["decompose", graph_file, "--algorithm", "hypo"]) == 0
        assert "builds none" in capsys.readouterr().out

    def test_dataset_command(self, capsys):
        assert main(["dataset", "uk2005", "--size", "tiny"]) == 0
        assert "max lambda" in capsys.readouterr().out

    def test_densest(self, tmp_path, capsys):
        from repro.graph import generators
        path = tmp_path / "g.txt"
        save_edge_list(generators.planted_cliques(2, 6, seed=1), path)
        assert main(["densest", str(path), "--top", "3"]) == 0
        assert "density=" in capsys.readouterr().out

    def test_export_json(self, graph_file, tmp_path, capsys):
        out = tmp_path / "h.json"
        assert main(["export", graph_file, str(out)]) == 0
        from repro.export import load_hierarchy
        load_hierarchy(out).validate()

    def test_export_dot(self, graph_file, tmp_path):
        out = tmp_path / "h.dot"
        assert main(["export", graph_file, str(out), "--format", "dot"]) == 0
        assert out.read_text().startswith("digraph")

    def test_export_skeleton_dot(self, graph_file, tmp_path):
        out = tmp_path / "s.dot"
        assert main(["export", graph_file, str(out),
                     "--format", "skeleton-dot"]) == 0
        assert "digraph" in out.read_text()

    def test_missing_file_friendly_error(self, capsys):
        assert main(["stats", "/definitely/not/here.txt"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("only-one-token\n")
        assert main(["stats", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestQueryCommand:
    def test_build_and_query(self, graph_file, capsys):
        assert main(["query", graph_file, "--r", "2", "--s", "3",
                     "--vertices", "0,8", "--k", "1", "--cells"]) == 0
        out = capsys.readouterr().out
        assert "built  :" in out
        assert "vertex 0:" in out and "vertex 8:" in out

    def test_save_then_serve(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "fig2.npz"
        assert main(["query", graph_file, "--r", "1", "--s", "2",
                     "--save-index", str(index_path)]) == 0
        assert index_path.exists()
        capsys.readouterr()
        assert main(["query", str(index_path), "--vertices", "0,1",
                     "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "loaded :" in out
        assert "communities at k=2" in out

    def test_profile_from_persisted_index(self, graph_file, tmp_path,
                                          capsys):
        index_path = tmp_path / "fig2.npz"
        assert main(["query", graph_file, "--save-index",
                     str(index_path)]) == 0
        capsys.readouterr()
        assert main(["query", str(index_path), "--vertices", "0",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "vertex 0:" in out
        assert "density" in out

    def test_bad_vertices_friendly_error(self, graph_file, capsys):
        assert main(["query", graph_file, "--vertices", "zero"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_index_file_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip")
        assert main(["query", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestVariantCommands:
    @pytest.fixture
    def values_file(self, tmp_path):
        def write(values):
            path = tmp_path / "values.txt"
            path.write_text("".join(f"{v}\n" for v in values))
            return str(path)
        return write

    def test_weighted(self, graph_file, values_file, capsys):
        weights = values_file([1.5] * figure2_graph().m)
        assert main(["decompose", graph_file, "--variant", "weighted",
                     "--edge-values", weights]) == 0
        out = capsys.readouterr().out
        assert "variant    : weighted" in out
        assert "max lambda" in out

    def test_uncertain(self, graph_file, values_file, capsys):
        probs = values_file([0.9] * figure2_graph().m)
        assert main(["decompose", graph_file, "--variant", "uncertain",
                     "--edge-values", probs, "--eta", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "variant    : uncertain" in out
        assert "eta        : 0.7" in out

    def test_weighted_without_values_is_friendly(self, graph_file, capsys):
        assert main(["decompose", graph_file,
                     "--variant", "weighted"]) == 2
        assert "--edge-values" in capsys.readouterr().err

    def test_directed(self, tmp_path, capsys):
        path = tmp_path / "arcs.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main(["decompose", str(path), "--variant", "directed"]) == 0
        out = capsys.readouterr().out
        assert "max in-core : 1" in out
        assert "max out-core: 1" in out

    def test_temporal(self, tmp_path, capsys):
        path = tmp_path / "events.txt"
        path.write_text("0 1 0\n0 1 1\n1 2 0\n0 2 0\n")
        assert main(["decompose", str(path), "--variant", "temporal",
                     "--h", "2"]) == 0
        out = capsys.readouterr().out
        assert "h          : 2" in out
        assert "max lambda : 1" in out

    def test_temporal_profile(self, tmp_path, capsys):
        path = tmp_path / "events.txt"
        path.write_text("0 1 0\n0 1 1\n1 2 0\n0 2 0\n")
        assert main(["decompose", str(path),
                     "--variant", "temporal-profile"]) == 0
        out = capsys.readouterr().out
        assert "h=1: max lambda 2" in out
        assert "h=2: max lambda 1" in out

    def test_variant_backend_object(self, graph_file, values_file, capsys):
        weights = values_file([1.0] * figure2_graph().m)
        assert main(["decompose", graph_file, "--variant", "weighted",
                     "--edge-values", weights, "--backend", "object"]) == 0
        assert "(backend object)" in capsys.readouterr().out
