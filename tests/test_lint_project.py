"""The whole-project analysis layer: Project graphs and summaries, the
interprocedural rules RL007–RL009 (fire and no-fire pairs), output
formats, and the baseline machinery.

The RL007 fixtures re-enact the PR 3 int64 key-packing incident — the
``.astype(np.int32)`` in a helper, the ``a * n + b`` in its caller —
which the per-file RL004 cannot see.
"""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lint import (
    Project,
    get_rule,
    lint_modules,
    lint_paths,
    lint_source,
    parse_module,
)
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import iter_python_files
from repro.lint.output import render_json, render_sarif, render_text
from repro.lint.project import module_name
from repro.lint.registry import all_rules

REPO = Path(__file__).resolve().parents[1]
PARALLEL = "src/repro/parallel/fixture.py"
ANALYSIS = "src/repro/analysis/fixture.py"

SRC_FILES = sorted(iter_python_files([REPO / "src"]))


def codes(source: str, path: str) -> list[str]:
    return [v.code for v in lint_source(source, path=path)]


# ---------------------------------------------------------------------------
# Project: module naming, import graph, symbol table, call graph
# ---------------------------------------------------------------------------
class TestProject:
    def test_module_name(self):
        assert module_name("repro/parallel/pool.py") == "repro.parallel.pool"
        assert module_name("repro/lint/__init__.py") == "repro.lint"
        assert module_name("<string>") == "<string>"

    def test_import_graph_edges(self):
        a = parse_module("import os\nfrom repro.other import thing\n",
                         "src/repro/one.py")
        b = parse_module("def thing():\n    return 1\n", "src/repro/other.py")
        project = Project([a, b])
        assert "repro.other" in project.imports["repro.one"]
        assert "os" in project.imports["repro.one"]

    def test_symbol_table_and_reexport_chain(self):
        core = parse_module("def peel(g):\n    return g\nLIMIT = 3\n",
                            "src/repro/corey.py")
        facade = parse_module("from repro.corey import peel\n",
                              "src/repro/facade.py")
        project = Project([core, facade])
        assert "repro.corey.peel" in project.symbols
        assert "repro.corey.LIMIT" in project.symbols
        defmod, node = project.resolve_symbol("repro.facade", "peel")
        assert defmod == "repro.corey" and node.name == "peel"
        assert project.has_symbol("repro.facade", "peel")
        assert not project.has_symbol("repro.facade", "missing")

    def test_submodules_are_importable_symbols(self):
        pkg = parse_module("", "src/repro/pkg/__init__.py")
        sub = parse_module("def f():\n    return 0\n",
                           "src/repro/pkg/sub.py")
        project = Project([pkg, sub])
        assert project.has_symbol("repro.pkg", "sub")

    def test_call_graph_resolves_across_modules(self):
        helper = parse_module("def shard(x):\n    return x\n",
                              "src/repro/helpers.py")
        caller = parse_module(
            "from repro.helpers import shard\n"
            "def run(x):\n    return shard(x)\n",
            "src/repro/caller.py")
        project = Project([helper, caller])
        summary = project.functions["repro.caller.run"]
        assert set(summary.call_targets.values()) == {"repro.helpers.shard"}

    def test_summary_signature_fields(self):
        mod = parse_module(
            "def facade(graph, backend=None, *, workers=None, **rest):\n"
            "    return graph\n",
            "src/repro/sig.py")
        project = Project([mod])
        summary = project.functions["repro.sig.facade"]
        assert summary.params == ("graph", "backend")
        assert summary.kwonly == ("workers",)
        assert summary.has_kwargs
        assert summary.accepts_keyword("anything")

    def test_returns_int32_closes_transitively(self):
        mod = parse_module(
            "import numpy as np\n"
            "def raw(d):\n    return d.astype(np.int32)\n"
            "def wrap(d):\n    return raw(d)\n"
            "def wide(d):\n    return raw(d).astype(np.int64)\n",
            "src/repro/flow.py")
        project = Project([mod])
        assert project.functions["repro.flow.raw"].returns_int32
        assert project.functions["repro.flow.wrap"].returns_int32
        assert not project.functions["repro.flow.wide"].returns_int32


# ---------------------------------------------------------------------------
# hypothesis: the builder is total over every module in src/
# ---------------------------------------------------------------------------
class TestBuilderTotality:
    @given(path=st.sampled_from(SRC_FILES))
    @settings(max_examples=len(SRC_FILES), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_single_module_projects_build(self, path):
        module = parse_module(path.read_text(encoding="utf-8"), str(path))
        project = Project([module])
        name = module_name(module.relpath)
        assert name in project.modules
        assert name in project.imports
        for summary in project.functions.values():
            assert summary.module == name

    @given(subset=st.sets(st.sampled_from(SRC_FILES), min_size=2,
                          max_size=12))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_subsets_build(self, subset):
        modules = [parse_module(p.read_text(encoding="utf-8"), str(p))
                   for p in sorted(subset)]
        project = Project(modules)
        assert len(project.modules) == len(modules)

    def test_whole_tree_builds_and_lints(self):
        violations, errors = lint_paths([REPO / "src"])
        assert errors == []
        assert violations == [], "\n".join(v.format() for v in violations)


# ---------------------------------------------------------------------------
# RL007 interprocedural-dtype-flow
# ---------------------------------------------------------------------------
class TestInterproceduralDtypeFlow:
    # the PR 3 incident, split across a function boundary: the helper
    # narrows to int32, the caller packs keys by multiplication
    INCIDENT = (
        "import numpy as np\n"
        "def _pack_base(deg):\n"
        "    return deg.astype(np.int32)\n"
        "def pack_keys(a, b, n):\n"
        "    base = _pack_base(a)\n"
        "    return base * n + b\n")

    def test_rediscovers_pr3_incident_across_boundary(self):
        assert codes(self.INCIDENT, PARALLEL) == ["RL007"]

    def test_per_file_rl004_misses_the_same_source(self):
        violations = lint_source(self.INCIDENT, path=PARALLEL,
                                 rules=[get_rule("RL004")])
        assert violations == []

    def test_fires_across_modules(self):
        helper = parse_module(
            "import numpy as np\n"
            "def narrow(d):\n    return d.astype(np.int32)\n",
            "src/repro/helper.py")
        caller = parse_module(
            "from repro.helper import narrow\n"
            "def pack(a, n, b):\n"
            "    ids = narrow(a)\n"
            "    return ids * n + b\n",
            "src/repro/caller.py")
        found = [v.code for v in lint_modules([helper, caller])]
        assert found == ["RL007"]

    def test_fires_on_direct_call_operand(self):
        src = (
            "import numpy as np\n"
            "def narrow(d):\n    return d.astype(np.int32)\n"
            "def pack(a, n):\n    return narrow(a) * n\n")
        assert codes(src, ANALYSIS) == ["RL007"]

    def test_quiet_after_promotion(self):
        src = (
            "import numpy as np\n"
            "def narrow(d):\n    return d.astype(np.int32)\n"
            "def pack(a, n, b):\n"
            "    base = narrow(a).astype(np.int64)\n"
            "    return base * n + b\n")
        assert codes(src, ANALYSIS) == []

    def test_rebinding_clears_interprocedural_taint(self):
        src = (
            "import numpy as np\n"
            "def narrow(d):\n    return d.astype(np.int32)\n"
            "def pack(a, n):\n"
            "    ids = narrow(a)\n"
            "    ids = ids.astype(np.int64)\n"
            "    return ids * n\n")
        assert codes(src, ANALYSIS) == []

    def test_quiet_on_wide_returning_callee(self):
        src = (
            "import numpy as np\n"
            "def widen(d):\n    return d.astype(np.int64)\n"
            "def pack(a, n):\n    return widen(a) * n\n")
        assert codes(src, ANALYSIS) == []

    def test_does_not_duplicate_rl004_local_finding(self):
        src = (
            "import numpy as np\n"
            "def pack(nodes, n):\n"
            "    ids = nodes.astype(np.int32)\n"
            "    return ids * n + 1\n")
        assert codes(src, ANALYSIS) == ["RL004"]


# ---------------------------------------------------------------------------
# RL008 shard-write-race
# ---------------------------------------------------------------------------
class TestShardWriteRace:
    def test_fires_on_fancy_indexed_write(self):
        src = (
            "def bad_kernel(out, targets, vals):\n"
            "    out[targets] = vals\n"
            "def _worker_main(conn):\n"
            "    bad_kernel(A, I, V)\n")
        assert codes(src, PARALLEL) == ["RL008"]

    def test_fires_on_whole_array_write_of_bundle_member(self):
        src = (
            "def zero_kernel(bundle, lo, hi):\n"
            "    bundle.degree[:] = 0\n"
            "def _worker_main(conn):\n"
            "    zero_kernel(B, 0, 1)\n")
        violations = lint_source(src, path=PARALLEL)
        assert [v.code for v in violations] == ["RL008"]
        assert "bundle.degree" in violations[0].message

    def test_quiet_on_param_bounded_slice(self):
        src = (
            "def good_kernel(out, lo, hi, vals):\n"
            "    out[lo:hi] = vals\n"
            "def _worker_main(conn):\n"
            "    good_kernel(A, 0, 1, V)\n")
        assert codes(src, PARALLEL) == []

    def test_quiet_on_local_array_writes(self):
        src = (
            "import numpy as np\n"
            "def count_kernel(indptr, lo, hi):\n"
            "    out = np.zeros(hi - lo, dtype=np.int64)\n"
            "    out[0] = indptr[lo]\n"
            "    return out\n"
            "def _worker_main(conn):\n"
            "    count_kernel(P, 0, 1)\n")
        assert codes(src, PARALLEL) == []

    def test_quiet_when_kernel_not_dispatched(self):
        src = (
            "def helper(out, targets, vals):\n"
            "    out[targets] = vals\n")
        assert codes(src, PARALLEL) == []

    def test_computed_slice_bounds_are_unanalyzable(self):
        src = (
            "def drift_kernel(out, lo, hi, vals):\n"
            "    out[lo:hi + 1] = vals\n"
            "def _worker_main(conn):\n"
            "    drift_kernel(A, 0, 1, V)\n")
        assert codes(src, PARALLEL) == ["RL008"]

    def test_real_dispatcher_kernels_are_covered_and_clean(self):
        pool = Path(REPO, "src/repro/parallel/pool.py")
        kernels = Path(REPO, "src/repro/parallel/kernels.py")
        csr = Path(REPO, "src/repro/graph/csr.py")
        modules = [parse_module(p.read_text(encoding="utf-8"), str(p))
                   for p in (pool, kernels, csr)]
        project = Project(modules)
        dispatcher = project.functions["repro.parallel.pool._worker_main"]
        dispatched = set(dispatcher.call_targets.values())
        assert "repro.parallel.kernels.core_decrement" in dispatched
        assert "repro.graph.csr.triangle_pair_kernel" in dispatched
        found = [v for v in lint_modules(modules) if v.code == "RL008"]
        assert found == []


# ---------------------------------------------------------------------------
# RL009 backend-contract
# ---------------------------------------------------------------------------
class TestBackendContract:
    def test_fires_on_unknown_backend_literal(self):
        src = (
            "def run(g, peel):\n"
            "    return peel(g, backend=\"csr_parallel\")\n")
        violations = lint_source(src, path=ANALYSIS)
        assert [v.code for v in violations] == ["RL009"]
        assert "csr_parallel" in violations[0].message

    def test_quiet_on_known_backend_literal(self):
        src = (
            "def run(g, peel):\n"
            "    return peel(g, backend=\"csr-parallel\")\n")
        assert codes(src, ANALYSIS) == []

    def test_fires_on_dead_backend_comparison(self):
        src = (
            "def pick(backend=None, workers=None):\n"
            "    if backend == \"par\":\n"
            "        return 1\n"
            "    return 0\n")
        assert codes(src, ANALYSIS) == ["RL009"]

    def test_fires_on_dead_membership_literal(self):
        src = (
            "def pick(backend=None, workers=None):\n"
            "    return backend in (\"csr\", \"diskette\")\n")
        assert codes(src, ANALYSIS) == ["RL009"]

    def test_backends_tuple_read_from_project(self):
        backends = parse_module(
            "BACKENDS = (\"object\", \"flat\")\n",
            "src/repro/backends.py")
        user = parse_module(
            "def run(g, peel):\n"
            "    return peel(g, backend=\"flat\")\n",
            "src/repro/user.py")
        assert lint_modules([backends, user]) == []
        bad = parse_module(
            "def run(g, peel):\n"
            "    return peel(g, backend=\"csr\")\n",
            "src/repro/user.py")
        found = [v.code for v in lint_modules([backends, bad])]
        assert found == ["RL009"]

    def test_fires_on_stale_lazy_import(self):
        engine = parse_module("def disk_core_peel(d):\n    return d\n",
                              "src/repro/engine_mod.py")
        dispatch = parse_module(
            "def core_peel(g):\n"
            "    from repro.engine_mod import disk_truss_peel\n"
            "    return disk_truss_peel(g)\n",
            "src/repro/dispatch.py")
        violations = lint_modules([engine, dispatch])
        assert [v.code for v in violations] == ["RL009"]
        assert "disk_truss_peel" in violations[0].message

    def test_quiet_on_resolvable_lazy_import(self):
        engine = parse_module("def disk_core_peel(d):\n    return d\n",
                              "src/repro/engine_mod.py")
        dispatch = parse_module(
            "def core_peel(g):\n"
            "    from repro.engine_mod import disk_core_peel\n"
            "    return disk_core_peel(g)\n",
            "src/repro/dispatch.py")
        assert lint_modules([engine, dispatch]) == []

    def test_try_guarded_lazy_import_is_exempt(self):
        engine = parse_module("def impl(d):\n    return d\n",
                              "src/repro/engine_mod.py")
        dispatch = parse_module(
            "def run(g):\n"
            "    try:\n"
            "        from repro.engine_mod import optional\n"
            "    except ImportError:\n"
            "        optional = None\n"
            "    return optional\n",
            "src/repro/dispatch.py")
        assert lint_modules([engine, dispatch]) == []

    def test_fires_on_unaccepted_keyword(self):
        src = (
            "def facade(graph, backend=None, workers=None):\n"
            "    return graph\n"
            "def caller(g):\n"
            "    return facade(g, backend=\"csr\", worker=2)\n")
        violations = lint_source(src, path=ANALYSIS)
        assert [v.code for v in violations] == ["RL009"]
        assert "'worker'" in violations[0].message

    def test_quiet_on_matching_keywords(self):
        src = (
            "def facade(graph, backend=None, workers=None):\n"
            "    return graph\n"
            "def caller(g):\n"
            "    return facade(g, backend=\"csr\", workers=2)\n")
        assert codes(src, ANALYSIS) == []

    def test_kwargs_facades_are_exempt(self):
        src = (
            "def facade(graph, **options):\n"
            "    return graph\n"
            "def caller(g):\n"
            "    return facade(g, anything=1)\n")
        assert codes(src, ANALYSIS) == []

    def test_star_expansion_calls_are_exempt(self):
        src = (
            "def facade(graph, backend=None, workers=None):\n"
            "    return graph\n"
            "def caller(g, opts):\n"
            "    return facade(g, **opts)\n")
        assert codes(src, ANALYSIS) == []


# ---------------------------------------------------------------------------
# output formats
# ---------------------------------------------------------------------------
class TestOutputFormats:
    VIOLATIONS = lint_source(
        "def facade(graph, backend=None, workers=None):\n"
        "    return graph\n"
        "def caller(g):\n"
        "    return facade(g, worker=2)\n",
        path=ANALYSIS)

    def test_text_round_trip(self):
        text = render_text(self.VIOLATIONS)
        assert "RL009" in text and ANALYSIS in text

    def test_json_is_parseable_and_complete(self):
        rows = json.loads(render_json(self.VIOLATIONS))
        assert len(rows) == len(self.VIOLATIONS) == 1
        row = rows[0]
        assert row["code"] == "RL009"
        assert row["path"] == ANALYSIS
        assert row["line"] == 4

    def test_sarif_is_valid_2_1_0(self):
        doc = json.loads(render_sarif(self.VIOLATIONS, all_rules()))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"RL007", "RL008", "RL009"} <= set(rule_ids)
        (result,) = run["results"]
        assert result["ruleId"] == "RL009"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == ANALYSIS
        assert location["region"]["startLine"] == 4
        assert location["region"]["startColumn"] >= 1
        assert driver["rules"][rule_ids.index("RL009")]["name"] == \
            "backend-contract"

    def test_sarif_empty_run_is_still_valid(self):
        doc = json.loads(render_sarif([], all_rules()))
        assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_filters_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(self.violations(), path)
        baseline = load_baseline(path)
        fresh, matched = apply_baseline(self.violations(), baseline)
        assert fresh == []
        assert matched == 1

    def test_line_moves_do_not_invalidate(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(self.violations(), path)
        moved = lint_source(
            "# a comment pushing everything down\n\n\n"
            "def facade(graph, backend=None, workers=None):\n"
            "    return graph\n"
            "def caller(g):\n"
            "    return facade(g, worker=2)\n",
            path=ANALYSIS)
        fresh, matched = apply_baseline(moved, load_baseline(path))
        assert fresh == [] and matched == 1

    def test_new_findings_stay_visible(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(self.violations(), path)
        extra = self.violations() + lint_source(
            "def run(g, peel):\n"
            "    return peel(g, backend=\"nope\")\n",
            path=ANALYSIS)
        fresh, matched = apply_baseline(sorted(extra), load_baseline(path))
        assert matched == 1
        assert [v.code for v in fresh] == ["RL009"]
        assert "nope" in fresh[0].message

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"findings\": [{\"path\": \"x\"}]}")
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text("{\"findings\": 3}")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_checked_in_baseline_is_valid_and_empty(self):
        baseline = load_baseline(REPO / ".repro-lint-baseline.json")
        assert sum(baseline.values()) == 0

    @staticmethod
    def violations():
        return lint_source(
            "def facade(graph, backend=None, workers=None):\n"
            "    return graph\n"
            "def caller(g):\n"
            "    return facade(g, worker=2)\n",
            path=ANALYSIS)
